#include "net/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdx::net {

MappingTable::MappingTable(std::size_t cities, std::size_t vantages)
    : city_count_(cities),
      vantage_count_(vantages),
      scores_(cities * vantages, 0.0),
      measured_(cities * vantages, 0) {}

std::size_t MappingTable::index(geo::CityId city, std::size_t vantage) const {
  if (!city.valid() || city.value() >= city_count_ || vantage >= vantage_count_) {
    throw std::out_of_range{"MappingTable: bad (city, vantage)"};
  }
  return static_cast<std::size_t>(city.value()) * vantage_count_ + vantage;
}

MappingTable MappingTable::measure(const geo::World& world,
                                   std::span<const Vantage> vantages,
                                   const PathModel& model, const MappingConfig& config,
                                   core::Rng& rng) {
  if (vantages.empty()) throw std::invalid_argument{"MappingTable: no vantages"};
  if (!(config.measured_fraction > 0.0 && config.measured_fraction <= 1.0)) {
    throw std::invalid_argument{"MappingConfig: measured_fraction outside (0,1]"};
  }

  MappingTable table{world.cities().size(), vantages.size()};

  // Pass 1: measure, recording (distance, score) pairs for the regression.
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(table.scores_.size());
  ys.reserve(table.scores_.size());
  for (const auto& city : world.cities()) {
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      const auto& vantage_city = world.city(vantages[v].city);
      const std::size_t idx = table.index(city.id, v);
      if (rng.uniform() < config.measured_fraction) {
        const double s =
            model.score(city.location, vantage_city.location, vantages[v].salt);
        table.scores_[idx] = s;
        table.measured_[idx] = 1;
        xs.push_back(geo::haversine_km(city.location, vantage_city.location));
        ys.push_back(s);
      }
    }
  }

  // Pass 2: extrapolate unmeasured pairs from the distance regression
  // (paper §5.1). If the fit is degenerate, fall back to the mean score.
  table.fit_ = core::fit_line(xs, ys);
  const double fallback = core::mean(ys);
  for (const auto& city : world.cities()) {
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      const std::size_t idx = table.index(city.id, v);
      if (table.measured_[idx]) continue;
      const auto& vantage_city = world.city(vantages[v].city);
      const double d = geo::haversine_km(city.location, vantage_city.location);
      const double predicted = table.fit_ ? table.fit_->at(d) : fallback;
      // Scores are strictly positive; clamp the linear fit's tail.
      table.scores_[idx] = std::max(predicted, 1.0);
    }
  }
  return table;
}

double MappingTable::score(geo::CityId city, std::size_t vantage) const {
  return scores_[index(city, vantage)];
}

bool MappingTable::measured(geo::CityId city, std::size_t vantage) const {
  return measured_[index(city, vantage)] != 0;
}

std::vector<std::size_t> MappingTable::similar_vantages(
    geo::CityId city, std::span<const std::size_t> subset, double tolerance) const {
  if (subset.empty()) return {};
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    scored.emplace_back(score(city, subset[i]), i);
  }
  std::sort(scored.begin(), scored.end());
  const double cutoff = scored.front().first * (1.0 + tolerance);
  std::vector<std::size_t> out;
  for (const auto& [s, i] : scored) {
    if (s > cutoff) break;
    out.push_back(i);
  }
  return out;
}

AlternativeStats MappingTable::alternative_stats(const geo::World& world,
                                                 std::span<const std::size_t> subset,
                                                 double tolerance,
                                                 std::size_t max_alternatives) const {
  AlternativeStats stats;
  stats.fraction_with_at_least.assign(max_alternatives, 0.0);
  double weight_total = 0.0;
  for (const auto& city : world.cities()) {
    const double w = city.demand_weight;
    weight_total += w;
    const auto similar = similar_vantages(city.id, subset, tolerance);
    const std::size_t alternatives = similar.empty() ? 0 : similar.size() - 1;
    stats.mean_similar_clusters += w * static_cast<double>(similar.size());
    for (std::size_t k = 0; k < max_alternatives; ++k) {
      if (alternatives >= k + 1) stats.fraction_with_at_least[k] += w;
    }
  }
  if (weight_total > 0.0) {
    for (auto& f : stats.fraction_with_at_least) f /= weight_total;
    stats.mean_similar_clusters /= weight_total;
  }
  return stats;
}

}  // namespace vdx::net
