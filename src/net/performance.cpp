#include "net/performance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdx::net {

namespace {

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t state = a * 0x9e3779b97f4a7c15ULL + b;
  return core::split_mix64(state);
}

std::uint64_t hash_point(const geo::GeoPoint& p) noexcept {
  // Quantize to ~100 m so fp noise cannot change the hash.
  const auto lat = static_cast<std::int64_t>(std::llround(p.latitude_deg * 1e3));
  const auto lon = static_cast<std::int64_t>(std::llround(p.longitude_deg * 1e3));
  return hash_mix(static_cast<std::uint64_t>(lat), static_cast<std::uint64_t>(lon));
}

}  // namespace

PathModel::PathModel(PathModelConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  if (!(config_.rtt_ms_per_km > 0.0) || !(config_.access_latency_ms >= 0.0) ||
      !(config_.max_loss > 0.0 && config_.max_loss <= 1.0)) {
    throw std::invalid_argument{"PathModelConfig: invalid parameters"};
  }
}

PathQuality PathModel::quality(const geo::GeoPoint& client, const geo::GeoPoint& endpoint,
                               std::uint64_t endpoint_salt) const {
  const double distance_km = geo::haversine_km(client, endpoint);

  // Path-specific deterministic jitter stream.
  core::Rng rng{hash_mix(hash_mix(hash_point(client), hash_point(endpoint)),
                         hash_mix(endpoint_salt, seed_))};

  PathQuality q;
  const double jitter = rng.lognormal(0.0, config_.latency_jitter_sigma);
  q.latency_ms =
      (config_.access_latency_ms + distance_km * config_.rtt_ms_per_km) * jitter;

  const double loss_jitter = rng.lognormal(0.0, 0.5);
  q.loss_rate = std::min(config_.max_loss,
                         (config_.base_loss + distance_km * config_.loss_per_km) *
                             loss_jitter);
  return q;
}

double PathModel::score(const PathQuality& q) const {
  // Latency plus a goodput-style sqrt(loss) penalty; strictly positive and
  // monotone in both inputs, which is all downstream consumers rely on.
  return q.latency_ms + config_.loss_score_weight * std::sqrt(q.loss_rate);
}

double PathModel::score(const geo::GeoPoint& client, const geo::GeoPoint& endpoint,
                        std::uint64_t endpoint_salt) const {
  return score(quality(client, endpoint, endpoint_salt));
}

}  // namespace vdx::net
