// Measurement fusion (paper §3.3, "Poor performance due to incomplete
// data"):
//
// "Sharing mapping information could greatly improve the accuracy of the
//  data as both CDNs and brokers have limited vantage points into the
//  network. Namely, CDNs such as Akamai typically measure (in advance of
//  connections) from clusters to gateway routers, whereas brokers generally
//  only measure (during a connection) from clients to chosen CDN servers."
//
// We model the two vantage points as independently-noisy views of the true
// path score: the CDN measures every pair (proactively) with gateway-level
// imprecision; the broker measures precisely but only pairs that carried
// traffic. Fusing them (inverse-variance weighting in log space) yields an
// estimator that is strictly better than either alone — the quantified case
// for the Share/Announce exchange carrying measurement data both ways.
#pragma once

#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "net/mapping.hpp"

namespace vdx::net {

struct VantageNoise {
  /// Lognormal sigma of the CDN's proactive cluster->gateway measurements.
  double cdn_sigma = 0.35;
  /// Lognormal sigma of the broker's in-connection client measurements.
  double broker_sigma = 0.15;
  /// Fraction of (city, cluster) pairs the broker has observed traffic on.
  double broker_coverage = 0.25;
};

/// One (city, vantage) estimate pair plus the truth, for error accounting.
struct FusedEstimate {
  double truth = 0.0;
  double cdn_estimate = 0.0;
  /// Empty when the broker never carried traffic on this pair.
  std::optional<double> broker_estimate;
  double fused = 0.0;
};

struct FusionReport {
  /// Median relative error |est - truth| / truth across all pairs.
  double cdn_only_error = 0.0;
  double broker_only_error = 0.0;  // over covered pairs only
  double fused_error = 0.0;
  /// Fraction of pairs where fusion beat the CDN-only estimate.
  double improved_fraction = 0.0;
  std::size_t pairs = 0;
  std::size_t broker_covered_pairs = 0;
};

/// Simulates both vantage points over every (city, vantage) pair of the
/// mapping table and evaluates the fused estimator.
[[nodiscard]] FusionReport evaluate_fusion(const geo::World& world,
                                           const MappingTable& truth,
                                           const VantageNoise& noise, core::Rng& rng);

/// The fusion rule itself (exposed for tests): inverse-variance weighting of
/// log-estimates; with no broker sample, returns the CDN estimate.
[[nodiscard]] double fuse_estimates(double cdn_estimate, double cdn_sigma,
                                    std::optional<double> broker_estimate,
                                    double broker_sigma);

}  // namespace vdx::net
