#include "trace/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/distributions.hpp"
#include "trace/modulation.hpp"

namespace vdx::trace {

namespace {
/// Sub-intervals discretizing one block window for the modulated arrival
/// inverse-CDF and the block-mass integrals (midpoint rule). A pure model
/// constant: changing it changes the modulated stream.
constexpr std::size_t kModulationBins = 256;
}  // namespace

namespace {

void check_config(const TraceConfig& config, bool allow_empty) {
  if (config.session_count == 0 && !allow_empty) {
    throw std::invalid_argument{"TraceConfig: no sessions"};
  }
  if (!(config.duration_s > 0.0)) throw std::invalid_argument{"TraceConfig: duration"};
  if (config.bitrate_ladder.empty() ||
      config.bitrate_ladder.size() != config.bitrate_weights.size()) {
    throw std::invalid_argument{"TraceConfig: bitrate ladder/weights mismatch"};
  }
  if (!(config.abandonment_rate >= 0.0 && config.abandonment_rate <= 1.0)) {
    throw std::invalid_argument{"TraceConfig: abandonment_rate outside [0,1]"};
  }
}

/// Per-country base CDN shares with heavy cross-country variance (Fig. 7:
/// "CDN B barely serves 7, yet almost entirely serves 8").
std::vector<std::array<double, kTraceCdnCount>> country_share_model(
    const geo::World& world, core::Rng& rng) {
  constexpr std::array<double, kTraceCdnCount> kBase{0.30, 0.25, 0.25, 0.20};
  std::vector<std::array<double, kTraceCdnCount>> shares(world.countries().size());
  for (auto& row : shares) {
    for (std::size_t c = 0; c < kTraceCdnCount; ++c) {
      // Lognormal with sigma 1.2 gives the occasional near-total dominance
      // by one CDN within a country.
      row[c] = kBase[c] * rng.lognormal(0.0, 1.2);
    }
  }
  return shares;
}

/// Non-homogeneous Poisson switch times over [0, duration) after `arrival`,
/// via thinning against the modulated hazard.
std::vector<double> sample_switch_times(double arrival, double duration,
                                        const TraceConfig& config, core::Rng& rng) {
  std::vector<double> times;
  const double max_rate = config.switch_rate_per_s * (1.0 + config.switch_modulation);
  if (max_rate <= 0.0) return times;
  double t = arrival;
  const double end = arrival + duration;
  while (true) {
    t += rng.exponential(max_rate);
    if (t >= end) break;
    const double rate =
        config.switch_rate_per_s *
        (1.0 + config.switch_modulation *
                   std::sin(2.0 * M_PI * t / config.switch_period_s));
    if (rng.uniform() * max_rate < rate) times.push_back(t);
  }
  return times;
}

}  // namespace

/// The sampling model shared by the monolithic generators and the streaming
/// BrokerTraceGenerator: the samplers and the per-city CDN choice model,
/// derived once per trace. sample() draws one session's fields in the exact
/// order generate_impl always used, so the monolithic trace stays
/// byte-identical to the seed code.
struct BrokerTraceGenerator::Model {
  TraceConfig config;
  bool broker_controlled = true;
  core::DiscreteDistribution city_dist;
  core::ZipfDistribution video_dist;
  core::ZipfDistribution as_dist;
  core::DiscreteDistribution bitrate_dist;
  std::vector<core::DiscreteDistribution> city_cdn;
  double engaged_mu = 0.0;

  Model(const geo::World& world, const TraceConfig& cfg, std::size_t session_count,
        bool broker, core::Rng& rng)
      : config(cfg),
        broker_controlled(broker),
        city_dist(city_weights(world)),
        video_dist(cfg.video_count, cfg.video_zipf_exponent),
        as_dist(cfg.as_count, cfg.as_zipf_exponent),
        bitrate_dist(cfg.bitrate_weights) {
    // Per-city CDN choice distributions: country base shares with CDN A's
    // small-city boost (Fig. 5).
    core::Rng shares_rng = rng.fork("country-shares");
    const auto country_shares = country_share_model(world, shares_rng);
    city_cdn.reserve(world.cities().size());
    for (const auto& city : world.cities()) {
      auto weights = country_shares[city.country.value()];
      const double expected_requests =
          city.demand_weight * static_cast<double>(session_count);
      weights[static_cast<std::size_t>(TraceCdn::kCdnA)] *=
          1.0 + cfg.small_city_boost *
                    std::exp(-expected_requests / cfg.small_city_scale);
      city_cdn.emplace_back(std::span<const double>{weights.data(), weights.size()});
    }
    engaged_mu = std::log(cfg.engaged_mean_s) - 0.32;  // lognormal(mu, 0.8) mean fix
  }

  static std::vector<double> city_weights(const geo::World& world) {
    std::vector<double> weights;
    weights.reserve(world.cities().size());
    for (const auto& city : world.cities()) weights.push_back(city.demand_weight);
    return weights;
  }

  /// City draw. Unmodulated: the base demand distribution. Modulated with
  /// hotspots: mixture of the time-dependent hotspot mass and the remaining
  /// base mass (the diurnal term cancels in this conditional); the
  /// non-hotspot branch rejection-samples the base distribution, which
  /// terminates fast because hotspots carry a small base mass.
  [[nodiscard]] std::size_t sample_city(core::Rng& rng, double t,
                                        const BlockModulation* mod) const {
    if (mod == nullptr || !mod->has_hotspots()) return city_dist(rng);
    const double hot = mod->hot_mass(t);
    const double rest = 1.0 - mod->hot_base_mass();
    const double pick = rng.uniform() * (hot + rest);
    if (pick < hot) return mod->pick_hotspot(t, pick);
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t city = city_dist(rng);
      if (!mod->is_hotspot(city)) return city;
    }
    return city_dist(rng);  // pathological weights: accept anything
  }

  /// Draws one session with arrival uniform in [arrival_lo, arrival_hi) and
  /// duration clamped to the horizon end. Field draw order matches the seed
  /// generate_impl exactly. With `mod`, the arrival follows the modulated
  /// intensity's inverse-CDF over the window and the city draw mixes the
  /// flash-crowd hotspots in at their time-dependent weight (one extra
  /// uniform draw — draw order is still a pure function of the block).
  [[nodiscard]] Session sample(core::Rng& rng, double arrival_lo, double arrival_hi,
                               const BlockModulation* mod = nullptr) const {
    Session s;
    s.arrival_s = mod != nullptr ? mod->arrival_from(rng.uniform())
                                 : rng.uniform(arrival_lo, arrival_hi);
    s.video = VideoId{static_cast<std::uint32_t>(video_dist(rng))};
    s.city = CityId{static_cast<std::uint32_t>(sample_city(rng, s.arrival_s, mod))};
    s.as_number = static_cast<std::uint32_t>(as_dist(rng)) + 1;
    s.bitrate_mbps = config.bitrate_ladder[bitrate_dist(rng)];
    s.abandoned = rng.chance(config.abandonment_rate);
    s.duration_s = s.abandoned ? rng.exponential(1.0 / config.abandon_mean_s)
                               : rng.lognormal(engaged_mu, 0.8);
    s.duration_s = std::min(s.duration_s, config.duration_s - s.arrival_s);

    if (broker_controlled) {
      s.initial_cdn = static_cast<TraceCdn>(city_cdn[s.city.value()](rng));
      // The broker only bothers moving sessions that live long enough.
      if (!s.abandoned) {
        TraceCdn current = s.initial_cdn;
        for (const double t :
             sample_switch_times(s.arrival_s, s.duration_s, config, rng)) {
          // Move to a different CDN drawn from the same city model.
          TraceCdn next = current;
          for (int attempt = 0; attempt < 8 && next == current; ++attempt) {
            next = static_cast<TraceCdn>(city_cdn[s.city.value()](rng));
          }
          if (next == current) continue;
          s.switches.push_back(SwitchEvent{t, current, next});
          current = next;
        }
      }
    } else {
      s.initial_cdn = TraceCdn::kOther;
    }
    return s;
  }
};

namespace {

BrokerTrace generate_impl(const geo::World& world, const TraceConfig& config,
                          std::size_t session_count, bool broker_controlled,
                          core::Rng& rng) {
  check_config(config, /*allow_empty=*/false);

  const BrokerTraceGenerator::Model model{world, config, session_count,
                                          broker_controlled, rng};

  std::vector<Session> sessions;
  sessions.reserve(session_count);
  for (std::size_t i = 0; i < session_count; ++i) {
    Session s = model.sample(rng, 0.0, config.duration_s);
    s.id = SessionId{static_cast<std::uint32_t>(i)};
    sessions.push_back(std::move(s));
  }

  // Arrival-ordered, ids re-issued in order (stable and convenient).
  std::sort(sessions.begin(), sessions.end(),
            [](const Session& a, const Session& b) { return a.arrival_s < b.arrival_s; });
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    sessions[i].id = SessionId{static_cast<std::uint32_t>(i)};
  }
  return BrokerTrace{std::move(sessions), config.duration_s};
}

}  // namespace

BrokerTrace generate_trace(const geo::World& world, const TraceConfig& config,
                           core::Rng& rng) {
  return generate_impl(world, config, config.session_count, /*broker_controlled=*/true,
                       rng);
}

BrokerTrace generate_background(const geo::World& world, const TraceConfig& config,
                                double multiplier, core::Rng& rng) {
  if (!(multiplier > 0.0)) {
    throw std::invalid_argument{"generate_background: multiplier must be > 0"};
  }
  const auto count = static_cast<std::size_t>(
      std::llround(multiplier * static_cast<double>(config.session_count)));
  return generate_impl(world, config, std::max<std::size_t>(1, count),
                       /*broker_controlled=*/false, rng);
}

BrokerTraceGenerator::BrokerTraceGenerator(const geo::World& world,
                                           const TraceConfig& config, core::Rng rng)
    : BrokerTraceGenerator(world, config, rng, Options{}) {}

BrokerTraceGenerator::BrokerTraceGenerator(const geo::World& world,
                                           const TraceConfig& config, core::Rng rng,
                                           Options options)
    : base_rng_(rng), options_(options) {
  check_config(config, /*allow_empty=*/true);
  if (options_.block_sessions == 0) {
    throw std::invalid_argument{"BrokerTraceGenerator: block_sessions must be > 0"};
  }
  // The model consumes the base RNG exactly like generate_impl does (the
  // "country-shares" fork), leaving per-block substreams to fork cleanly
  // from the post-construction state.
  model_ = std::make_unique<Model>(world, config, config.session_count,
                                   options_.broker_controlled, base_rng_);
  const std::size_t n = config.session_count;
  block_count_ = n == 0 ? 0 : (n + options_.block_sessions - 1) / options_.block_sessions;

  if (options_.modulation != nullptr && options_.modulation->active() &&
      block_count_ > 0) {
    // Modulated partition: block b emits floor(N * cum_b / T) - floor(N *
    // cum_{b-1} / T) sessions, where cum_b integrates the modulated
    // intensity g(t) up to block b's end. With g == 1 this reduces to the
    // seed partition, but the unmodulated path below keeps its exact
    // integer arithmetic — float never touches the golden stream.
    modulated_ = true;
    city_weights_ = Model::city_weights(world);
    mod_offsets_.assign(block_count_ + 1, 0);
    const double horizon = config.duration_s;
    double cum = 0.0;
    for (std::size_t b = 0; b < block_count_; ++b) {
      const double lo =
          horizon * static_cast<double>(b) / static_cast<double>(block_count_);
      const double hi =
          horizon * static_cast<double>(b + 1) / static_cast<double>(block_count_);
      const BlockModulation block{*options_.modulation, city_weights_, lo, hi,
                                  kModulationBins};
      cum += block.integral();
      mod_offsets_[b + 1] = static_cast<std::uint64_t>(
          std::floor(static_cast<double>(n) * cum / horizon));
    }
  }
}

BrokerTraceGenerator::~BrokerTraceGenerator() = default;

std::size_t BrokerTraceGenerator::total_sessions() const noexcept {
  return modulated_ ? static_cast<std::size_t>(mod_offsets_.back())
                    : model_->config.session_count;
}

double BrokerTraceGenerator::duration_s() const noexcept {
  return model_->config.duration_s;
}

bool BrokerTraceGenerator::exhausted() const noexcept {
  return next_block_ >= block_count_ && buffer_pos_ >= buffer_.size();
}

void BrokerTraceGenerator::reset() {
  next_block_ = 0;
  emitted_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
}

void BrokerTraceGenerator::seek(std::size_t emitted) {
  const std::size_t total = total_sessions();
  if (emitted > total) {
    throw std::invalid_argument{"BrokerTraceGenerator::seek: position " +
                                std::to_string(emitted) + " past horizon total " +
                                std::to_string(total)};
  }
  reset();
  if (total == 0) return;
  if (emitted == total) {  // exhausted stream: nothing left to regenerate
    next_block_ = block_count_;
    emitted_ = total;
    return;
  }

  std::size_t b = 0;
  std::size_t block_lo = 0;
  if (modulated_) {
    // Containing block: the last b with offsets[b] <= emitted (consecutive
    // equal offsets are empty blocks, skipped by upper_bound).
    const auto it = std::upper_bound(mod_offsets_.begin(), mod_offsets_.end(),
                                     static_cast<std::uint64_t>(emitted));
    b = static_cast<std::size_t>(it - mod_offsets_.begin()) - 1;
    block_lo = static_cast<std::size_t>(mod_offsets_[b]);
  } else {
    // Containing block: the b with floor(bN/B) <= emitted < floor((b+1)N/B).
    // The initial estimate is within one block of the answer; nudge exactly.
    const std::size_t n = model_->config.session_count;
    const std::size_t B = block_count_;
    b = emitted * B / n;
    while (b + 1 < B && (b + 1) * n / B <= emitted) ++b;
    while (b > 0 && b * n / B > emitted) --b;
    block_lo = b * n / B;
  }

  next_block_ = b;
  refill();  // regenerates block b (advances next_block_ to b + 1)
  buffer_pos_ = emitted - block_lo;
  emitted_ = emitted;
}

void BrokerTraceGenerator::refill() {
  // Keep any unconsumed tail; generation appends the next block after it.
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(buffer_pos_));
  buffer_pos_ = 0;

  const std::size_t b = next_block_++;
  const std::size_t n = model_->config.session_count;
  const std::size_t B = block_count_;
  // Deterministic partition of N sessions over B blocks. Unmodulated: block
  // b gets floor((b+1)N/B) - floor(bN/B) sessions (sums to N, spread
  // evenly). Modulated: the precomputed intensity-cumulative offsets.
  const std::size_t lo_count =
      modulated_ ? static_cast<std::size_t>(mod_offsets_[b]) : b * n / B;
  const std::size_t hi_count =
      modulated_ ? static_cast<std::size_t>(mod_offsets_[b + 1]) : (b + 1) * n / B;
  const double horizon = model_->config.duration_s;
  const double window_lo = horizon * static_cast<double>(b) / static_cast<double>(B);
  const double window_hi =
      horizon * static_cast<double>(b + 1) / static_cast<double>(B);

  // Substream independence: block b's draws depend only on the base seed
  // and b — never on the other blocks or on batch granularity. Forking
  // consumes parent state, so fork from a fresh copy every time; the label
  // alone differentiates the blocks (and reset() replays exactly).
  core::Rng fork_parent = base_rng_;
  core::Rng block_rng = fork_parent.fork("block-" + std::to_string(b));

  std::unique_ptr<BlockModulation> block_mod;
  if (modulated_ && hi_count > lo_count) {
    block_mod = std::make_unique<BlockModulation>(*options_.modulation, city_weights_,
                                                  window_lo, window_hi,
                                                  kModulationBins);
  }

  const std::size_t first = buffer_.size();
  buffer_.reserve(first + (hi_count - lo_count));
  for (std::size_t i = lo_count; i < hi_count; ++i) {
    buffer_.push_back(
        model_->sample(block_rng, window_lo, window_hi, block_mod.get()));
  }
  // Arrival order within the block; blocks cover disjoint time windows, so
  // this yields global arrival order. Ids are issued densely on emission.
  std::sort(buffer_.begin() + static_cast<std::ptrdiff_t>(first), buffer_.end(),
            [](const Session& a, const Session& b_) {
              return a.arrival_s < b_.arrival_s;
            });
}

std::vector<Session> BrokerTraceGenerator::next_batch(std::size_t max_sessions) {
  std::vector<Session> out;
  while (out.size() < max_sessions) {
    if (buffer_pos_ >= buffer_.size()) {
      if (next_block_ >= block_count_) break;
      refill();
      continue;
    }
    Session s = std::move(buffer_[buffer_pos_++]);
    s.id = SessionId{static_cast<std::uint32_t>(emitted_++)};
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace vdx::trace
