#include "trace/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "core/distributions.hpp"

namespace vdx::trace {

namespace {

void check_config(const TraceConfig& config) {
  if (config.session_count == 0) throw std::invalid_argument{"TraceConfig: no sessions"};
  if (!(config.duration_s > 0.0)) throw std::invalid_argument{"TraceConfig: duration"};
  if (config.bitrate_ladder.empty() ||
      config.bitrate_ladder.size() != config.bitrate_weights.size()) {
    throw std::invalid_argument{"TraceConfig: bitrate ladder/weights mismatch"};
  }
  if (!(config.abandonment_rate >= 0.0 && config.abandonment_rate <= 1.0)) {
    throw std::invalid_argument{"TraceConfig: abandonment_rate outside [0,1]"};
  }
}

/// Per-country base CDN shares with heavy cross-country variance (Fig. 7:
/// "CDN B barely serves 7, yet almost entirely serves 8").
std::vector<std::array<double, kTraceCdnCount>> country_share_model(
    const geo::World& world, core::Rng& rng) {
  constexpr std::array<double, kTraceCdnCount> kBase{0.30, 0.25, 0.25, 0.20};
  std::vector<std::array<double, kTraceCdnCount>> shares(world.countries().size());
  for (auto& row : shares) {
    for (std::size_t c = 0; c < kTraceCdnCount; ++c) {
      // Lognormal with sigma 1.2 gives the occasional near-total dominance
      // by one CDN within a country.
      row[c] = kBase[c] * rng.lognormal(0.0, 1.2);
    }
  }
  return shares;
}

/// Non-homogeneous Poisson switch times over [0, duration) after `arrival`,
/// via thinning against the modulated hazard.
std::vector<double> sample_switch_times(double arrival, double duration,
                                        const TraceConfig& config, core::Rng& rng) {
  std::vector<double> times;
  const double max_rate = config.switch_rate_per_s * (1.0 + config.switch_modulation);
  if (max_rate <= 0.0) return times;
  double t = arrival;
  const double end = arrival + duration;
  while (true) {
    t += rng.exponential(max_rate);
    if (t >= end) break;
    const double rate =
        config.switch_rate_per_s *
        (1.0 + config.switch_modulation *
                   std::sin(2.0 * M_PI * t / config.switch_period_s));
    if (rng.uniform() * max_rate < rate) times.push_back(t);
  }
  return times;
}

BrokerTrace generate_impl(const geo::World& world, const TraceConfig& config,
                          std::size_t session_count, bool broker_controlled,
                          core::Rng& rng) {
  check_config(config);

  // Samplers.
  std::vector<double> city_weights;
  city_weights.reserve(world.cities().size());
  for (const auto& city : world.cities()) city_weights.push_back(city.demand_weight);
  core::DiscreteDistribution city_dist{city_weights};
  core::ZipfDistribution video_dist{config.video_count, config.video_zipf_exponent};
  core::ZipfDistribution as_dist{config.as_count, config.as_zipf_exponent};
  core::DiscreteDistribution bitrate_dist{config.bitrate_weights};

  // Per-city CDN choice distributions: country base shares with CDN A's
  // small-city boost (Fig. 5).
  core::Rng shares_rng = rng.fork("country-shares");
  const auto country_shares = country_share_model(world, shares_rng);
  std::vector<core::DiscreteDistribution> city_cdn;
  city_cdn.reserve(world.cities().size());
  for (const auto& city : world.cities()) {
    auto weights = country_shares[city.country.value()];
    const double expected_requests =
        city.demand_weight * static_cast<double>(session_count);
    weights[static_cast<std::size_t>(TraceCdn::kCdnA)] *=
        1.0 + config.small_city_boost *
                  std::exp(-expected_requests / config.small_city_scale);
    city_cdn.emplace_back(std::span<const double>{weights.data(), weights.size()});
  }

  const double engaged_mu =
      std::log(config.engaged_mean_s) - 0.32;  // lognormal(mu, 0.8) mean fix

  std::vector<Session> sessions;
  sessions.reserve(session_count);
  for (std::size_t i = 0; i < session_count; ++i) {
    Session s;
    s.id = SessionId{static_cast<std::uint32_t>(i)};
    s.arrival_s = rng.uniform(0.0, config.duration_s);
    s.video = VideoId{static_cast<std::uint32_t>(video_dist(rng))};
    s.city = CityId{static_cast<std::uint32_t>(city_dist(rng))};
    s.as_number = static_cast<std::uint32_t>(as_dist(rng)) + 1;
    s.bitrate_mbps = config.bitrate_ladder[bitrate_dist(rng)];
    s.abandoned = rng.chance(config.abandonment_rate);
    s.duration_s = s.abandoned ? rng.exponential(1.0 / config.abandon_mean_s)
                               : rng.lognormal(engaged_mu, 0.8);
    s.duration_s = std::min(s.duration_s, config.duration_s - s.arrival_s);

    if (broker_controlled) {
      s.initial_cdn = static_cast<TraceCdn>(city_cdn[s.city.value()](rng));
      // The broker only bothers moving sessions that live long enough.
      if (!s.abandoned) {
        TraceCdn current = s.initial_cdn;
        for (const double t : sample_switch_times(s.arrival_s, s.duration_s, config,
                                                  rng)) {
          // Move to a different CDN drawn from the same city model.
          TraceCdn next = current;
          for (int attempt = 0; attempt < 8 && next == current; ++attempt) {
            next = static_cast<TraceCdn>(city_cdn[s.city.value()](rng));
          }
          if (next == current) continue;
          s.switches.push_back(SwitchEvent{t, current, next});
          current = next;
        }
      }
    } else {
      s.initial_cdn = TraceCdn::kOther;
    }
    sessions.push_back(std::move(s));
  }

  // Arrival-ordered, ids re-issued in order (stable and convenient).
  std::sort(sessions.begin(), sessions.end(),
            [](const Session& a, const Session& b) { return a.arrival_s < b.arrival_s; });
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    sessions[i].id = SessionId{static_cast<std::uint32_t>(i)};
  }
  return BrokerTrace{std::move(sessions), config.duration_s};
}

}  // namespace

BrokerTrace generate_trace(const geo::World& world, const TraceConfig& config,
                           core::Rng& rng) {
  return generate_impl(world, config, config.session_count, /*broker_controlled=*/true,
                       rng);
}

BrokerTrace generate_background(const geo::World& world, const TraceConfig& config,
                                double multiplier, core::Rng& rng) {
  if (!(multiplier > 0.0)) {
    throw std::invalid_argument{"generate_background: multiplier must be > 0"};
  }
  const auto count = static_cast<std::size_t>(
      std::llround(multiplier * static_cast<double>(config.session_count)));
  return generate_impl(world, config, std::max<std::size_t>(1, count),
                       /*broker_controlled=*/false, rng);
}

}  // namespace vdx::trace
