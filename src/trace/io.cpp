#include "trace/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "proto/wire.hpp"

namespace vdx::trace {

namespace {

constexpr std::uint32_t kMagic = 0x58444276;  // "vBDX"
constexpr std::uint16_t kVersion = 1;

void write_session(proto::ByteWriter& w, const Session& s) {
  w.write_u32(s.id.value());
  w.write_f64(s.arrival_s);
  w.write_u32(s.video.value());
  w.write_f64(s.bitrate_mbps);
  w.write_f64(s.duration_s);
  w.write_u32(s.city.value());
  w.write_u32(s.as_number);
  w.write_u8(s.abandoned ? 1 : 0);
  w.write_u8(static_cast<std::uint8_t>(s.initial_cdn));
  w.write_u32(static_cast<std::uint32_t>(s.switches.size()));
  for (const SwitchEvent& e : s.switches) {
    w.write_f64(e.time_s);
    w.write_u8(static_cast<std::uint8_t>(e.from));
    w.write_u8(static_cast<std::uint8_t>(e.to));
  }
}

Session read_session(proto::ByteReader& r) {
  Session s;
  s.id = SessionId{r.read_u32()};
  s.arrival_s = r.read_f64();
  s.video = VideoId{r.read_u32()};
  s.bitrate_mbps = r.read_f64();
  s.duration_s = r.read_f64();
  s.city = CityId{r.read_u32()};
  s.as_number = r.read_u32();
  s.abandoned = r.read_u8() != 0;
  const std::uint8_t initial = r.read_u8();
  if (initial >= kTraceCdnCount) throw proto::WireError{"trace: bad CDN label"};
  s.initial_cdn = static_cast<TraceCdn>(initial);
  const std::uint32_t switch_count = r.read_u32();
  s.switches.reserve(switch_count);
  for (std::uint32_t i = 0; i < switch_count; ++i) {
    SwitchEvent e;
    e.time_s = r.read_f64();
    const std::uint8_t from = r.read_u8();
    const std::uint8_t to = r.read_u8();
    if (from >= kTraceCdnCount || to >= kTraceCdnCount) {
      throw proto::WireError{"trace: bad switch CDN label"};
    }
    e.from = static_cast<TraceCdn>(from);
    e.to = static_cast<TraceCdn>(to);
    s.switches.push_back(e);
  }
  return s;
}

}  // namespace

void save_trace(const BrokerTrace& trace, std::ostream& out) {
  proto::ByteWriter w;
  w.write_u32(kMagic);
  w.write_u16(kVersion);
  w.write_f64(trace.duration_s());
  w.write_u32(static_cast<std::uint32_t>(trace.size()));
  for (const Session& s : trace.sessions()) write_session(w, s);

  out.write(reinterpret_cast<const char*>(w.data().data()),
            static_cast<std::streamsize>(w.size()));
  if (!out) throw std::runtime_error{"save_trace: write failed"};
}

void save_trace_file(const BrokerTrace& trace, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"save_trace_file: cannot open " + path};
  save_trace(trace, out);
}

BrokerTrace load_trace(std::istream& in) {
  const std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>{in},
                                        std::istreambuf_iterator<char>{}};
  try {
    proto::ByteReader r{bytes};
    if (r.read_u32() != kMagic) throw proto::WireError{"trace: bad magic"};
    if (r.read_u16() != kVersion) throw proto::WireError{"trace: bad version"};
    const double duration = r.read_f64();
    const std::uint32_t count = r.read_u32();
    std::vector<Session> sessions;
    sessions.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) sessions.push_back(read_session(r));
    if (!r.exhausted()) throw proto::WireError{"trace: trailing bytes"};
    return BrokerTrace{std::move(sessions), duration};
  } catch (const proto::WireError& error) {
    throw std::runtime_error{std::string{"load_trace: "} + error.what()};
  }
}

BrokerTrace load_trace_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"load_trace_file: cannot open " + path};
  return load_trace(in);
}

}  // namespace vdx::trace
