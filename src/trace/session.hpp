// Broker trace record types.
//
// Mirrors the fields of the paper's broker dataset (§3.1): "an entry for
// each client session containing the request arrival time, which video was
// requested, the average bitrate, session duration, the client city and AS,
// the initial CDN contacted, and the current CDN delivering the video."
// The trace names three large CDNs ("A", "B", "C") and buckets the rest as
// "other" — we keep exactly that label space.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"

namespace vdx::trace {

using core::CityId;
using core::SessionId;
using core::VideoId;

/// CDN label space of the broker trace (§3.1).
enum class TraceCdn : std::uint8_t { kCdnA, kCdnB, kCdnC, kOther };
inline constexpr std::size_t kTraceCdnCount = 4;

[[nodiscard]] constexpr const char* to_string(TraceCdn cdn) noexcept {
  switch (cdn) {
    case TraceCdn::kCdnA:
      return "CDN A";
    case TraceCdn::kCdnB:
      return "CDN B";
    case TraceCdn::kCdnC:
      return "CDN C";
    case TraceCdn::kOther:
      return "other";
  }
  return "?";
}

/// One broker-initiated mid-stream CDN switch.
struct SwitchEvent {
  double time_s = 0.0;
  TraceCdn from = TraceCdn::kOther;
  TraceCdn to = TraceCdn::kOther;
};

struct Session {
  SessionId id;
  double arrival_s = 0.0;
  VideoId video;
  double bitrate_mbps = 1.0;
  double duration_s = 0.0;
  CityId city;
  std::uint32_t as_number = 0;
  bool abandoned = false;  // left almost immediately (paper: ~78%)
  TraceCdn initial_cdn = TraceCdn::kOther;
  std::vector<SwitchEvent> switches;  // time-ordered

  [[nodiscard]] double end_s() const noexcept { return arrival_s + duration_s; }
  [[nodiscard]] bool active_at(double t) const noexcept {
    return t >= arrival_s && t < end_s();
  }
  /// CDN delivering at time t (assumes active_at(t) or t past the end).
  [[nodiscard]] TraceCdn cdn_at(double t) const noexcept {
    TraceCdn current = initial_cdn;
    for (const SwitchEvent& s : switches) {
      if (s.time_s > t) break;
      current = s.to;
    }
    return current;
  }
  /// Whether the broker has moved this session at least once by time t.
  [[nodiscard]] bool moved_by(double t) const noexcept {
    return !switches.empty() && switches.front().time_s <= t;
  }
  [[nodiscard]] TraceCdn final_cdn() const noexcept {
    return switches.empty() ? initial_cdn : switches.back().to;
  }
};

}  // namespace vdx::trace
