// Workload modulators: deterministic, checkpoint-safe stress on the
// synthetic broker workload (DESIGN.md §11).
//
// The paper evaluates one steady traffic hour; production brokers live
// through live-event flash crowds and diurnal swings. A WorkloadModulation
// reshapes the BrokerTraceGenerator's arrival process as a non-homogeneous
// Poisson intensity
//
//     g(t) = d(t) * (1 + sum_hotspots w_c * (h_c(t) - 1))
//
// where d(t) is the diurnal multiplier, h_c(t) the flash-crowd boost of
// hotspot city c, and w_c that city's base demand weight. Everything is a
// pure function of time and the spec — no RNG, no mutable state — so the
// chunked generator keeps its contract: block b's sessions depend only on
// (seed, b), and reset()/seek()/resume() replay byte-identically.
//
// Every multiplier is clamped to [0, kMaxRateMultiplier] before use
// (clamp_rate_multiplier): Poisson thinning/boosting can never see a
// negative, NaN, or runaway rate, even at adversarial spike factors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/ids.hpp"

namespace vdx::trace {

/// Hard ceiling on any arrival-rate multiplier. A spike factor beyond this
/// is clamped, not rejected: the library stays total, the CLI layer rejects
/// nonsense loudly.
inline constexpr double kMaxRateMultiplier = 1e6;

/// Clamps an arrival-rate multiplier into [0, kMaxRateMultiplier].
/// Negative values floor at 0 (a rate cannot be negative); NaN maps to 1
/// (no modulation — the neutral element, never a poisoned rate).
[[nodiscard]] double clamp_rate_multiplier(double multiplier) noexcept;

/// A live-event flash crowd: one city's arrival rate ramps to `factor`x,
/// holds, and decays back — the trapezoid h_c(t). factor may be < 1
/// (suppression) or 0 (the city goes silent); it must be finite and >= 0.
struct FlashCrowdSpec {
  core::CityId city;
  double factor = 50.0;
  double start_s = 0.0;
  double ramp_s = 120.0;
  double hold_s = 600.0;
  double decay_s = 300.0;

  [[nodiscard]] double end_s() const noexcept {
    return start_s + ramp_s + hold_s + decay_s;
  }
};

/// A diurnal sinusoid: the global rate multiplier
/// d(t) = max(0, 1 + amplitude * sin(2*pi*(t - phase_s)/period_s)).
struct DiurnalSpec {
  double amplitude = 0.5;
  double period_s = 86'400.0;
  double phase_s = 0.0;
};

/// A composable set of demand modulators. Immutable once handed to a
/// generator; all evaluation is const and allocation-free.
class WorkloadModulation {
 public:
  /// Throws std::invalid_argument on a non-finite or negative factor, a
  /// non-positive ramp geometry, or an invalid city id.
  void add_flash_crowd(FlashCrowdSpec spec);
  /// Throws std::invalid_argument on a non-finite/negative amplitude or a
  /// non-positive period.
  void add_diurnal(DiurnalSpec spec);

  [[nodiscard]] bool active() const noexcept {
    return !flash_crowds_.empty() || !diurnals_.empty();
  }

  /// Global (city-independent) multiplier d(t), clamped.
  [[nodiscard]] double diurnal_multiplier(double t) const noexcept;
  /// Flash-crowd boost h_c(t) for `city` (1 when no spec targets it), clamped.
  [[nodiscard]] double city_boost(std::uint32_t city, double t) const noexcept;

  [[nodiscard]] std::span<const FlashCrowdSpec> flash_crowds() const noexcept {
    return flash_crowds_;
  }
  [[nodiscard]] std::span<const DiurnalSpec> diurnals() const noexcept {
    return diurnals_;
  }

 private:
  std::vector<FlashCrowdSpec> flash_crowds_;
  std::vector<DiurnalSpec> diurnals_;
};

/// Precomputed modulation view over one generation block's time window:
/// the discretized arrival inverse-CDF plus the hotspot city mixture. A
/// pure function of (modulation, city weights, window), so two
/// constructions over the same window are identical — the property that
/// keeps seek()/resume() byte-exact.
class BlockModulation {
 public:
  /// `city_weights` are the base city demand weights (summing to ~1), index
  /// == CityId value. `bins` sub-intervals discretize the window for the
  /// inverse-CDF (midpoint rule).
  BlockModulation(const WorkloadModulation& modulation,
                  std::span<const double> city_weights, double window_lo,
                  double window_hi, std::size_t bins);

  /// Integral of g(t) over the window (the block's expected-intensity mass).
  [[nodiscard]] double integral() const noexcept { return integral_; }

  /// Maps u in [0,1) to an arrival time in [window_lo, window_hi) by the
  /// piecewise-constant inverse CDF of g restricted to the window.
  [[nodiscard]] double arrival_from(double u) const noexcept;

  /// Hotspot mixture at time t. hot_mass(t) = sum_c w_c * h_c(t) over
  /// hotspot cities; hot_base_mass() the same sum with h == 1. The diurnal
  /// multiplier cancels in the city conditional, so neither includes it.
  [[nodiscard]] bool has_hotspots() const noexcept { return !hotspots_.empty(); }
  [[nodiscard]] double hot_mass(double t) const noexcept;
  [[nodiscard]] double hot_base_mass() const noexcept { return hot_base_mass_; }
  [[nodiscard]] bool is_hotspot(std::size_t city) const noexcept;
  /// Picks the hotspot city for `pick` in [0, hot_mass(t)) by cumulative
  /// w_c * h_c(t) weight.
  [[nodiscard]] std::uint32_t pick_hotspot(double t, double pick) const noexcept;

  /// The modulated intensity g(t) (clamped), shared with the generator's
  /// block partitioning.
  [[nodiscard]] static double intensity(const WorkloadModulation& modulation,
                                        std::span<const double> city_weights,
                                        double t);

 private:
  struct Hotspot {
    std::uint32_t city = 0;
    double weight = 0.0;  // base demand weight
  };

  const WorkloadModulation* modulation_;
  double window_lo_ = 0.0;
  double window_hi_ = 0.0;
  std::vector<Hotspot> hotspots_;  // city-ascending, deduplicated
  double hot_base_mass_ = 0.0;
  /// Cumulative bin weights normalized to [0, 1]; size bins + 1.
  std::vector<double> cumulative_;
  double integral_ = 0.0;
};

}  // namespace vdx::trace
