// Synthetic broker trace generator.
//
// Substitution note (DESIGN.md §2): the paper's broker trace is proprietary,
// but §3.1–§3.2 state every marginal the evaluation consumes; this generator
// reproduces them by construction:
//   * ~33.4K sessions over ~1 hour for one content provider;
//   * Zipf video popularity, power-law client-city distribution (inherited
//     from the World demand weights);
//   * bimodal bitrate distribution peaking at the lowest & highest rungs;
//   * ~78% of clients abandon almost immediately;
//   * per-country CDN usage shares that vary wildly (Fig. 7), with the
//     distributed "CDN A" increasingly favored in small cities (Fig. 5);
//   * a mid-stream switching process whose per-5s moved fraction averages
//     ~40% and swings between ~20% and ~60% (Fig. 4).
#pragma once

#include <span>
#include <vector>

#include "core/rng.hpp"
#include "geo/world.hpp"
#include "trace/session.hpp"

namespace vdx::trace {

struct TraceConfig {
  std::size_t session_count = 33'400;
  double duration_s = 3600.0;
  std::size_t video_count = 3000;
  double video_zipf_exponent = 0.8;
  std::size_t as_count = 50;
  double as_zipf_exponent = 1.1;
  /// Discrete bitrate ladder (Mbps) and its bimodal weights.
  std::vector<double> bitrate_ladder{0.35, 0.75, 1.5, 2.8, 4.5};
  std::vector<double> bitrate_weights{0.34, 0.09, 0.08, 0.14, 0.35};
  double abandonment_rate = 0.78;
  /// Mean watch time of abandoning / engaged sessions (seconds).
  double abandon_mean_s = 8.0;
  double engaged_mean_s = 420.0;
  /// Mid-stream switching: base hazard (per second of active streaming) and
  /// the amplitude/period of its slow modulation (drives Fig. 4's swing).
  double switch_rate_per_s = 0.0030;
  double switch_modulation = 0.8;
  double switch_period_s = 1400.0;
  /// Strength of CDN A's small-city advantage (Fig. 5): A's weight is
  /// multiplied by 1 + boost * exp(-city_requests / small_city_scale).
  double small_city_boost = 3.0;
  double small_city_scale = 500.0;
};

/// The generated trace plus the per-country CDN share model behind it
/// (exposed so tests can assert the generative story).
class BrokerTrace {
 public:
  BrokerTrace(std::vector<Session> sessions, double duration_s)
      : sessions_(std::move(sessions)), duration_s_(duration_s) {}

  [[nodiscard]] std::span<const Session> sessions() const noexcept { return sessions_; }
  [[nodiscard]] double duration_s() const noexcept { return duration_s_; }
  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }

 private:
  std::vector<Session> sessions_;
  double duration_s_;
};

/// Generates the broker-optimized trace.
[[nodiscard]] BrokerTrace generate_trace(const geo::World& world,
                                         const TraceConfig& config, core::Rng& rng);

/// Generates non-broker background traffic: `multiplier` x the session count
/// of `config`, same marginals, all labelled TraceCdn::kOther and never
/// switched (the broker does not control it; paper §5.1 uses 3x).
[[nodiscard]] BrokerTrace generate_background(const geo::World& world,
                                              const TraceConfig& config,
                                              double multiplier, core::Rng& rng);

}  // namespace vdx::trace
