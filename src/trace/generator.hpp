// Synthetic broker trace generator.
//
// Substitution note (DESIGN.md §2): the paper's broker trace is proprietary,
// but §3.1–§3.2 state every marginal the evaluation consumes; this generator
// reproduces them by construction:
//   * ~33.4K sessions over ~1 hour for one content provider;
//   * Zipf video popularity, power-law client-city distribution (inherited
//     from the World demand weights);
//   * bimodal bitrate distribution peaking at the lowest & highest rungs;
//   * ~78% of clients abandon almost immediately;
//   * per-country CDN usage shares that vary wildly (Fig. 7), with the
//     distributed "CDN A" increasingly favored in small cities (Fig. 5);
//   * a mid-stream switching process whose per-5s moved fraction averages
//     ~40% and swings between ~20% and ~60% (Fig. 4).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "geo/world.hpp"
#include "trace/session.hpp"

namespace vdx::trace {

class WorkloadModulation;

struct TraceConfig {
  std::size_t session_count = 33'400;
  double duration_s = 3600.0;
  std::size_t video_count = 3000;
  double video_zipf_exponent = 0.8;
  std::size_t as_count = 50;
  double as_zipf_exponent = 1.1;
  /// Discrete bitrate ladder (Mbps) and its bimodal weights.
  std::vector<double> bitrate_ladder{0.35, 0.75, 1.5, 2.8, 4.5};
  std::vector<double> bitrate_weights{0.34, 0.09, 0.08, 0.14, 0.35};
  double abandonment_rate = 0.78;
  /// Mean watch time of abandoning / engaged sessions (seconds).
  double abandon_mean_s = 8.0;
  double engaged_mean_s = 420.0;
  /// Mid-stream switching: base hazard (per second of active streaming) and
  /// the amplitude/period of its slow modulation (drives Fig. 4's swing).
  double switch_rate_per_s = 0.0030;
  double switch_modulation = 0.8;
  double switch_period_s = 1400.0;
  /// Strength of CDN A's small-city advantage (Fig. 5): A's weight is
  /// multiplied by 1 + boost * exp(-city_requests / small_city_scale).
  double small_city_boost = 3.0;
  double small_city_scale = 500.0;
};

/// The generated trace plus the per-country CDN share model behind it
/// (exposed so tests can assert the generative story).
class BrokerTrace {
 public:
  BrokerTrace(std::vector<Session> sessions, double duration_s)
      : sessions_(std::move(sessions)), duration_s_(duration_s) {}

  [[nodiscard]] std::span<const Session> sessions() const noexcept { return sessions_; }
  [[nodiscard]] double duration_s() const noexcept { return duration_s_; }
  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }

 private:
  std::vector<Session> sessions_;
  double duration_s_;
};

/// Generates the broker-optimized trace.
[[nodiscard]] BrokerTrace generate_trace(const geo::World& world,
                                         const TraceConfig& config, core::Rng& rng);

/// Generates non-broker background traffic: `multiplier` x the session count
/// of `config`, same marginals, all labelled TraceCdn::kOther and never
/// switched (the broker does not control it; paper §5.1 uses 3x).
[[nodiscard]] BrokerTrace generate_background(const geo::World& world,
                                              const TraceConfig& config,
                                              double multiplier, core::Rng& rng);

/// Streaming trace generation for multi-hour, million-session horizons.
///
/// The monolithic generate_trace materializes (and globally sorts) the whole
/// trace, which caps the reachable scale at available memory. This generator
/// produces the *same statistical model* as a bounded stream: the horizon is
/// cut into fixed time blocks, each block's sessions are drawn from an
/// independent RNG substream forked off the base seed by block index, sorted
/// by arrival within the block, and handed out through `next_batch(n)` in
/// global arrival order (blocks cover disjoint time windows). Session ids
/// are issued densely in arrival order, matching the materialized trace's
/// id convention.
///
/// Determinism contract:
///   * the emitted session sequence is a pure function of (world, config,
///     seed, options) — the `n` passed to next_batch() only chunks the
///     stream, it never changes it (chunk-boundary determinism);
///   * block substreams are independent: block b's sessions depend only on
///     the base seed and b, never on how many other blocks were generated;
///   * memory is bounded by one block (options.block_sessions), not by
///     config.session_count.
///
/// Note the stream is *statistically* equivalent to generate_trace, not
/// byte-identical to it: the monolithic path draws all fields from one
/// sequential stream, the blocked path from per-block substreams.
class BrokerTraceGenerator {
 public:
  struct Options {
    /// Generation granularity: the horizon is split into
    /// ceil(session_count / block_sessions) time blocks. A model parameter
    /// (changes the substream layout), unlike next_batch's `n`.
    std::size_t block_sessions = 65'536;
    /// false: background traffic (all TraceCdn::kOther, never switched).
    bool broker_controlled = true;
    /// Optional demand modulators (non-owning; must outlive the generator).
    /// When null or inactive the generator is byte-identical to the
    /// unmodulated stream. When active, the horizon partition follows the
    /// cumulative modulated intensity — total_sessions() scales with the
    /// injected load (a 50x flash crowd adds sessions, a suppression removes
    /// them) — and every block stays a pure function of (seed, block), so
    /// reset()/seek()/resume() keep their byte-identity contracts.
    const WorkloadModulation* modulation = nullptr;
  };

  /// `config.duration_s` is the stream horizon (vdxsim exposes it in
  /// hours); `config.session_count` may be 0 (empty stream, no throw).
  BrokerTraceGenerator(const geo::World& world, const TraceConfig& config,
                       core::Rng rng);
  BrokerTraceGenerator(const geo::World& world, const TraceConfig& config,
                       core::Rng rng, Options options);
  ~BrokerTraceGenerator();
  BrokerTraceGenerator(const BrokerTraceGenerator&) = delete;
  BrokerTraceGenerator& operator=(const BrokerTraceGenerator&) = delete;

  /// Up to `max_sessions` further sessions in arrival order; empty once the
  /// horizon is exhausted. `max_sessions == 0` returns an empty batch.
  [[nodiscard]] std::vector<Session> next_batch(std::size_t max_sessions);

  [[nodiscard]] bool exhausted() const noexcept;
  /// Sessions handed out so far / over the full horizon.
  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::size_t total_sessions() const noexcept;
  [[nodiscard]] double duration_s() const noexcept;
  [[nodiscard]] std::size_t block_count() const noexcept { return block_count_; }
  /// Sessions currently buffered (the memory-bound proxy: at most one
  /// block plus the unconsumed tail of the previous one).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - buffer_pos_;
  }

  /// Rewinds to the start of the stream; the replayed sequence is identical.
  void reset();

  /// Repositions the stream so the next emitted session is number `emitted`
  /// (0-based, as counted by emitted()). Because block substreams are pure
  /// functions of (seed, block index), only the block containing that
  /// position is regenerated — a checkpoint can resume a million-session
  /// stream by storing one integer. Sessions emitted after a seek are
  /// byte-identical to an uninterrupted pass. Throws std::invalid_argument
  /// when `emitted` exceeds the horizon total.
  void seek(std::size_t emitted);

  /// The shared sampling model (also backs the monolithic generators).
  struct Model;

 private:
  void refill();

  std::unique_ptr<Model> model_;
  core::Rng base_rng_;
  Options options_;
  /// Modulated-mode state: base city demand weights and the cumulative
  /// session partition (block b emits offsets[b+1] - offsets[b] sessions).
  /// Empty in the unmodulated path, which keeps the seed integer partition.
  std::vector<double> city_weights_;
  std::vector<std::uint64_t> mod_offsets_;
  bool modulated_ = false;
  std::size_t block_count_ = 0;
  std::size_t next_block_ = 0;
  std::size_t emitted_ = 0;
  std::vector<Session> buffer_;
  std::size_t buffer_pos_ = 0;
};

}  // namespace vdx::trace
