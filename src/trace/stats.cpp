#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace vdx::trace {

std::vector<double> moved_fraction_timeseries(const BrokerTrace& trace, double bin_s) {
  if (!(bin_s > 0.0)) throw std::invalid_argument{"moved_fraction_timeseries: bin_s"};
  const auto bins = static_cast<std::size_t>(std::ceil(trace.duration_s() / bin_s));
  std::vector<double> active(bins, 0.0);
  std::vector<double> moved(bins, 0.0);
  for (const Session& s : trace.sessions()) {
    const auto first = static_cast<std::size_t>(s.arrival_s / bin_s);
    const auto last = std::min(
        bins - 1, static_cast<std::size_t>(std::max(s.arrival_s, s.end_s() - 1e-9) / bin_s));
    for (std::size_t b = first; b <= last; ++b) {
      const double mid = (static_cast<double>(b) + 0.5) * bin_s;
      if (!s.active_at(mid)) continue;
      active[b] += 1.0;
      if (s.moved_by(mid)) moved[b] += 1.0;
    }
  }
  std::vector<double> out(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    out[b] = active[b] > 0.0 ? moved[b] / active[b] : 0.0;
  }
  return out;
}

double moved_fraction_overall(const BrokerTrace& trace) {
  if (trace.size() == 0) return 0.0;
  std::size_t moved = 0;
  for (const Session& s : trace.sessions()) {
    if (!s.switches.empty()) ++moved;
  }
  return static_cast<double>(moved) / static_cast<double>(trace.size());
}

std::vector<CityUsage> city_usage(const BrokerTrace& trace, const geo::World& world) {
  std::vector<CityUsage> usage(world.cities().size());
  for (std::size_t i = 0; i < usage.size(); ++i) {
    usage[i].city = geo::CityId{static_cast<std::uint32_t>(i)};
  }
  for (const Session& s : trace.sessions()) {
    CityUsage& u = usage[s.city.value()];
    ++u.requests;
    u.share[static_cast<std::size_t>(s.final_cdn())] += 1.0;
  }
  for (auto& u : usage) {
    if (u.requests == 0) continue;
    for (auto& share : u.share) share /= static_cast<double>(u.requests);
  }
  std::erase_if(usage, [](const CityUsage& u) { return u.requests == 0; });
  std::sort(usage.begin(), usage.end(), [](const CityUsage& a, const CityUsage& b) {
    return a.requests < b.requests;
  });
  return usage;
}

std::optional<core::LinearFit> usage_fit(std::span<const CityUsage> usage, TraceCdn cdn) {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(usage.size());
  ys.reserve(usage.size());
  for (const CityUsage& u : usage) {
    xs.push_back(static_cast<double>(u.requests));
    ys.push_back(100.0 * u.share[static_cast<std::size_t>(cdn)]);
  }
  return core::fit_line(xs, ys);
}

std::vector<CountryUsage> country_usage(const BrokerTrace& trace, const geo::World& world,
                                        std::size_t min_requests) {
  std::vector<CountryUsage> usage(world.countries().size());
  for (std::size_t i = 0; i < usage.size(); ++i) {
    usage[i].country = geo::CountryId{static_cast<std::uint32_t>(i)};
  }
  for (const Session& s : trace.sessions()) {
    CountryUsage& u = usage[world.city(s.city).country.value()];
    ++u.requests;
    u.share[static_cast<std::size_t>(s.final_cdn())] += 1.0;
  }
  for (auto& u : usage) {
    if (u.requests == 0) continue;
    for (auto& share : u.share) share /= static_cast<double>(u.requests);
  }
  std::erase_if(usage,
                [min_requests](const CountryUsage& u) { return u.requests < min_requests; });
  return usage;
}

std::optional<double> video_zipf_slope(const BrokerTrace& trace) {
  std::map<std::uint32_t, std::size_t> counts;
  for (const Session& s : trace.sessions()) ++counts[s.video.value()];
  if (counts.size() < 10) return std::nullopt;

  std::vector<double> frequencies;
  frequencies.reserve(counts.size());
  for (const auto& [video, count] : counts) {
    frequencies.push_back(static_cast<double>(count));
  }
  std::sort(frequencies.rbegin(), frequencies.rend());

  // Fit the head of the log-log rank-frequency curve (the tail is dominated
  // by discreteness: many videos with a single request).
  std::vector<double> xs;
  std::vector<double> ys;
  const std::size_t head = std::max<std::size_t>(10, frequencies.size() / 10);
  for (std::size_t rank = 0; rank < head && rank < frequencies.size(); ++rank) {
    if (frequencies[rank] <= 0.0) break;
    xs.push_back(std::log(static_cast<double>(rank + 1)));
    ys.push_back(std::log(frequencies[rank]));
  }
  const auto fit = core::fit_line(xs, ys);
  if (!fit) return std::nullopt;
  return fit->slope;
}

double abandonment_rate(const BrokerTrace& trace) {
  if (trace.size() == 0) return 0.0;
  std::size_t abandoned = 0;
  for (const Session& s : trace.sessions()) {
    if (s.abandoned) ++abandoned;
  }
  return static_cast<double>(abandoned) / static_cast<double>(trace.size());
}

std::vector<std::size_t> requests_per_city(const BrokerTrace& trace,
                                           const geo::World& world) {
  std::vector<std::size_t> counts(world.cities().size(), 0);
  for (const Session& s : trace.sessions()) ++counts[s.city.value()];
  return counts;
}

}  // namespace vdx::trace
