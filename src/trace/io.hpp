// Binary persistence for broker traces.
//
// A generated trace is the unit of reproducibility (the paper's evaluation
// is "data-driven simulation" over one fixed trace), so being able to save
// a trace to disk and reload it bit-exactly matters for sharing experiment
// inputs. Format: a small header (magic, version, session count, duration)
// followed by fixed-layout session records, little-endian, via the proto
// wire primitives.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/generator.hpp"

namespace vdx::trace {

/// Serializes a trace. Throws std::runtime_error on I/O failure.
void save_trace(const BrokerTrace& trace, std::ostream& out);
void save_trace_file(const BrokerTrace& trace, const std::string& path);

/// Deserializes a trace; throws std::runtime_error on malformed input.
[[nodiscard]] BrokerTrace load_trace(std::istream& in);
[[nodiscard]] BrokerTrace load_trace_file(const std::string& path);

}  // namespace vdx::trace
