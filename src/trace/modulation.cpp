#include "trace/modulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdx::trace {

double clamp_rate_multiplier(double multiplier) noexcept {
  if (std::isnan(multiplier)) return 1.0;
  if (multiplier < 0.0) return 0.0;
  return std::min(multiplier, kMaxRateMultiplier);
}

void WorkloadModulation::add_flash_crowd(FlashCrowdSpec spec) {
  if (!std::isfinite(spec.factor) || spec.factor < 0.0) {
    throw std::invalid_argument{"FlashCrowdSpec: factor must be finite and >= 0"};
  }
  if (!std::isfinite(spec.start_s) || spec.start_s < 0.0) {
    throw std::invalid_argument{"FlashCrowdSpec: start_s must be finite and >= 0"};
  }
  if (!std::isfinite(spec.ramp_s) || !std::isfinite(spec.hold_s) ||
      !std::isfinite(spec.decay_s) || spec.ramp_s < 0.0 || spec.hold_s < 0.0 ||
      spec.decay_s < 0.0 || spec.end_s() <= spec.start_s) {
    throw std::invalid_argument{"FlashCrowdSpec: ramp/hold/decay must be finite, >= 0, "
                                "and not all zero"};
  }
  if (!spec.city.valid()) {
    throw std::invalid_argument{"FlashCrowdSpec: invalid city"};
  }
  spec.factor = clamp_rate_multiplier(spec.factor);
  flash_crowds_.push_back(spec);
}

void WorkloadModulation::add_diurnal(DiurnalSpec spec) {
  if (!std::isfinite(spec.amplitude) || spec.amplitude < 0.0) {
    throw std::invalid_argument{"DiurnalSpec: amplitude must be finite and >= 0"};
  }
  if (!std::isfinite(spec.period_s) || spec.period_s <= 0.0) {
    throw std::invalid_argument{"DiurnalSpec: period_s must be finite and > 0"};
  }
  if (!std::isfinite(spec.phase_s)) {
    throw std::invalid_argument{"DiurnalSpec: phase_s must be finite"};
  }
  diurnals_.push_back(spec);
}

double WorkloadModulation::diurnal_multiplier(double t) const noexcept {
  double multiplier = 1.0;
  for (const DiurnalSpec& d : diurnals_) {
    const double phase = 2.0 * M_PI * (t - d.phase_s) / d.period_s;
    multiplier *= std::max(0.0, 1.0 + d.amplitude * std::sin(phase));
  }
  return clamp_rate_multiplier(multiplier);
}

namespace {

/// The trapezoid: 1 outside the event, `factor` through the hold, linear
/// on the ramps. Zero-length ramps degrade to steps (no 0/0).
double trapezoid(const FlashCrowdSpec& spec, double t) noexcept {
  if (t <= spec.start_s || t >= spec.end_s()) return 1.0;
  const double up_end = spec.start_s + spec.ramp_s;
  const double hold_end = up_end + spec.hold_s;
  if (t < up_end) {
    return 1.0 + (spec.factor - 1.0) * (t - spec.start_s) / spec.ramp_s;
  }
  if (t <= hold_end) return spec.factor;
  return spec.factor + (1.0 - spec.factor) * (t - hold_end) / spec.decay_s;
}

}  // namespace

double WorkloadModulation::city_boost(std::uint32_t city, double t) const noexcept {
  double boost = 1.0;
  for (const FlashCrowdSpec& spec : flash_crowds_) {
    if (spec.city.value() == city) boost *= trapezoid(spec, t);
  }
  return clamp_rate_multiplier(boost);
}

BlockModulation::BlockModulation(const WorkloadModulation& modulation,
                                 std::span<const double> city_weights,
                                 double window_lo, double window_hi,
                                 std::size_t bins)
    : modulation_(&modulation), window_lo_(window_lo), window_hi_(window_hi) {
  for (const FlashCrowdSpec& spec : modulation.flash_crowds()) {
    const std::uint32_t city = spec.city.value();
    const bool known = std::any_of(
        hotspots_.begin(), hotspots_.end(),
        [city](const Hotspot& h) { return h.city == city; });
    if (!known && city < city_weights.size()) {
      hotspots_.push_back(Hotspot{city, city_weights[city]});
    }
  }
  std::sort(hotspots_.begin(), hotspots_.end(),
            [](const Hotspot& a, const Hotspot& b) { return a.city < b.city; });
  for (const Hotspot& h : hotspots_) hot_base_mass_ += h.weight;

  bins = std::max<std::size_t>(1, bins);
  const double dt = (window_hi_ - window_lo_) / static_cast<double>(bins);
  cumulative_.resize(bins + 1, 0.0);
  double sum = 0.0;
  for (std::size_t k = 0; k < bins; ++k) {
    const double mid = window_lo_ + (static_cast<double>(k) + 0.5) * dt;
    sum += intensity(modulation, city_weights, mid) * dt;
    cumulative_[k + 1] = sum;
  }
  integral_ = sum;
  if (sum > 0.0) {
    for (double& c : cumulative_) c /= sum;
    cumulative_.back() = 1.0;
  }
}

double BlockModulation::arrival_from(double u) const noexcept {
  if (integral_ <= 0.0) {  // degenerate: fall back to a uniform window map
    return window_lo_ + (window_hi_ - window_lo_) * u;
  }
  u = std::clamp(u, 0.0, std::nextafter(1.0, 0.0));
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t k =
      std::min(static_cast<std::size_t>(it - cumulative_.begin()),
               cumulative_.size() - 1) - 1;
  const double lo = cumulative_[k];
  const double hi = cumulative_[k + 1];
  const double frac = hi > lo ? (u - lo) / (hi - lo) : 0.0;
  const double bins = static_cast<double>(cumulative_.size() - 1);
  const double dt = (window_hi_ - window_lo_) / bins;
  const double t = window_lo_ + (static_cast<double>(k) + frac) * dt;
  return std::min(t, std::nextafter(window_hi_, window_lo_));
}

double BlockModulation::hot_mass(double t) const noexcept {
  double mass = 0.0;
  for (const Hotspot& h : hotspots_) {
    mass += h.weight * modulation_->city_boost(h.city, t);
  }
  return mass;
}

bool BlockModulation::is_hotspot(std::size_t city) const noexcept {
  for (const Hotspot& h : hotspots_) {  // city-ascending, tiny
    if (h.city == city) return true;
    if (h.city > city) return false;
  }
  return false;
}

std::uint32_t BlockModulation::pick_hotspot(double t, double pick) const noexcept {
  for (const Hotspot& h : hotspots_) {
    const double mass = h.weight * modulation_->city_boost(h.city, t);
    if (pick < mass) return h.city;
    pick -= mass;
  }
  return hotspots_.back().city;  // numeric tail: the last positive-mass city
}

double BlockModulation::intensity(const WorkloadModulation& modulation,
                                  std::span<const double> city_weights, double t) {
  // city_boost already folds every spec targeting one city, so each distinct
  // hotspot city must contribute exactly once.
  double hotspot_term = 1.0;
  std::vector<std::uint32_t> seen;
  seen.reserve(modulation.flash_crowds().size());
  for (const FlashCrowdSpec& spec : modulation.flash_crowds()) {
    const std::uint32_t city = spec.city.value();
    if (city >= city_weights.size()) continue;
    if (std::find(seen.begin(), seen.end(), city) != seen.end()) continue;
    seen.push_back(city);
    const double boost = modulation.city_boost(city, t);
    hotspot_term += city_weights[city] * (boost - 1.0);
  }
  const double g = modulation.diurnal_multiplier(t) * hotspot_term;
  return clamp_rate_multiplier(g);
}

}  // namespace vdx::trace
