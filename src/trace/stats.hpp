// Trace statistics behind the paper's characterization figures.
//
//   Figure 4 — moved_fraction_timeseries(): % of active sessions per 5s bin
//              that have been shifted between CDNs during their lifetime.
//   Figure 5 — city_usage() + usage_fit(): CDN usage as a function of
//              requests-per-city, with best-fit lines.
//   Figure 7 — country_usage(): per-country CDN shares (>= 100 requests).
//   §3.1     — popularity sanity stats (Zipf fit, abandonment rate).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "core/stats.hpp"
#include "geo/world.hpp"
#include "trace/generator.hpp"

namespace vdx::trace {

/// Fraction (0..1) of sessions active in each `bin_s` bin that had been
/// moved at least once by the bin midpoint. Bin i covers
/// [i*bin_s, (i+1)*bin_s). Empty bins yield 0.
[[nodiscard]] std::vector<double> moved_fraction_timeseries(const BrokerTrace& trace,
                                                            double bin_s = 5.0);

/// Fraction of all sessions that were moved between CDNs at least once.
[[nodiscard]] double moved_fraction_overall(const BrokerTrace& trace);

struct CityUsage {
  geo::CityId city;
  std::size_t requests = 0;
  /// Usage share by TraceCdn label (sums to 1 when requests > 0).
  std::array<double, kTraceCdnCount> share{};
};

/// Per-city request counts and CDN shares (by final delivering CDN),
/// ascending by request count (the x-axis of Fig. 5).
[[nodiscard]] std::vector<CityUsage> city_usage(const BrokerTrace& trace,
                                                const geo::World& world);

/// Best-fit line of `cdn`'s usage share (%) vs requests-per-city (Fig. 5's
/// dotted lines). Returns nullopt for degenerate inputs.
[[nodiscard]] std::optional<core::LinearFit> usage_fit(std::span<const CityUsage> usage,
                                                       TraceCdn cdn);

struct CountryUsage {
  geo::CountryId country;
  std::size_t requests = 0;
  std::array<double, kTraceCdnCount> share{};
};

/// Per-country usage for countries with >= `min_requests` (paper: 100).
[[nodiscard]] std::vector<CountryUsage> country_usage(const BrokerTrace& trace,
                                                      const geo::World& world,
                                                      std::size_t min_requests = 100);

/// Log-log slope of the video rank-frequency curve; ~ -zipf_exponent.
[[nodiscard]] std::optional<double> video_zipf_slope(const BrokerTrace& trace);

[[nodiscard]] double abandonment_rate(const BrokerTrace& trace);

/// Requests per city (for workload aggregation and Fig. 5's x-axis).
[[nodiscard]] std::vector<std::size_t> requests_per_city(const BrokerTrace& trace,
                                                         const geo::World& world);

}  // namespace vdx::trace
