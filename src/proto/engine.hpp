// Protocol engines: sequence the Decision and Delivery protocols between
// abstract participants, pushing every message through the wire codec so
// that running a round exercises exactly what a networked deployment would
// exchange (and so byte/message accounting is real).
//
// Decision Protocol (paper §4.1): Estimate and Gather are participant-local;
// the engine drives Share -> Matching/Announce -> Optimize -> Accept.
// Delivery Protocol: Query -> Result -> Request -> Delivery.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "proto/messages.hpp"

namespace vdx::proto {

/// CDN side of the Decision Protocol.
class CdnParticipant {
 public:
  virtual ~CdnParticipant() = default;

  /// Step 3 (Share): receive the broker's client aggregates. Designs that
  /// do not share client data deliver an empty span.
  virtual void handle_share(std::span<const ShareMessage> shares) = 0;
  /// Steps 4-5 (Matching + Announce): produce bids.
  [[nodiscard]] virtual std::vector<BidMessage> announce() = 0;
  /// Step 7 (Accept): learn which bids won (awarded_mbps > 0) and lost.
  virtual void handle_accept(std::span<const AcceptMessage> accepts) = 0;
};

/// Broker side of the Decision Protocol.
class BrokerParticipant {
 public:
  virtual ~BrokerParticipant() = default;

  /// Step 2 (Gather): the shares to announce to CDNs this round.
  [[nodiscard]] virtual std::vector<ShareMessage> gather() = 0;
  /// Step 6 (Optimize): consume all bids, return the Accept feed (one entry
  /// per bid, won or lost).
  [[nodiscard]] virtual std::vector<AcceptMessage> optimize(
      std::span<const BidMessage> bids) = 0;
};

/// Transport/accounting statistics for one protocol round.
struct RoundStats {
  std::size_t shares_sent = 0;
  std::size_t bids_received = 0;
  std::size_t accepts_sent = 0;
  std::size_t bytes_on_wire = 0;
};

struct DecisionEngineConfig {
  /// Whether the Share step transmits client data (Marketplace-style
  /// designs) or is skipped (all pre-marketplace designs in Table 2).
  bool share_client_data = true;
};

/// Runs one Decision Protocol round. Every message is encoded and re-decoded
/// through the wire codec.
[[nodiscard]] RoundStats run_decision_round(BrokerParticipant& broker,
                                            std::span<CdnParticipant* const> cdns,
                                            const DecisionEngineConfig& config = {});

/// Client + directory side of the Delivery Protocol.
class DeliveryDirectory {
 public:
  virtual ~DeliveryDirectory() = default;
  /// Steps 1-2: broker answers a client query from the latest Optimize.
  [[nodiscard]] virtual ResultMessage resolve(const QueryMessage& query) = 0;
};

class ClusterFrontend {
 public:
  virtual ~ClusterFrontend() = default;
  /// Steps 3-4: the chosen cluster serves the request.
  [[nodiscard]] virtual DeliveryMessage serve(const RequestMessage& request) = 0;
};

struct DeliveryOutcome {
  ResultMessage result;
  DeliveryMessage delivery;
  std::size_t bytes_on_wire = 0;
};

/// Runs the 4-step Delivery Protocol for one client.
[[nodiscard]] DeliveryOutcome run_delivery(const QueryMessage& query,
                                           DeliveryDirectory& directory,
                                           ClusterFrontend& frontend);

}  // namespace vdx::proto
