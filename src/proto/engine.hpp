// Protocol engines: sequence the Decision and Delivery protocols between
// abstract participants, pushing every message through the wire codec so
// that running a round exercises exactly what a networked deployment would
// exchange (and so byte/message accounting is real).
//
// Decision Protocol (paper §4.1): Estimate and Gather are participant-local;
// the engine drives Share -> Matching/Announce -> Optimize -> Accept.
// Delivery Protocol: Query -> Result -> Request -> Delivery, with a failover
// re-resolution when the chosen cluster turns out to be dark.
//
// Chaos mode (paper §6.3): when a FaultInjector is plugged into the config,
// every frame can be dropped, delayed, duplicated, or mutated. The engine
// then runs a logical clock per protocol step: each message is retried with
// exponential backoff until it arrives, the per-step deadline expires, or
// the retry budget is exhausted; mutated frames are rejected by the
// checksummed codec (never thrown across the engine) and counted. Messages
// that miss their deadline are simply absent from what the receiver sees —
// the round always completes, degraded rather than stalled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/observe.hpp"
#include "proto/fault.hpp"
#include "proto/messages.hpp"

namespace vdx::proto {

/// CDN side of the Decision Protocol.
class CdnParticipant {
 public:
  virtual ~CdnParticipant() = default;

  /// Step 3 (Share): receive the broker's client aggregates. Designs that
  /// do not share client data deliver an empty span; under chaos the span
  /// holds only the shares that survived the transport.
  virtual void handle_share(std::span<const ShareMessage> shares) = 0;
  /// Steps 4-5 (Matching + Announce): produce bids.
  [[nodiscard]] virtual std::vector<BidMessage> announce() = 0;
  /// Step 7 (Accept): learn which bids won (awarded_mbps > 0) and lost.
  virtual void handle_accept(std::span<const AcceptMessage> accepts) = 0;
};

/// Broker side of the Decision Protocol.
class BrokerParticipant {
 public:
  virtual ~BrokerParticipant() = default;

  /// Step 2 (Gather): the shares to announce to CDNs this round.
  [[nodiscard]] virtual std::vector<ShareMessage> gather() = 0;
  /// Step 6 (Optimize): consume all bids that arrived, return the Accept
  /// feed. Implementations may append degraded-round substitutes (e.g.
  /// cached stale bids) before optimizing, so the feed can cover more bids
  /// than were delivered this round.
  [[nodiscard]] virtual std::vector<AcceptMessage> optimize(
      std::span<const BidMessage> bids) = 0;
};

/// Per-step deadline/retry policy for the chaos transport. Times are logical
/// ticks: a fault-free hop takes 1 tick, retries back off exponentially.
struct DeadlineConfig {
  /// Budget per protocol step (Share, Bid, Accept each get a fresh window).
  std::size_t step_deadline_ticks = 8;
  /// First retry fires this many ticks after the send; each further retry
  /// doubles the wait (1x, 2x, 4x, ...).
  std::size_t retry_backoff_ticks = 2;
  /// Retries per message on top of the initial attempt.
  std::size_t max_retries = 3;
};

/// Transport-level chaos accounting for one round (all zero when the
/// transport is perfect).
struct ChaosStats {
  std::size_t messages = 0;        // logical messages attempted
  std::size_t retries = 0;         // re-sends after a presumed loss
  std::size_t timeouts = 0;        // messages undelivered within the deadline
  std::size_t decode_rejects = 0;  // frames rejected by the checksummed codec
  std::size_t frames_dropped = 0;  // injector drops (including retries)
  std::size_t frames_duplicated = 0;
  std::size_t ticks_elapsed = 0;   // sum of per-step completion times
};

/// Transport/accounting statistics for one protocol round.
struct RoundStats {
  std::size_t shares_sent = 0;
  std::size_t bids_received = 0;
  std::size_t accepts_sent = 0;
  std::size_t bytes_on_wire = 0;
  ChaosStats chaos;
};

struct DecisionEngineConfig {
  /// Whether the Share step transmits client data (Marketplace-style
  /// designs) or is skipped (all pre-marketplace designs in Table 2).
  bool share_client_data = true;
  /// Non-owning; nullptr (or a profile with no faults) runs the perfect
  /// transport. Link i carries all traffic to/from CDN i.
  FaultInjector* faults = nullptr;
  DeadlineConfig deadlines;
  /// Observability sinks (no-op by default). With a tracer attached, every
  /// round emits spans for all 7 Decision-Protocol steps (estimate, gather,
  /// share, matching, announce, optimize, accept), and the tracer's logical
  /// clock advances with the transport ticks (1 tick per fault-free step;
  /// the chaos engine's per-step completion times otherwise), so traces are
  /// byte-stable under a fixed seed. The journal receives per-message retry,
  /// timeout, and decode-reject events; the registry aggregates `proto.*`
  /// counters once per round.
  obs::Observer obs;
};

/// Runs one Decision Protocol round. Every message is encoded and re-decoded
/// through the wire codec.
[[nodiscard]] RoundStats run_decision_round(BrokerParticipant& broker,
                                            std::span<CdnParticipant* const> cdns,
                                            const DecisionEngineConfig& config = {});

/// Client + directory side of the Delivery Protocol.
class DeliveryDirectory {
 public:
  virtual ~DeliveryDirectory() = default;
  /// Steps 1-2: broker answers a client query from the latest Optimize.
  [[nodiscard]] virtual ResultMessage resolve(const QueryMessage& query) = 0;
  /// Failover re-resolution (§6.3): the cluster from resolve() turned out to
  /// be dark; answer with an alternative, excluding `dark_cluster`. The
  /// default has no alternative knowledge and repeats resolve().
  [[nodiscard]] virtual ResultMessage resolve_excluding(const QueryMessage& query,
                                                        std::uint32_t dark_cluster) {
    (void)dark_cluster;
    return resolve(query);
  }
};

class ClusterFrontend {
 public:
  virtual ~ClusterFrontend() = default;
  /// Steps 3-4: the chosen cluster serves the request. delivered_mbps <= 0
  /// signals a dark/failed cluster and triggers the directory failover.
  [[nodiscard]] virtual DeliveryMessage serve(const RequestMessage& request) = 0;
};

struct DeliveryOutcome {
  ResultMessage result;
  DeliveryMessage delivery;
  std::size_t bytes_on_wire = 0;
  /// Failover record: true when the first cluster failed mid-stream and the
  /// session was re-homed; `failed_cluster` names the dark cluster.
  bool rehomed = false;
  std::uint32_t failed_cluster = UINT32_MAX;
};

/// Runs the 4-step Delivery Protocol for one client. If the resolved cluster
/// fails to deliver, the directory is asked once for an alternative and the
/// request is replayed there (outcome records the switch). With observability
/// attached, emits `delivery.*` spans, counters, and a kFailover journal
/// event when the session is re-homed.
[[nodiscard]] DeliveryOutcome run_delivery(const QueryMessage& query,
                                           DeliveryDirectory& directory,
                                           ClusterFrontend& frontend,
                                           const obs::Observer& obs = {});

}  // namespace vdx::proto
