#include "proto/fault.hpp"

#include <algorithm>

namespace vdx::proto {

FaultCounters& FaultCounters::operator+=(const FaultCounters& other) noexcept {
  frames += other.frames;
  delivered += other.delivered;
  dropped += other.dropped;
  duplicated += other.duplicated;
  delayed += other.delayed;
  truncated += other.truncated;
  corrupted += other.corrupted;
  return *this;
}

FaultInjector::FaultInjector(FaultProfile profile) : profile_(profile) {}

FaultInjector::LinkState& FaultInjector::state_of(std::size_t link) {
  if (link >= links_.size()) links_.resize(link + 1);
  LinkState& state = links_[link];
  if (!state.initialized) {
    // Decorrelate links by mixing the link index into the seed; Rng's own
    // SplitMix64 seeding whitens the correlated inputs.
    std::uint64_t mix = profile_.seed + 0x9e3779b97f4a7c15ULL * (link + 1);
    state.rng.reseed(core::split_mix64(mix));
    state.initialized = true;
  }
  return state;
}

bool FaultInjector::in_burst(std::size_t link) const noexcept {
  return link < links_.size() && links_[link].burst;
}

std::vector<FaultedFrame> FaultInjector::apply(std::size_t link,
                                               std::span<const std::uint8_t> frame) {
  LinkState& state = state_of(link);
  ++counters_.frames;

  double scale = 1.0;
  if (profile_.burst_enter > 0.0) {
    if (state.burst) {
      if (state.rng.chance(profile_.burst_exit)) state.burst = false;
    } else if (state.rng.chance(profile_.burst_enter)) {
      state.burst = true;
    }
    if (state.burst) scale = profile_.burst_multiplier;
  }
  const auto rate = [scale](double r) { return std::min(1.0, r * scale); };

  if (state.rng.chance(rate(profile_.drop_rate))) {
    ++counters_.dropped;
    return {};
  }

  FaultedFrame out;
  out.bytes.assign(frame.begin(), frame.end());

  if (!out.bytes.empty() && state.rng.chance(rate(profile_.corrupt_rate))) {
    const std::size_t flips = 1 + state.rng.below(3);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t pos = state.rng.below(out.bytes.size());
      out.bytes[pos] ^= static_cast<std::uint8_t>(1u << state.rng.below(8));
    }
    out.mutated = true;
    ++counters_.corrupted;
  }
  if (!out.bytes.empty() && state.rng.chance(rate(profile_.truncate_rate))) {
    out.bytes.resize(state.rng.below(out.bytes.size()));  // strictly shorter
    out.mutated = true;
    ++counters_.truncated;
  }
  if (profile_.max_delay_ticks > 0 && state.rng.chance(rate(profile_.delay_rate))) {
    out.delay_ticks = 1 + state.rng.below(profile_.max_delay_ticks);
    ++counters_.delayed;
  }

  std::vector<FaultedFrame> copies;
  copies.push_back(std::move(out));
  ++counters_.delivered;
  if (state.rng.chance(rate(profile_.duplicate_rate))) {
    copies.push_back(copies.front());
    ++counters_.duplicated;
    ++counters_.delivered;
  }
  return copies;
}

FaultInjector::Saved FaultInjector::save() const {
  Saved saved;
  saved.links.reserve(links_.size());
  for (const LinkState& link : links_) {
    saved.links.push_back(Saved::Link{link.rng.save(), link.burst, link.initialized});
  }
  saved.counters = counters_;
  return saved;
}

void FaultInjector::restore(const Saved& saved) {
  links_.clear();
  links_.resize(saved.links.size());
  for (std::size_t i = 0; i < saved.links.size(); ++i) {
    links_[i].rng.restore(saved.links[i].rng);
    links_[i].burst = saved.links[i].burst;
    links_[i].initialized = saved.links[i].initialized;
  }
  counters_ = saved.counters;
}

}  // namespace vdx::proto
