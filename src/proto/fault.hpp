// Deterministic chaos transport for the VDX wire protocol (paper §6.3).
//
// A FaultInjector sits between a sender and the codec: every outgoing frame
// is passed through `apply`, which — driven by a seeded per-link RNG stream —
// may drop it, duplicate it, delay it (in logical-clock ticks), truncate it,
// or flip bits in it. Links (one per CDN) fork independent sub-streams from
// the profile seed, so the traffic volume on one link never perturbs the
// fault sequence of another, and any run replays exactly from its seed.
//
// Loss bursts follow a two-state Gilbert-Elliott model: while a link is in
// the "bad" state every fault rate is scaled by `burst_multiplier`, which
// produces the clustered losses real paths exhibit instead of iid noise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace vdx::proto {

/// Half-open logical-clock interval [from, until) during which a fault
/// source is armed. Shared schedule plumbing for every fault layer (link
/// chaos, disk faults, drill scripts): schedules expressed as windows on
/// the logical clock replay exactly, independent of wall time.
struct FaultWindow {
  std::uint64_t from = 0;
  std::uint64_t until = 0;

  [[nodiscard]] bool active(std::uint64_t tick) const noexcept {
    return tick >= from && tick < until;
  }
  [[nodiscard]] bool empty() const noexcept { return until <= from; }
};

/// Per-link fault rates. All probabilities are per-frame in [0, 1].
struct FaultProfile {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  double truncate_rate = 0.0;
  /// Probability of flipping 1-3 random bits in the frame.
  double corrupt_rate = 0.0;
  /// Delayed frames arrive 1..max_delay_ticks logical ticks late.
  std::size_t max_delay_ticks = 4;
  /// Gilbert-Elliott burst model: P(good->bad) and P(bad->good) per frame;
  /// in the bad state all rates are scaled by burst_multiplier (capped at 1).
  double burst_enter = 0.0;
  double burst_exit = 0.25;
  double burst_multiplier = 4.0;
  std::uint64_t seed = 0xC4A05C4A05ULL;

  /// True if any fault can ever fire (a perfect transport otherwise).
  [[nodiscard]] bool any() const noexcept {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0 ||
           truncate_rate > 0.0 || corrupt_rate > 0.0;
  }
};

/// Cumulative fault accounting across all links.
struct FaultCounters {
  std::size_t frames = 0;      // frames offered to apply()
  std::size_t delivered = 0;   // copies that left the injector (incl. duplicates)
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t delayed = 0;
  std::size_t truncated = 0;
  std::size_t corrupted = 0;

  FaultCounters& operator+=(const FaultCounters& other) noexcept;
};

/// One copy of a frame after fault injection.
struct FaultedFrame {
  std::vector<std::uint8_t> bytes;
  std::size_t delay_ticks = 0;
  /// Bytes differ from the input (truncated and/or bit-corrupted).
  bool mutated = false;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile = {});

  /// Passes one outgoing frame on `link` through the fault model. Returns
  /// 0 copies (dropped), 1 (normal), or 2 (duplicated); copies may be
  /// mutated and/or delayed. Deterministic per (seed, link, call sequence).
  [[nodiscard]] std::vector<FaultedFrame> apply(std::size_t link,
                                                std::span<const std::uint8_t> frame);

  [[nodiscard]] const FaultProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] const FaultCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = FaultCounters{}; }

  /// Whether `link` is currently in the Gilbert-Elliott bad state.
  [[nodiscard]] bool in_burst(std::size_t link) const noexcept;

  /// Checkpointable state: every link's RNG position + burst flag, plus the
  /// cumulative counters. save() -> restore() replays the exact fault
  /// sequence an uninterrupted run would have produced.
  struct Saved {
    struct Link {
      core::Rng::Snapshot rng;
      bool burst = false;
      bool initialized = false;
    };
    std::vector<Link> links;
    FaultCounters counters;
  };
  [[nodiscard]] Saved save() const;
  void restore(const Saved& saved);

 private:
  struct LinkState {
    core::Rng rng{0};
    bool burst = false;
    bool initialized = false;
  };

  LinkState& state_of(std::size_t link);

  FaultProfile profile_;
  std::vector<LinkState> links_;
  FaultCounters counters_;
};

}  // namespace vdx::proto
