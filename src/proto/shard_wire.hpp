// Wire codec for the coordinator <-> shard-worker control channel
// (DESIGN.md §14).
//
// A sharded exchange splits the marketplace by city across N worker shards;
// the coordinator drives every settlement round over this codec: push demand
// slices, collect per-shard candidate groups, broadcast the global
// allocation. Frames follow the repo's envelope idiom
// ([magic][type][version][shard][round][payload][checksum]) and the decoder
// never throws across the trust boundary: a truncated, bit-flipped,
// wrong-magic, wrong-version, or trailing-bytes frame is rejected with a
// typed core::Result error (Errc::kCorruptFrame) — which is exactly what the
// chaos drills feed it via proto::FaultInjector.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "broker/grouping.hpp"
#include "core/result.hpp"
#include "obs/journal.hpp"

namespace vdx::proto {

/// "VDSH" read as a little-endian u32.
inline constexpr std::uint32_t kShardMagic = 0x48534456u;
inline constexpr std::uint16_t kShardProtocolVersion = 1;

enum class ShardFrameType : std::uint8_t {
  /// Coordinator -> worker: shard topology + per-worker context. First frame
  /// on every (re)connected link; everything else is rejected until it lands.
  kHello = 1,
  /// Coordinator -> worker: replace the worker's demand slice (explicit
  /// broker groups tagged with their global ids).
  kSetDemand,
  /// Coordinator -> worker: incremental session adds/removes routed to this
  /// shard (the worker aggregates them into groups at collect time).
  kSessionDelta,
  /// Coordinator -> worker: request this round's candidate groups.
  kCollect,
  /// Worker -> coordinator: the shard's current demand slice.
  kBidCandidates,
  /// Coordinator -> worker: the slice of the globally settled allocation
  /// that lands on this shard's cities.
  kAllocation,
  /// Coordinator -> worker: serialize your full state (embedded snapshot).
  kStateRequest,
  kStateResponse,
  /// Coordinator -> worker: restore from embedded snapshot bytes.
  kRestoreState,
  /// Coordinator -> worker: write a checkpoint into your per-shard store.
  kCheckpoint,
  /// Coordinator -> worker: load the newest checkpoint from your store.
  kResumeFromStore,
  /// Coordinator -> worker: export your journal window for merging.
  kJournalRequest,
  kJournalSlice,
  kShutdown,
  /// Worker -> coordinator: generic success acknowledgement.
  kAck,
  /// Worker -> coordinator: typed failure (payload: Errc + message). A
  /// corrupt request never partially applies — the worker validates the
  /// whole payload before touching any state.
  kError,
};

/// True for the values the current protocol version defines.
[[nodiscard]] bool shard_frame_type_known(std::uint8_t raw) noexcept;

struct ShardFrame {
  ShardFrameType type = ShardFrameType::kError;
  /// Worker shard the frame addresses (or originates from).
  std::uint32_t shard = 0;
  /// Settlement round the frame belongs to (0 for control-plane frames).
  std::uint64_t round = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const ShardFrame&, const ShardFrame&) = default;
};

/// [magic u32][type u8][version u16][shard u32][round u64]
/// [payload_len u32][payload][fnv1a64 of everything before the checksum]
[[nodiscard]] std::vector<std::uint8_t> encode_shard_frame(const ShardFrame& frame);

/// Rejects every malformed frame with Errc::kCorruptFrame (truncation, bad
/// magic, unknown type, version skew, checksum mismatch, trailing bytes,
/// payload-length lie). Never throws.
[[nodiscard]] core::Result<ShardFrame> try_decode_shard_frame(
    std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Payload codecs. Each decoder validates the complete payload (including
// exhaustion) before returning, so a caller that commits the result never
// commits a half-read frame.
// ---------------------------------------------------------------------------

/// Group id marking a slice derived from session aggregation (the
/// coordinator assigns dense ids at merge time).
inline constexpr std::uint32_t kDerivedGroupId = UINT32_MAX;

/// One broker demand group tagged with its index in the coordinator's
/// global demand vector.
struct ShardGroup {
  std::uint32_t global_id = kDerivedGroupId;
  broker::ClientGroup group;
};

[[nodiscard]] std::vector<std::uint8_t> encode_shard_groups(
    std::span<const ShardGroup> groups);
[[nodiscard]] core::Result<std::vector<ShardGroup>> decode_shard_groups(
    std::span<const std::uint8_t> payload);

/// One session routed to a shard worker's ledger.
struct ShardSessionAdd {
  std::uint32_t id = 0;
  std::uint32_t city = 0;
  double bitrate_mbps = 1.0;

  friend bool operator==(const ShardSessionAdd&, const ShardSessionAdd&) = default;
};

struct ShardSessionDelta {
  std::vector<ShardSessionAdd> adds;
  std::vector<std::uint32_t> removes;
};

[[nodiscard]] std::vector<std::uint8_t> encode_session_delta(
    const ShardSessionDelta& delta);
[[nodiscard]] core::Result<ShardSessionDelta> decode_session_delta(
    std::span<const std::uint8_t> payload);

/// kBidCandidates payload: how the worker derived its slice.
enum class ShardDemandMode : std::uint8_t {
  /// No demand pushed yet (empty slice).
  kNone = 0,
  /// Explicit kSetDemand groups (global ids valid).
  kDemand = 1,
  /// Aggregated from the session ledger (ids are kDerivedGroupId; groups
  /// ordered by (city, bitrate) ascending).
  kSessions = 2,
};

struct ShardCandidates {
  ShardDemandMode mode = ShardDemandMode::kNone;
  std::vector<ShardGroup> groups;
};

[[nodiscard]] std::vector<std::uint8_t> encode_candidates(const ShardCandidates& c);
[[nodiscard]] core::Result<ShardCandidates> decode_candidates(
    std::span<const std::uint8_t> payload);

/// One settled placement as broadcast back to the owning shard. Carries the
/// group's bitrate so the worker can account awarded Mbps without holding
/// the merged demand vector.
struct ShardPlacement {
  std::uint32_t global_group = 0;
  std::uint32_t cluster = 0;
  double clients = 0.0;
  double price = 0.0;
  double score = 0.0;
  double bitrate_mbps = 1.0;

  friend bool operator==(const ShardPlacement&, const ShardPlacement&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_allocation(
    std::span<const ShardPlacement> placements);
[[nodiscard]] core::Result<std::vector<ShardPlacement>> decode_allocation(
    std::span<const std::uint8_t> payload);

/// kHello payload: everything a worker needs to participate — it never sees
/// the Scenario (process workers are forked before any demand exists).
struct ShardHello {
  std::uint32_t shard = 0;
  std::uint32_t shard_count = 1;
  std::uint32_t city_count = 0;
  /// fnv1a over the coordinator's city->shard plan; restore paths use it to
  /// refuse snapshots taken under a different partition.
  std::uint64_t plan_hash = 0;
  /// Owning CDN per cluster id (for worker-side journal attribution).
  std::vector<std::uint32_t> cdn_of_cluster;
  std::uint64_t journal_capacity = 4096;
  /// Per-shard checkpoint directory ("" = no store).
  std::string checkpoint_dir;
  std::uint32_t checkpoint_keep = 3;

  friend bool operator==(const ShardHello&, const ShardHello&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_shard_hello(const ShardHello& hello);
[[nodiscard]] core::Result<ShardHello> decode_shard_hello(
    std::span<const std::uint8_t> payload);

/// kJournalSlice payload: the worker's retained journal window.
struct ShardJournalSlice {
  std::uint64_t total_recorded = 0;
  std::uint32_t round = 0;
  std::vector<obs::Event> events;
};

[[nodiscard]] std::vector<std::uint8_t> encode_journal_slice(
    const ShardJournalSlice& slice);
[[nodiscard]] core::Result<ShardJournalSlice> decode_journal_slice(
    std::span<const std::uint8_t> payload);

/// kError payload.
struct ShardError {
  core::Errc code = core::Errc::kInvalidArgument;
  std::string message;
};

[[nodiscard]] std::vector<std::uint8_t> encode_shard_error(core::Errc code,
                                                           std::string_view message);
[[nodiscard]] core::Result<ShardError> decode_shard_error(
    std::span<const std::uint8_t> payload);

/// kAck payload: a single u64 the responder wants echoed back (the applied
/// round for allocation acks, rounds_applied for resume acks, 0 otherwise).
[[nodiscard]] std::vector<std::uint8_t> encode_shard_ack(std::uint64_t value);
[[nodiscard]] core::Result<std::uint64_t> decode_shard_ack(
    std::span<const std::uint8_t> payload);

}  // namespace vdx::proto
