// VDX protocol messages (paper §6.1) and their envelope encoding.
//
// Decision Protocol:
//   Share  = [share_id, location, isp, content_id, data_size, client_count]
//   Bid    = [cluster_id, share_id, performance_estimate, capacity, price]
//   Accept = same fields as Bid, plus the traffic actually awarded (the
//            Accept step tells *all* CDNs which bids won and by how much so
//            they can adapt future bids).
// Delivery Protocol:
//   Query / Result / Request / Delivery.
//
// Envelope: [u32 payload_length][u8 type][u16 version][payload][u32 fnv1a].
// The trailing FNV-1a checksum covers header + payload, so any bit flip a
// faulty link introduces is detected and the frame rejected — a requirement
// for running the exchange over the chaos transport (proto/fault.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "core/result.hpp"
#include "proto/wire.hpp"

namespace vdx::proto {

inline constexpr std::uint16_t kProtocolVersion = 2;

enum class MessageType : std::uint8_t {
  kShare = 1,
  kBid = 2,
  kAccept = 3,
  kQuery = 4,
  kResult = 5,
  kRequest = 6,
  kDelivery = 7,
};

struct ShareMessage {
  std::uint32_t share_id = 0;
  std::uint32_t location = 0;  // city id
  std::uint32_t isp = 0;       // AS number, 0 = aggregated
  std::uint32_t content_id = 0;
  double data_size_mbps = 0.0;  // per-client bitrate
  std::uint32_t client_count = 0;

  friend bool operator==(const ShareMessage&, const ShareMessage&) = default;
};

struct BidMessage {
  std::uint32_t cluster_id = 0;  // opaque between broker and CDN
  std::uint32_t share_id = 0;
  double performance_estimate = 0.0;  // score, lower better
  double capacity_mbps = 0.0;
  double price = 0.0;  // $/unit
  std::uint32_t cdn_id = 0;

  friend bool operator==(const BidMessage&, const BidMessage&) = default;
};

struct AcceptMessage {
  std::uint32_t cluster_id = 0;
  std::uint32_t share_id = 0;
  double performance_estimate = 0.0;
  double capacity_mbps = 0.0;
  double price = 0.0;
  std::uint32_t cdn_id = 0;
  double awarded_mbps = 0.0;  // 0 => the bid lost

  friend bool operator==(const AcceptMessage&, const AcceptMessage&) = default;
};

struct QueryMessage {
  std::uint32_t session_id = 0;
  std::uint32_t location = 0;
  double bitrate_mbps = 0.0;

  friend bool operator==(const QueryMessage&, const QueryMessage&) = default;
};

struct ResultMessage {
  std::uint32_t session_id = 0;
  std::uint32_t cdn_id = 0;
  std::uint32_t cluster_id = 0;

  friend bool operator==(const ResultMessage&, const ResultMessage&) = default;
};

struct RequestMessage {
  std::uint32_t session_id = 0;
  std::uint32_t cluster_id = 0;
  std::uint32_t content_id = 0;

  friend bool operator==(const RequestMessage&, const RequestMessage&) = default;
};

struct DeliveryMessage {
  std::uint32_t session_id = 0;
  std::uint32_t cluster_id = 0;
  double delivered_mbps = 0.0;

  friend bool operator==(const DeliveryMessage&, const DeliveryMessage&) = default;
};

using Message = std::variant<ShareMessage, BidMessage, AcceptMessage, QueryMessage,
                             ResultMessage, RequestMessage, DeliveryMessage>;

[[nodiscard]] MessageType type_of(const Message& message) noexcept;

/// Encodes a message with its envelope.
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& message);

/// Decodes one enveloped message; throws WireError on malformed input.
/// `consumed` (optional) receives the total envelope size, enabling framed
/// streams of back-to-back messages.
[[nodiscard]] Message decode(std::span<const std::uint8_t> data,
                             std::size_t* consumed = nullptr);

/// Non-throwing decode for hostile input (the chaos transport's receive
/// path): truncated, bit-corrupted, mis-typed, or mis-versioned frames come
/// back as Errc::kCorruptFrame instead of an exception. Every payload is
/// fixed-size, so the frame is fully validated (including the checksum)
/// before any field is read.
[[nodiscard]] core::Result<Message> try_decode(std::span<const std::uint8_t> data,
                                               std::size_t* consumed = nullptr);

/// Decodes a back-to-back stream of enveloped messages.
[[nodiscard]] std::vector<Message> decode_stream(std::span<const std::uint8_t> data);

}  // namespace vdx::proto
