#include "proto/messages.hpp"

namespace vdx::proto {

namespace {

void write_payload(ByteWriter& w, const ShareMessage& m) {
  w.write_u32(m.share_id);
  w.write_u32(m.location);
  w.write_u32(m.isp);
  w.write_u32(m.content_id);
  w.write_f64(m.data_size_mbps);
  w.write_u32(m.client_count);
}

void write_payload(ByteWriter& w, const BidMessage& m) {
  w.write_u32(m.cluster_id);
  w.write_u32(m.share_id);
  w.write_f64(m.performance_estimate);
  w.write_f64(m.capacity_mbps);
  w.write_f64(m.price);
  w.write_u32(m.cdn_id);
}

void write_payload(ByteWriter& w, const AcceptMessage& m) {
  w.write_u32(m.cluster_id);
  w.write_u32(m.share_id);
  w.write_f64(m.performance_estimate);
  w.write_f64(m.capacity_mbps);
  w.write_f64(m.price);
  w.write_u32(m.cdn_id);
  w.write_f64(m.awarded_mbps);
}

void write_payload(ByteWriter& w, const QueryMessage& m) {
  w.write_u32(m.session_id);
  w.write_u32(m.location);
  w.write_f64(m.bitrate_mbps);
}

void write_payload(ByteWriter& w, const ResultMessage& m) {
  w.write_u32(m.session_id);
  w.write_u32(m.cdn_id);
  w.write_u32(m.cluster_id);
}

void write_payload(ByteWriter& w, const RequestMessage& m) {
  w.write_u32(m.session_id);
  w.write_u32(m.cluster_id);
  w.write_u32(m.content_id);
}

void write_payload(ByteWriter& w, const DeliveryMessage& m) {
  w.write_u32(m.session_id);
  w.write_u32(m.cluster_id);
  w.write_f64(m.delivered_mbps);
}

ShareMessage read_share(ByteReader& r) {
  ShareMessage m;
  m.share_id = r.read_u32();
  m.location = r.read_u32();
  m.isp = r.read_u32();
  m.content_id = r.read_u32();
  m.data_size_mbps = r.read_f64();
  m.client_count = r.read_u32();
  return m;
}

BidMessage read_bid(ByteReader& r) {
  BidMessage m;
  m.cluster_id = r.read_u32();
  m.share_id = r.read_u32();
  m.performance_estimate = r.read_f64();
  m.capacity_mbps = r.read_f64();
  m.price = r.read_f64();
  m.cdn_id = r.read_u32();
  return m;
}

AcceptMessage read_accept(ByteReader& r) {
  AcceptMessage m;
  m.cluster_id = r.read_u32();
  m.share_id = r.read_u32();
  m.performance_estimate = r.read_f64();
  m.capacity_mbps = r.read_f64();
  m.price = r.read_f64();
  m.cdn_id = r.read_u32();
  m.awarded_mbps = r.read_f64();
  return m;
}

QueryMessage read_query(ByteReader& r) {
  QueryMessage m;
  m.session_id = r.read_u32();
  m.location = r.read_u32();
  m.bitrate_mbps = r.read_f64();
  return m;
}

ResultMessage read_result(ByteReader& r) {
  ResultMessage m;
  m.session_id = r.read_u32();
  m.cdn_id = r.read_u32();
  m.cluster_id = r.read_u32();
  return m;
}

RequestMessage read_request(ByteReader& r) {
  RequestMessage m;
  m.session_id = r.read_u32();
  m.cluster_id = r.read_u32();
  m.content_id = r.read_u32();
  return m;
}

DeliveryMessage read_delivery(ByteReader& r) {
  DeliveryMessage m;
  m.session_id = r.read_u32();
  m.cluster_id = r.read_u32();
  m.delivered_mbps = r.read_f64();
  return m;
}

}  // namespace

MessageType type_of(const Message& message) noexcept {
  return std::visit(
      [](const auto& m) -> MessageType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ShareMessage>) return MessageType::kShare;
        if constexpr (std::is_same_v<T, BidMessage>) return MessageType::kBid;
        if constexpr (std::is_same_v<T, AcceptMessage>) return MessageType::kAccept;
        if constexpr (std::is_same_v<T, QueryMessage>) return MessageType::kQuery;
        if constexpr (std::is_same_v<T, ResultMessage>) return MessageType::kResult;
        if constexpr (std::is_same_v<T, RequestMessage>) return MessageType::kRequest;
        if constexpr (std::is_same_v<T, DeliveryMessage>) return MessageType::kDelivery;
      },
      message);
}

std::vector<std::uint8_t> encode(const Message& message) {
  ByteWriter w;
  w.write_u32(0);  // length placeholder
  w.write_u8(static_cast<std::uint8_t>(type_of(message)));
  w.write_u16(kProtocolVersion);
  const std::size_t payload_start = w.size();
  std::visit([&w](const auto& m) { write_payload(w, m); }, message);
  w.patch_u32(0, static_cast<std::uint32_t>(w.size() - payload_start));
  return w.take();
}

Message decode(std::span<const std::uint8_t> data, std::size_t* consumed) {
  ByteReader header{data};
  const std::uint32_t payload_length = header.read_u32();
  const std::uint8_t raw_type = header.read_u8();
  const std::uint16_t version = header.read_u16();
  if (version != kProtocolVersion) throw WireError{"unsupported protocol version"};

  constexpr std::size_t kHeaderSize = 4 + 1 + 2;
  if (data.size() < kHeaderSize + payload_length) throw WireError{"truncated envelope"};
  ByteReader payload{data.subspan(kHeaderSize, payload_length)};

  Message message = [&]() -> Message {
    switch (static_cast<MessageType>(raw_type)) {
      case MessageType::kShare:
        return read_share(payload);
      case MessageType::kBid:
        return read_bid(payload);
      case MessageType::kAccept:
        return read_accept(payload);
      case MessageType::kQuery:
        return read_query(payload);
      case MessageType::kResult:
        return read_result(payload);
      case MessageType::kRequest:
        return read_request(payload);
      case MessageType::kDelivery:
        return read_delivery(payload);
    }
    throw WireError{"unknown message type"};
  }();
  if (!payload.exhausted()) throw WireError{"trailing bytes in payload"};
  if (consumed != nullptr) *consumed = kHeaderSize + payload_length;
  return message;
}

std::vector<Message> decode_stream(std::span<const std::uint8_t> data) {
  std::vector<Message> out;
  std::size_t offset = 0;
  while (offset < data.size()) {
    std::size_t consumed = 0;
    out.push_back(decode(data.subspan(offset), &consumed));
    offset += consumed;
  }
  return out;
}

}  // namespace vdx::proto
