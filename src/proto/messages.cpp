#include "proto/messages.hpp"

namespace vdx::proto {

namespace {

void write_payload(ByteWriter& w, const ShareMessage& m) {
  w.write_u32(m.share_id);
  w.write_u32(m.location);
  w.write_u32(m.isp);
  w.write_u32(m.content_id);
  w.write_f64(m.data_size_mbps);
  w.write_u32(m.client_count);
}

void write_payload(ByteWriter& w, const BidMessage& m) {
  w.write_u32(m.cluster_id);
  w.write_u32(m.share_id);
  w.write_f64(m.performance_estimate);
  w.write_f64(m.capacity_mbps);
  w.write_f64(m.price);
  w.write_u32(m.cdn_id);
}

void write_payload(ByteWriter& w, const AcceptMessage& m) {
  w.write_u32(m.cluster_id);
  w.write_u32(m.share_id);
  w.write_f64(m.performance_estimate);
  w.write_f64(m.capacity_mbps);
  w.write_f64(m.price);
  w.write_u32(m.cdn_id);
  w.write_f64(m.awarded_mbps);
}

void write_payload(ByteWriter& w, const QueryMessage& m) {
  w.write_u32(m.session_id);
  w.write_u32(m.location);
  w.write_f64(m.bitrate_mbps);
}

void write_payload(ByteWriter& w, const ResultMessage& m) {
  w.write_u32(m.session_id);
  w.write_u32(m.cdn_id);
  w.write_u32(m.cluster_id);
}

void write_payload(ByteWriter& w, const RequestMessage& m) {
  w.write_u32(m.session_id);
  w.write_u32(m.cluster_id);
  w.write_u32(m.content_id);
}

void write_payload(ByteWriter& w, const DeliveryMessage& m) {
  w.write_u32(m.session_id);
  w.write_u32(m.cluster_id);
  w.write_f64(m.delivered_mbps);
}

ShareMessage read_share(ByteReader& r) {
  ShareMessage m;
  m.share_id = r.read_u32();
  m.location = r.read_u32();
  m.isp = r.read_u32();
  m.content_id = r.read_u32();
  m.data_size_mbps = r.read_f64();
  m.client_count = r.read_u32();
  return m;
}

BidMessage read_bid(ByteReader& r) {
  BidMessage m;
  m.cluster_id = r.read_u32();
  m.share_id = r.read_u32();
  m.performance_estimate = r.read_f64();
  m.capacity_mbps = r.read_f64();
  m.price = r.read_f64();
  m.cdn_id = r.read_u32();
  return m;
}

AcceptMessage read_accept(ByteReader& r) {
  AcceptMessage m;
  m.cluster_id = r.read_u32();
  m.share_id = r.read_u32();
  m.performance_estimate = r.read_f64();
  m.capacity_mbps = r.read_f64();
  m.price = r.read_f64();
  m.cdn_id = r.read_u32();
  m.awarded_mbps = r.read_f64();
  return m;
}

QueryMessage read_query(ByteReader& r) {
  QueryMessage m;
  m.session_id = r.read_u32();
  m.location = r.read_u32();
  m.bitrate_mbps = r.read_f64();
  return m;
}

ResultMessage read_result(ByteReader& r) {
  ResultMessage m;
  m.session_id = r.read_u32();
  m.cdn_id = r.read_u32();
  m.cluster_id = r.read_u32();
  return m;
}

RequestMessage read_request(ByteReader& r) {
  RequestMessage m;
  m.session_id = r.read_u32();
  m.cluster_id = r.read_u32();
  m.content_id = r.read_u32();
  return m;
}

DeliveryMessage read_delivery(ByteReader& r) {
  DeliveryMessage m;
  m.session_id = r.read_u32();
  m.cluster_id = r.read_u32();
  m.delivered_mbps = r.read_f64();
  return m;
}

/// Fixed payload size per message type (every field is fixed-width); 0 marks
/// an unknown type.
constexpr std::size_t payload_size(std::uint8_t raw_type) noexcept {
  switch (static_cast<MessageType>(raw_type)) {
    case MessageType::kShare:
      return 4 * 4 + 8 + 4;
    case MessageType::kBid:
      return 4 + 4 + 8 * 3 + 4;
    case MessageType::kAccept:
      return 4 + 4 + 8 * 3 + 4 + 8;
    case MessageType::kQuery:
      return 4 + 4 + 8;
    case MessageType::kResult:
      return 4 + 4 + 4;
    case MessageType::kRequest:
      return 4 + 4 + 4;
    case MessageType::kDelivery:
      return 4 + 4 + 8;
  }
  return 0;
}

constexpr std::size_t kHeaderSize = 4 + 1 + 2;
constexpr std::size_t kChecksumSize = 4;

std::uint32_t fnv1a(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t hash = 0x811c9dc5u;
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x01000193u;
  }
  return hash;
}

std::uint32_t read_u32_le(std::span<const std::uint8_t> data,
                          std::size_t pos) noexcept {
  return static_cast<std::uint32_t>(data[pos]) |
         (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(data[pos + 3]) << 24);
}

}  // namespace

MessageType type_of(const Message& message) noexcept {
  return std::visit(
      [](const auto& m) -> MessageType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ShareMessage>) return MessageType::kShare;
        if constexpr (std::is_same_v<T, BidMessage>) return MessageType::kBid;
        if constexpr (std::is_same_v<T, AcceptMessage>) return MessageType::kAccept;
        if constexpr (std::is_same_v<T, QueryMessage>) return MessageType::kQuery;
        if constexpr (std::is_same_v<T, ResultMessage>) return MessageType::kResult;
        if constexpr (std::is_same_v<T, RequestMessage>) return MessageType::kRequest;
        if constexpr (std::is_same_v<T, DeliveryMessage>) return MessageType::kDelivery;
      },
      message);
}

std::vector<std::uint8_t> encode(const Message& message) {
  ByteWriter w;
  w.write_u32(0);  // length placeholder
  w.write_u8(static_cast<std::uint8_t>(type_of(message)));
  w.write_u16(kProtocolVersion);
  const std::size_t payload_start = w.size();
  std::visit([&w](const auto& m) { write_payload(w, m); }, message);
  w.patch_u32(0, static_cast<std::uint32_t>(w.size() - payload_start));
  w.write_u32(fnv1a(w.data()));  // checksum over header + payload
  return w.take();
}

core::Result<Message> try_decode(std::span<const std::uint8_t> data,
                                 std::size_t* consumed) {
  const auto reject = [](std::string why) {
    return core::Result<Message>::failure(core::Errc::kCorruptFrame, std::move(why));
  };
  if (data.size() < kHeaderSize) return reject("truncated envelope header");

  const std::uint32_t payload_length = read_u32_le(data, 0);
  const std::uint8_t raw_type = data[4];
  const std::uint16_t version = static_cast<std::uint16_t>(
      data[5] | (static_cast<std::uint16_t>(data[6]) << 8));
  if (version != kProtocolVersion) return reject("unsupported protocol version");

  const std::size_t expected = payload_size(raw_type);
  if (expected == 0) return reject("unknown message type");
  if (payload_length != expected) return reject("payload length mismatch");

  const std::size_t envelope = kHeaderSize + payload_length + kChecksumSize;
  if (data.size() < envelope) return reject("truncated envelope");

  const std::size_t checksum_at = kHeaderSize + payload_length;
  if (read_u32_le(data, checksum_at) != fnv1a(data.first(checksum_at))) {
    return reject("frame checksum mismatch");
  }

  // Every field is fixed-width and the payload length is validated above, so
  // none of the reads below can run out of bytes.
  ByteReader payload{data.subspan(kHeaderSize, payload_length)};
  Message message = [&]() -> Message {
    switch (static_cast<MessageType>(raw_type)) {
      case MessageType::kShare:
        return read_share(payload);
      case MessageType::kBid:
        return read_bid(payload);
      case MessageType::kAccept:
        return read_accept(payload);
      case MessageType::kQuery:
        return read_query(payload);
      case MessageType::kResult:
        return read_result(payload);
      case MessageType::kRequest:
        return read_request(payload);
      default:
        return read_delivery(payload);
    }
  }();
  if (consumed != nullptr) *consumed = envelope;
  return message;
}

Message decode(std::span<const std::uint8_t> data, std::size_t* consumed) {
  core::Result<Message> result = try_decode(data, consumed);
  if (!result.ok()) throw WireError{result.error().message};
  return std::move(result).value();
}

std::vector<Message> decode_stream(std::span<const std::uint8_t> data) {
  std::vector<Message> out;
  std::size_t offset = 0;
  while (offset < data.size()) {
    std::size_t consumed = 0;
    out.push_back(decode(data.subspan(offset), &consumed));
    offset += consumed;
  }
  return out;
}

}  // namespace vdx::proto
