#include "proto/engine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

namespace vdx::proto {

namespace {

/// Encode, count, decode — the in-memory stand-in for a network hop.
template <typename T>
T transmit(const T& message, std::size_t& bytes) {
  const std::vector<std::uint8_t> frame = encode(Message{message});
  bytes += frame.size();
  const Message decoded = decode(frame);
  return std::get<T>(decoded);
}

/// One message over a faulty link: send, and on presumed loss retry with
/// exponential backoff until delivery, deadline expiry, or budget exhaustion.
/// Mutated frames are rejected by try_decode (checksum) and treated as lost.
/// Returns the decoded message if a copy arrived within the step deadline;
/// `step_ticks` tracks the step's completion time on this and other links.
/// Retries, timeouts, and decode rejects are narrated into the journal
/// (subject = link) as they happen.
template <typename T>
std::optional<T> chaos_transmit(const T& message, std::size_t link,
                                FaultInjector& injector, const DeadlineConfig& config,
                                RoundStats& stats, std::size_t& step_ticks,
                                const obs::Observer& obs) {
  const std::vector<std::uint8_t> frame = encode(Message{message});
  ++stats.chaos.messages;

  std::size_t send_tick = 0;
  std::size_t backoff = std::max<std::size_t>(1, config.retry_backoff_ticks);
  for (std::size_t attempt = 0; attempt <= config.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats.chaos.retries;
      obs.record(obs::EventKind::kRetry, static_cast<std::uint32_t>(link),
                 static_cast<double>(attempt));
    }
    const FaultCounters before = injector.counters();
    const std::vector<FaultedFrame> copies = injector.apply(link, frame);
    const FaultCounters& after = injector.counters();
    stats.chaos.frames_dropped += after.dropped - before.dropped;
    stats.chaos.frames_duplicated += after.duplicated - before.duplicated;

    for (const FaultedFrame& copy : copies) {
      stats.bytes_on_wire += copy.bytes.size();
      const core::Result<Message> decoded = try_decode(copy.bytes);
      if (!decoded.ok() || !std::holds_alternative<T>(decoded.value())) {
        ++stats.chaos.decode_rejects;
        obs.record(obs::EventKind::kDecodeReject, static_cast<std::uint32_t>(link));
        continue;
      }
      const std::size_t arrival = send_tick + 1 + copy.delay_ticks;
      if (arrival > config.step_deadline_ticks) continue;  // late copies discarded
      step_ticks = std::max(step_ticks, arrival);
      return std::get<T>(decoded.value());
    }
    send_tick += backoff;
    backoff *= 2;
    if (send_tick > config.step_deadline_ticks) break;  // no budget left to resend
  }
  ++stats.chaos.timeouts;
  obs.record(obs::EventKind::kTimeout, static_cast<std::uint32_t>(link),
             static_cast<double>(config.step_deadline_ticks));
  step_ticks = std::max(step_ticks, config.step_deadline_ticks);
  return std::nullopt;
}

/// Folds one round's wire accounting into the `proto.*` metrics, once per
/// round so hot transport loops never touch the registry.
void record_round_metrics(const obs::Observer& obs, const RoundStats& stats) {
  if (obs.metrics == nullptr) return;
  obs::MetricsRegistry& m = *obs.metrics;
  m.counter("proto.shares_sent").add(static_cast<double>(stats.shares_sent));
  m.counter("proto.bids_received").add(static_cast<double>(stats.bids_received));
  m.counter("proto.accepts_sent").add(static_cast<double>(stats.accepts_sent));
  m.counter("proto.bytes_on_wire").add(static_cast<double>(stats.bytes_on_wire));
  m.counter("proto.messages").add(static_cast<double>(stats.chaos.messages));
  m.counter("proto.retries").add(static_cast<double>(stats.chaos.retries));
  m.counter("proto.timeouts").add(static_cast<double>(stats.chaos.timeouts));
  m.counter("proto.decode_rejects")
      .add(static_cast<double>(stats.chaos.decode_rejects));
  m.counter("proto.frames_dropped").add(static_cast<double>(stats.chaos.frames_dropped));
  m.counter("proto.frames_duplicated")
      .add(static_cast<double>(stats.chaos.frames_duplicated));
}

RoundStats run_chaos_round(BrokerParticipant& broker,
                           std::span<CdnParticipant* const> cdns,
                           const DecisionEngineConfig& config) {
  RoundStats stats;
  FaultInjector& injector = *config.faults;
  const DeadlineConfig& deadlines = config.deadlines;
  obs::SpanTracer* tracer = config.obs.tracer;
  const obs::Histogram step_hist =
      config.obs.metrics != nullptr ? config.obs.metrics->histogram("proto.step_ticks")
                                    : obs::Histogram{};

  for (CdnParticipant* cdn : cdns) {
    if (cdn == nullptr) throw std::invalid_argument{"null CdnParticipant"};
  }

  const obs::SpanTracer::Scoped round_span{tracer, "decision.round"};
  // Step 1 (Estimate) is participant-local; mark it so every trace names all
  // 7 protocol steps.
  if (tracer != nullptr) tracer->instant("decision.estimate");

  // Steps 2-3: Gather + Share. Each CDN receives whichever shares survive
  // its link within the step deadline.
  std::vector<ShareMessage> shares;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.gather"};
    shares = broker.gather();
  }
  std::size_t step_ticks = 0;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.share"};
    for (std::size_t i = 0; i < cdns.size(); ++i) {
      std::vector<ShareMessage> delivered;
      if (config.share_client_data) {
        delivered.reserve(shares.size());
        for (const ShareMessage& share : shares) {
          ++stats.shares_sent;
          if (auto got = chaos_transmit(share, i, injector, deadlines, stats,
                                        step_ticks, config.obs)) {
            delivered.push_back(*got);
          }
        }
      }
      cdns[i]->handle_share(delivered);
    }
    if (tracer != nullptr) tracer->advance(step_ticks);
  }
  stats.chaos.ticks_elapsed += step_ticks;
  step_hist.observe(static_cast<double>(step_ticks));

  // Steps 4-5: Matching (bid computation) + Announce (bid transmission).
  // Lost bids are simply absent from the auction; the broker may backfill
  // them with stale cached bids.
  std::vector<std::pair<std::size_t, BidMessage>> raw_bids;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.matching"};
    for (std::size_t i = 0; i < cdns.size(); ++i) {
      for (BidMessage& bid : cdns[i]->announce()) {
        raw_bids.emplace_back(i, std::move(bid));
      }
    }
  }
  step_ticks = 0;
  std::vector<BidMessage> all_bids;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.announce"};
    for (const auto& [link, bid] : raw_bids) {
      if (auto got = chaos_transmit(bid, link, injector, deadlines, stats, step_ticks,
                                    config.obs)) {
        all_bids.push_back(*got);
        ++stats.bids_received;
      }
    }
    if (tracer != nullptr) tracer->advance(step_ticks);
  }
  stats.chaos.ticks_elapsed += step_ticks;
  step_hist.observe(static_cast<double>(step_ticks));

  // Step 6: Optimize (broker-local, no transport).
  std::vector<AcceptMessage> accepts;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.optimize"};
    accepts = broker.optimize(all_bids);
  }

  // Step 7: Accept — CDNs hear about whichever outcomes reach them; a CDN
  // that misses an Accept just doesn't update its strategy for that bid.
  step_ticks = 0;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.accept"};
    for (std::size_t i = 0; i < cdns.size(); ++i) {
      std::vector<AcceptMessage> delivered;
      delivered.reserve(accepts.size());
      for (const AcceptMessage& accept : accepts) {
        ++stats.accepts_sent;
        if (auto got = chaos_transmit(accept, i, injector, deadlines, stats, step_ticks,
                                      config.obs)) {
          delivered.push_back(*got);
        }
      }
      cdns[i]->handle_accept(delivered);
    }
    if (tracer != nullptr) tracer->advance(step_ticks);
  }
  stats.chaos.ticks_elapsed += step_ticks;
  step_hist.observe(static_cast<double>(step_ticks));

  record_round_metrics(config.obs, stats);
  return stats;
}

}  // namespace

RoundStats run_decision_round(BrokerParticipant& broker,
                              std::span<CdnParticipant* const> cdns,
                              const DecisionEngineConfig& config) {
  if (config.faults != nullptr && config.faults->profile().any()) {
    return run_chaos_round(broker, cdns, config);
  }

  RoundStats stats;
  obs::SpanTracer* tracer = config.obs.tracer;

  for (CdnParticipant* cdn : cdns) {
    if (cdn == nullptr) throw std::invalid_argument{"null CdnParticipant"};
  }

  const obs::SpanTracer::Scoped round_span{tracer, "decision.round"};
  if (tracer != nullptr) tracer->instant("decision.estimate");

  // Steps 2-3: Gather + Share. A fault-free hop costs one logical tick per
  // transport step, so logical-clock traces stay meaningful without chaos.
  std::vector<ShareMessage> shares;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.gather"};
    shares = broker.gather();
  }
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.share"};
    for (CdnParticipant* cdn : cdns) {
      std::vector<ShareMessage> delivered;
      if (config.share_client_data) {
        delivered.reserve(shares.size());
        for (const ShareMessage& share : shares) {
          delivered.push_back(transmit(share, stats.bytes_on_wire));
          ++stats.shares_sent;
        }
      }
      cdn->handle_share(delivered);
    }
    if (tracer != nullptr) tracer->advance(1);
  }

  // Steps 4-5: Matching + Announce.
  std::vector<BidMessage> raw_bids;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.matching"};
    for (CdnParticipant* cdn : cdns) {
      for (BidMessage& bid : cdn->announce()) raw_bids.push_back(std::move(bid));
    }
  }
  std::vector<BidMessage> all_bids;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.announce"};
    all_bids.reserve(raw_bids.size());
    for (const BidMessage& bid : raw_bids) {
      all_bids.push_back(transmit(bid, stats.bytes_on_wire));
      ++stats.bids_received;
    }
    if (tracer != nullptr) tracer->advance(1);
  }

  // Step 6: Optimize.
  std::vector<AcceptMessage> accepts;
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.optimize"};
    accepts = broker.optimize(all_bids);
  }

  // Step 7: Accept — every CDN hears about every bid's outcome.
  {
    const obs::SpanTracer::Scoped span{tracer, "decision.accept"};
    for (CdnParticipant* cdn : cdns) {
      std::vector<AcceptMessage> delivered;
      delivered.reserve(accepts.size());
      for (const AcceptMessage& accept : accepts) {
        delivered.push_back(transmit(accept, stats.bytes_on_wire));
        ++stats.accepts_sent;
      }
      cdn->handle_accept(delivered);
    }
    if (tracer != nullptr) tracer->advance(1);
  }

  record_round_metrics(config.obs, stats);
  return stats;
}

DeliveryOutcome run_delivery(const QueryMessage& query, DeliveryDirectory& directory,
                             ClusterFrontend& frontend, const obs::Observer& obs) {
  obs::SpanTracer* tracer = obs.tracer;
  const obs::SpanTracer::Scoped round_span{tracer, "delivery.round"};

  DeliveryOutcome outcome;
  QueryMessage sent_query;
  {
    const obs::SpanTracer::Scoped span{tracer, "delivery.query"};
    sent_query = transmit(query, outcome.bytes_on_wire);
    if (tracer != nullptr) tracer->advance(1);
  }
  {
    const obs::SpanTracer::Scoped span{tracer, "delivery.resolve"};
    outcome.result = transmit(directory.resolve(sent_query), outcome.bytes_on_wire);
    if (tracer != nullptr) tracer->advance(1);
  }

  const auto attempt = [&](const ResultMessage& result) {
    const obs::SpanTracer::Scoped span{tracer, "delivery.request"};
    RequestMessage request;
    request.session_id = result.session_id;
    request.cluster_id = result.cluster_id;
    request.content_id = 0;
    const RequestMessage sent_request = transmit(request, outcome.bytes_on_wire);
    DeliveryMessage delivery = transmit(frontend.serve(sent_request),
                                        outcome.bytes_on_wire);
    if (tracer != nullptr) tracer->advance(1);
    return delivery;
  };

  outcome.delivery = attempt(outcome.result);
  if (outcome.delivery.delivered_mbps <= 0.0) {
    // Mid-stream failure: the chosen cluster is dark. Ask the directory for
    // an alternative home and replay the request there (§6.3 failover).
    const obs::SpanTracer::Scoped span{tracer, "delivery.failover"};
    const std::uint32_t dark = outcome.result.cluster_id;
    const ResultMessage alternative = transmit(
        directory.resolve_excluding(sent_query, dark), outcome.bytes_on_wire);
    if (alternative.cluster_id != dark && alternative.cluster_id != UINT32_MAX) {
      outcome.result = alternative;
      outcome.delivery = attempt(alternative);
      outcome.rehomed = true;
      outcome.failed_cluster = dark;
      obs.record(obs::EventKind::kFailover, dark, outcome.delivery.delivered_mbps);
    }
  }

  if (obs.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs.metrics;
    m.counter("delivery.sessions").add();
    m.counter("delivery.bytes_on_wire").add(static_cast<double>(outcome.bytes_on_wire));
    if (outcome.rehomed) m.counter("delivery.failovers").add();
  }
  return outcome;
}

}  // namespace vdx::proto
