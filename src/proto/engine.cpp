#include "proto/engine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace vdx::proto {

namespace {

/// Encode, count, decode — the in-memory stand-in for a network hop.
template <typename T>
T transmit(const T& message, std::size_t& bytes) {
  const std::vector<std::uint8_t> frame = encode(Message{message});
  bytes += frame.size();
  const Message decoded = decode(frame);
  return std::get<T>(decoded);
}

/// One message over a faulty link: send, and on presumed loss retry with
/// exponential backoff until delivery, deadline expiry, or budget exhaustion.
/// Mutated frames are rejected by try_decode (checksum) and treated as lost.
/// Returns the decoded message if a copy arrived within the step deadline;
/// `step_ticks` tracks the step's completion time on this and other links.
template <typename T>
std::optional<T> chaos_transmit(const T& message, std::size_t link,
                                FaultInjector& injector, const DeadlineConfig& config,
                                RoundStats& stats, std::size_t& step_ticks) {
  const std::vector<std::uint8_t> frame = encode(Message{message});
  ++stats.chaos.messages;

  std::size_t send_tick = 0;
  std::size_t backoff = std::max<std::size_t>(1, config.retry_backoff_ticks);
  for (std::size_t attempt = 0; attempt <= config.max_retries; ++attempt) {
    if (attempt > 0) ++stats.chaos.retries;
    const FaultCounters before = injector.counters();
    const std::vector<FaultedFrame> copies = injector.apply(link, frame);
    const FaultCounters& after = injector.counters();
    stats.chaos.frames_dropped += after.dropped - before.dropped;
    stats.chaos.frames_duplicated += after.duplicated - before.duplicated;

    for (const FaultedFrame& copy : copies) {
      stats.bytes_on_wire += copy.bytes.size();
      const core::Result<Message> decoded = try_decode(copy.bytes);
      if (!decoded.ok() || !std::holds_alternative<T>(decoded.value())) {
        ++stats.chaos.decode_rejects;
        continue;
      }
      const std::size_t arrival = send_tick + 1 + copy.delay_ticks;
      if (arrival > config.step_deadline_ticks) continue;  // late copies discarded
      step_ticks = std::max(step_ticks, arrival);
      return std::get<T>(decoded.value());
    }
    send_tick += backoff;
    backoff *= 2;
    if (send_tick > config.step_deadline_ticks) break;  // no budget left to resend
  }
  ++stats.chaos.timeouts;
  step_ticks = std::max(step_ticks, config.step_deadline_ticks);
  return std::nullopt;
}

RoundStats run_chaos_round(BrokerParticipant& broker,
                           std::span<CdnParticipant* const> cdns,
                           const DecisionEngineConfig& config) {
  RoundStats stats;
  FaultInjector& injector = *config.faults;
  const DeadlineConfig& deadlines = config.deadlines;

  for (CdnParticipant* cdn : cdns) {
    if (cdn == nullptr) throw std::invalid_argument{"null CdnParticipant"};
  }

  // Steps 2-3: Gather + Share. Each CDN receives whichever shares survive
  // its link within the step deadline.
  const std::vector<ShareMessage> shares = broker.gather();
  std::size_t step_ticks = 0;
  for (std::size_t i = 0; i < cdns.size(); ++i) {
    std::vector<ShareMessage> delivered;
    if (config.share_client_data) {
      delivered.reserve(shares.size());
      for (const ShareMessage& share : shares) {
        ++stats.shares_sent;
        if (auto got = chaos_transmit(share, i, injector, deadlines, stats, step_ticks)) {
          delivered.push_back(*got);
        }
      }
    }
    cdns[i]->handle_share(delivered);
  }
  stats.chaos.ticks_elapsed += step_ticks;

  // Steps 4-5: Matching + Announce. Lost bids are simply absent from the
  // auction; the broker may backfill them with stale cached bids.
  step_ticks = 0;
  std::vector<BidMessage> all_bids;
  for (std::size_t i = 0; i < cdns.size(); ++i) {
    for (const BidMessage& bid : cdns[i]->announce()) {
      if (auto got = chaos_transmit(bid, i, injector, deadlines, stats, step_ticks)) {
        all_bids.push_back(*got);
        ++stats.bids_received;
      }
    }
  }
  stats.chaos.ticks_elapsed += step_ticks;

  // Step 6: Optimize (broker-local, no transport).
  const std::vector<AcceptMessage> accepts = broker.optimize(all_bids);

  // Step 7: Accept — CDNs hear about whichever outcomes reach them; a CDN
  // that misses an Accept just doesn't update its strategy for that bid.
  step_ticks = 0;
  for (std::size_t i = 0; i < cdns.size(); ++i) {
    std::vector<AcceptMessage> delivered;
    delivered.reserve(accepts.size());
    for (const AcceptMessage& accept : accepts) {
      ++stats.accepts_sent;
      if (auto got = chaos_transmit(accept, i, injector, deadlines, stats, step_ticks)) {
        delivered.push_back(*got);
      }
    }
    cdns[i]->handle_accept(delivered);
  }
  stats.chaos.ticks_elapsed += step_ticks;
  return stats;
}

}  // namespace

RoundStats run_decision_round(BrokerParticipant& broker,
                              std::span<CdnParticipant* const> cdns,
                              const DecisionEngineConfig& config) {
  if (config.faults != nullptr && config.faults->profile().any()) {
    return run_chaos_round(broker, cdns, config);
  }

  RoundStats stats;

  // Steps 2-3: Gather + Share.
  const std::vector<ShareMessage> shares = broker.gather();
  if (config.share_client_data) {
    for (CdnParticipant* cdn : cdns) {
      if (cdn == nullptr) throw std::invalid_argument{"null CdnParticipant"};
      std::vector<ShareMessage> delivered;
      delivered.reserve(shares.size());
      for (const ShareMessage& share : shares) {
        delivered.push_back(transmit(share, stats.bytes_on_wire));
        ++stats.shares_sent;
      }
      cdn->handle_share(delivered);
    }
  } else {
    for (CdnParticipant* cdn : cdns) {
      if (cdn == nullptr) throw std::invalid_argument{"null CdnParticipant"};
      cdn->handle_share({});
    }
  }

  // Steps 4-5: Matching + Announce.
  std::vector<BidMessage> all_bids;
  for (CdnParticipant* cdn : cdns) {
    for (const BidMessage& bid : cdn->announce()) {
      all_bids.push_back(transmit(bid, stats.bytes_on_wire));
      ++stats.bids_received;
    }
  }

  // Step 6: Optimize.
  const std::vector<AcceptMessage> accepts = broker.optimize(all_bids);

  // Step 7: Accept — every CDN hears about every bid's outcome.
  for (CdnParticipant* cdn : cdns) {
    std::vector<AcceptMessage> delivered;
    delivered.reserve(accepts.size());
    for (const AcceptMessage& accept : accepts) {
      delivered.push_back(transmit(accept, stats.bytes_on_wire));
      ++stats.accepts_sent;
    }
    cdn->handle_accept(delivered);
  }
  return stats;
}

DeliveryOutcome run_delivery(const QueryMessage& query, DeliveryDirectory& directory,
                             ClusterFrontend& frontend) {
  DeliveryOutcome outcome;
  const QueryMessage sent_query = transmit(query, outcome.bytes_on_wire);
  outcome.result = transmit(directory.resolve(sent_query), outcome.bytes_on_wire);

  const auto attempt = [&](const ResultMessage& result) {
    RequestMessage request;
    request.session_id = result.session_id;
    request.cluster_id = result.cluster_id;
    request.content_id = 0;
    const RequestMessage sent_request = transmit(request, outcome.bytes_on_wire);
    return transmit(frontend.serve(sent_request), outcome.bytes_on_wire);
  };

  outcome.delivery = attempt(outcome.result);
  if (outcome.delivery.delivered_mbps <= 0.0) {
    // Mid-stream failure: the chosen cluster is dark. Ask the directory for
    // an alternative home and replay the request there (§6.3 failover).
    const std::uint32_t dark = outcome.result.cluster_id;
    const ResultMessage alternative = transmit(
        directory.resolve_excluding(sent_query, dark), outcome.bytes_on_wire);
    if (alternative.cluster_id != dark && alternative.cluster_id != UINT32_MAX) {
      outcome.result = alternative;
      outcome.delivery = attempt(alternative);
      outcome.rehomed = true;
      outcome.failed_cluster = dark;
    }
  }
  return outcome;
}

}  // namespace vdx::proto
