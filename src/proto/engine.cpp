#include "proto/engine.hpp"

#include <stdexcept>

namespace vdx::proto {

namespace {

/// Encode, count, decode — the in-memory stand-in for a network hop.
template <typename T>
T transmit(const T& message, std::size_t& bytes) {
  const std::vector<std::uint8_t> frame = encode(Message{message});
  bytes += frame.size();
  const Message decoded = decode(frame);
  return std::get<T>(decoded);
}

}  // namespace

RoundStats run_decision_round(BrokerParticipant& broker,
                              std::span<CdnParticipant* const> cdns,
                              const DecisionEngineConfig& config) {
  RoundStats stats;

  // Steps 2-3: Gather + Share.
  const std::vector<ShareMessage> shares = broker.gather();
  if (config.share_client_data) {
    for (CdnParticipant* cdn : cdns) {
      if (cdn == nullptr) throw std::invalid_argument{"null CdnParticipant"};
      std::vector<ShareMessage> delivered;
      delivered.reserve(shares.size());
      for (const ShareMessage& share : shares) {
        delivered.push_back(transmit(share, stats.bytes_on_wire));
        ++stats.shares_sent;
      }
      cdn->handle_share(delivered);
    }
  } else {
    for (CdnParticipant* cdn : cdns) {
      if (cdn == nullptr) throw std::invalid_argument{"null CdnParticipant"};
      cdn->handle_share({});
    }
  }

  // Steps 4-5: Matching + Announce.
  std::vector<BidMessage> all_bids;
  for (CdnParticipant* cdn : cdns) {
    for (const BidMessage& bid : cdn->announce()) {
      all_bids.push_back(transmit(bid, stats.bytes_on_wire));
      ++stats.bids_received;
    }
  }

  // Step 6: Optimize.
  const std::vector<AcceptMessage> accepts = broker.optimize(all_bids);

  // Step 7: Accept — every CDN hears about every bid's outcome.
  for (CdnParticipant* cdn : cdns) {
    std::vector<AcceptMessage> delivered;
    delivered.reserve(accepts.size());
    for (const AcceptMessage& accept : accepts) {
      delivered.push_back(transmit(accept, stats.bytes_on_wire));
      ++stats.accepts_sent;
    }
    cdn->handle_accept(delivered);
  }
  return stats;
}

DeliveryOutcome run_delivery(const QueryMessage& query, DeliveryDirectory& directory,
                             ClusterFrontend& frontend) {
  DeliveryOutcome outcome;
  const QueryMessage sent_query = transmit(query, outcome.bytes_on_wire);
  outcome.result = transmit(directory.resolve(sent_query), outcome.bytes_on_wire);

  RequestMessage request;
  request.session_id = outcome.result.session_id;
  request.cluster_id = outcome.result.cluster_id;
  request.content_id = 0;
  const RequestMessage sent_request = transmit(request, outcome.bytes_on_wire);
  outcome.delivery = transmit(frontend.serve(sent_request), outcome.bytes_on_wire);
  return outcome;
}

}  // namespace vdx::proto
