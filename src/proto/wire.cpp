#include "proto/wire.hpp"

#include <bit>
#include <cstring>

namespace vdx::proto {

namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

template <typename T>
T read_le(std::span<const std::uint8_t> data, std::size_t pos) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(data[pos + i]) << (8 * i);
  }
  return value;
}

}  // namespace

void ByteWriter::write_u8(std::uint8_t value) { data_.push_back(value); }
void ByteWriter::write_u16(std::uint16_t value) { append_le(data_, value); }
void ByteWriter::write_u32(std::uint32_t value) { append_le(data_, value); }
void ByteWriter::write_u64(std::uint64_t value) { append_le(data_, value); }

void ByteWriter::write_f64(double value) {
  write_u64(std::bit_cast<std::uint64_t>(value));
}

void ByteWriter::write_string(std::string_view value) {
  if (value.size() > UINT32_MAX) throw WireError{"string too long"};
  write_u32(static_cast<std::uint32_t>(value.size()));
  data_.insert(data_.end(), value.begin(), value.end());
}

void ByteWriter::write_bytes(std::span<const std::uint8_t> value) {
  data_.insert(data_.end(), value.begin(), value.end());
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t value) {
  if (offset + 4 > data_.size()) throw WireError{"patch_u32 out of range"};
  for (std::size_t i = 0; i < 4; ++i) {
    data_[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) throw WireError{"truncated message"};
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16() {
  require(2);
  const auto v = read_le<std::uint16_t>(data_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  const auto v = read_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  const auto v = read_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

double ByteReader::read_f64() { return std::bit_cast<double>(read_u64()); }

std::string ByteReader::read_string() {
  const std::uint32_t length = read_u32();
  require(length);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), length);
  pos_ += length;
  return out;
}

std::span<const std::uint8_t> ByteReader::read_bytes(std::size_t n) {
  require(n);
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

}  // namespace vdx::proto
