// Binary wire codec for the VDX marketplace protocol.
//
// Little-endian, fixed-width integers; doubles as IEEE-754 bit patterns;
// strings/blobs length-prefixed with u32. The reader is strictly
// bounds-checked and throws WireError on any truncation or overrun — a
// malformed peer must never crash the exchange.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vdx::proto {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  void write_u8(std::uint8_t value);
  void write_u16(std::uint16_t value);
  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);
  void write_f64(double value);
  /// u32 length prefix + raw bytes.
  void write_string(std::string_view value);
  void write_bytes(std::span<const std::uint8_t> value);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(data_); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// Overwrites 4 bytes at `offset` (for back-patching length prefixes).
  void patch_u32(std::size_t offset, std::uint32_t value);

 private:
  std::vector<std::uint8_t> data_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint16_t read_u16();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  /// Reads exactly n bytes.
  [[nodiscard]] std::span<const std::uint8_t> read_bytes(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace vdx::proto
