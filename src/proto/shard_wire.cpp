#include "proto/shard_wire.hpp"

#include <limits>
#include <utility>

#include "proto/wire.hpp"

namespace vdx::proto {
namespace {

/// FNV-1a 64-bit (same function the snapshot envelope uses; duplicated here
/// because vdx::proto sits below vdx::state in the link graph).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x00000100000001B3ULL;
  }
  return hash;
}

constexpr std::uint8_t kFirstType = static_cast<std::uint8_t>(ShardFrameType::kHello);
constexpr std::uint8_t kLastType = static_cast<std::uint8_t>(ShardFrameType::kError);

/// Largest payload the decoder will allocate for. Anything bigger than this
/// is a length-field lie, not a real frame (worker state snapshots are the
/// biggest legitimate payloads, and they are orders of magnitude smaller).
constexpr std::uint32_t kMaxPayload = 256u * 1024u * 1024u;

[[nodiscard]] core::Result<ShardFrame> corrupt(const char* reason) {
  return core::Result<ShardFrame>::failure(core::Errc::kCorruptFrame, reason);
}

/// Runs a ByteReader decode body, mapping WireError (truncation/overrun) and
/// trailing payload bytes onto Errc::kCorruptFrame.
template <typename T, typename Body>
[[nodiscard]] core::Result<T> decode_payload(std::span<const std::uint8_t> payload,
                                             const char* what, Body&& body) {
  ByteReader reader{payload};
  try {
    T value = body(reader);
    if (!reader.exhausted()) {
      return core::Result<T>::failure(
          core::Errc::kCorruptFrame,
          std::string{what} + ": trailing bytes after payload");
    }
    return value;
  } catch (const WireError&) {
    return core::Result<T>::failure(core::Errc::kCorruptFrame,
                                    std::string{what} + ": truncated payload");
  }
}

}  // namespace

bool shard_frame_type_known(std::uint8_t raw) noexcept {
  return raw >= kFirstType && raw <= kLastType;
}

std::vector<std::uint8_t> encode_shard_frame(const ShardFrame& frame) {
  ByteWriter writer;
  writer.write_u32(kShardMagic);
  writer.write_u8(static_cast<std::uint8_t>(frame.type));
  writer.write_u16(kShardProtocolVersion);
  writer.write_u32(frame.shard);
  writer.write_u64(frame.round);
  writer.write_u32(static_cast<std::uint32_t>(frame.payload.size()));
  std::vector<std::uint8_t> bytes = writer.take();
  bytes.insert(bytes.end(), frame.payload.begin(), frame.payload.end());
  const std::uint64_t checksum = fnv1a64(bytes);
  ByteWriter tail;
  tail.write_u64(checksum);
  const auto& tail_bytes = tail.data();
  bytes.insert(bytes.end(), tail_bytes.begin(), tail_bytes.end());
  return bytes;
}

core::Result<ShardFrame> try_decode_shard_frame(std::span<const std::uint8_t> bytes) {
  // Header (23 bytes) + checksum (8 bytes) bound the minimum frame.
  constexpr std::size_t kHeaderSize = 4 + 1 + 2 + 4 + 8 + 4;
  if (bytes.size() < kHeaderSize + 8) return corrupt("shard frame: truncated header");

  ByteReader reader{bytes};
  ShardFrame frame;
  try {
    if (reader.read_u32() != kShardMagic) return corrupt("shard frame: bad magic");
    const std::uint8_t raw_type = reader.read_u8();
    if (!shard_frame_type_known(raw_type)) {
      return corrupt("shard frame: unknown frame type");
    }
    frame.type = static_cast<ShardFrameType>(raw_type);
    if (reader.read_u16() != kShardProtocolVersion) {
      return corrupt("shard frame: protocol version mismatch");
    }
    frame.shard = reader.read_u32();
    frame.round = reader.read_u64();
    const std::uint32_t payload_len = reader.read_u32();
    if (payload_len > kMaxPayload) return corrupt("shard frame: payload length lie");
    if (reader.remaining() != payload_len + 8u) {
      return corrupt("shard frame: payload length disagrees with frame size");
    }
    const auto payload = reader.read_bytes(payload_len);
    frame.payload.assign(payload.begin(), payload.end());
    const std::uint64_t claimed = reader.read_u64();
    const std::uint64_t actual = fnv1a64(bytes.subspan(0, kHeaderSize + payload_len));
    if (claimed != actual) return corrupt("shard frame: checksum mismatch");
  } catch (const WireError&) {
    return corrupt("shard frame: truncated");
  }
  return frame;
}

// ---------------------------------------------------------------------------
// Payloads
// ---------------------------------------------------------------------------

namespace {

void write_group(ByteWriter& writer, const ShardGroup& g) {
  writer.write_u32(g.global_id);
  writer.write_u32(g.group.id.value());
  writer.write_u32(g.group.city.value());
  writer.write_u32(g.group.isp);
  writer.write_f64(g.group.bitrate_mbps);
  writer.write_f64(g.group.client_count);
}

[[nodiscard]] ShardGroup read_group(ByteReader& reader) {
  ShardGroup g;
  g.global_id = reader.read_u32();
  g.group.id = broker::ShareId{reader.read_u32()};
  g.group.city = broker::CityId{reader.read_u32()};
  g.group.isp = reader.read_u32();
  g.group.bitrate_mbps = reader.read_f64();
  g.group.client_count = reader.read_f64();
  return g;
}

}  // namespace

std::vector<std::uint8_t> encode_shard_groups(std::span<const ShardGroup> groups) {
  ByteWriter writer;
  writer.write_u64(groups.size());
  for (const ShardGroup& g : groups) write_group(writer, g);
  return writer.take();
}

core::Result<std::vector<ShardGroup>> decode_shard_groups(
    std::span<const std::uint8_t> payload) {
  return decode_payload<std::vector<ShardGroup>>(
      payload, "shard groups", [](ByteReader& reader) {
        const std::uint64_t count = reader.read_u64();
        if (count > std::numeric_limits<std::uint32_t>::max()) {
          throw WireError{"group count lie"};
        }
        std::vector<ShardGroup> groups;
        groups.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) groups.push_back(read_group(reader));
        return groups;
      });
}

std::vector<std::uint8_t> encode_session_delta(const ShardSessionDelta& delta) {
  ByteWriter writer;
  writer.write_u64(delta.adds.size());
  for (const ShardSessionAdd& a : delta.adds) {
    writer.write_u32(a.id);
    writer.write_u32(a.city);
    writer.write_f64(a.bitrate_mbps);
  }
  writer.write_u64(delta.removes.size());
  for (std::uint32_t id : delta.removes) writer.write_u32(id);
  return writer.take();
}

core::Result<ShardSessionDelta> decode_session_delta(
    std::span<const std::uint8_t> payload) {
  return decode_payload<ShardSessionDelta>(
      payload, "session delta", [](ByteReader& reader) {
        ShardSessionDelta delta;
        const std::uint64_t adds = reader.read_u64();
        if (adds > std::numeric_limits<std::uint32_t>::max()) {
          throw WireError{"add count lie"};
        }
        delta.adds.reserve(static_cast<std::size_t>(adds));
        for (std::uint64_t i = 0; i < adds; ++i) {
          ShardSessionAdd a;
          a.id = reader.read_u32();
          a.city = reader.read_u32();
          a.bitrate_mbps = reader.read_f64();
          delta.adds.push_back(a);
        }
        const std::uint64_t removes = reader.read_u64();
        if (removes > std::numeric_limits<std::uint32_t>::max()) {
          throw WireError{"remove count lie"};
        }
        delta.removes.reserve(static_cast<std::size_t>(removes));
        for (std::uint64_t i = 0; i < removes; ++i) {
          delta.removes.push_back(reader.read_u32());
        }
        return delta;
      });
}

std::vector<std::uint8_t> encode_candidates(const ShardCandidates& c) {
  ByteWriter writer;
  writer.write_u8(static_cast<std::uint8_t>(c.mode));
  writer.write_u64(c.groups.size());
  for (const ShardGroup& g : c.groups) write_group(writer, g);
  return writer.take();
}

core::Result<ShardCandidates> decode_candidates(std::span<const std::uint8_t> payload) {
  return decode_payload<ShardCandidates>(
      payload, "shard candidates", [](ByteReader& reader) {
        ShardCandidates c;
        const std::uint8_t mode = reader.read_u8();
        if (mode > static_cast<std::uint8_t>(ShardDemandMode::kSessions)) {
          throw WireError{"unknown demand mode"};
        }
        c.mode = static_cast<ShardDemandMode>(mode);
        const std::uint64_t count = reader.read_u64();
        if (count > std::numeric_limits<std::uint32_t>::max()) {
          throw WireError{"group count lie"};
        }
        c.groups.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) c.groups.push_back(read_group(reader));
        return c;
      });
}

std::vector<std::uint8_t> encode_allocation(std::span<const ShardPlacement> placements) {
  ByteWriter writer;
  writer.write_u64(placements.size());
  for (const ShardPlacement& p : placements) {
    writer.write_u32(p.global_group);
    writer.write_u32(p.cluster);
    writer.write_f64(p.clients);
    writer.write_f64(p.price);
    writer.write_f64(p.score);
    writer.write_f64(p.bitrate_mbps);
  }
  return writer.take();
}

core::Result<std::vector<ShardPlacement>> decode_allocation(
    std::span<const std::uint8_t> payload) {
  return decode_payload<std::vector<ShardPlacement>>(
      payload, "shard allocation", [](ByteReader& reader) {
        const std::uint64_t count = reader.read_u64();
        if (count > std::numeric_limits<std::uint32_t>::max()) {
          throw WireError{"placement count lie"};
        }
        std::vector<ShardPlacement> placements;
        placements.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          ShardPlacement p;
          p.global_group = reader.read_u32();
          p.cluster = reader.read_u32();
          p.clients = reader.read_f64();
          p.price = reader.read_f64();
          p.score = reader.read_f64();
          p.bitrate_mbps = reader.read_f64();
          placements.push_back(p);
        }
        return placements;
      });
}

std::vector<std::uint8_t> encode_shard_hello(const ShardHello& hello) {
  ByteWriter writer;
  writer.write_u32(hello.shard);
  writer.write_u32(hello.shard_count);
  writer.write_u32(hello.city_count);
  writer.write_u64(hello.plan_hash);
  writer.write_u64(hello.cdn_of_cluster.size());
  for (std::uint32_t cdn : hello.cdn_of_cluster) writer.write_u32(cdn);
  writer.write_u64(hello.journal_capacity);
  writer.write_string(hello.checkpoint_dir);
  writer.write_u32(hello.checkpoint_keep);
  return writer.take();
}

core::Result<ShardHello> decode_shard_hello(std::span<const std::uint8_t> payload) {
  return decode_payload<ShardHello>(payload, "shard hello", [](ByteReader& reader) {
    ShardHello hello;
    hello.shard = reader.read_u32();
    hello.shard_count = reader.read_u32();
    hello.city_count = reader.read_u32();
    hello.plan_hash = reader.read_u64();
    const std::uint64_t clusters = reader.read_u64();
    if (clusters > std::numeric_limits<std::uint32_t>::max()) {
      throw WireError{"cluster count lie"};
    }
    hello.cdn_of_cluster.reserve(static_cast<std::size_t>(clusters));
    for (std::uint64_t i = 0; i < clusters; ++i) {
      hello.cdn_of_cluster.push_back(reader.read_u32());
    }
    hello.journal_capacity = reader.read_u64();
    hello.checkpoint_dir = reader.read_string();
    hello.checkpoint_keep = reader.read_u32();
    return hello;
  });
}

std::vector<std::uint8_t> encode_journal_slice(const ShardJournalSlice& slice) {
  ByteWriter writer;
  writer.write_u64(slice.total_recorded);
  writer.write_u32(slice.round);
  writer.write_u64(slice.events.size());
  for (const obs::Event& e : slice.events) {
    writer.write_u8(static_cast<std::uint8_t>(e.kind));
    writer.write_u64(e.seq);
    writer.write_u64(e.logical);
    writer.write_u32(e.round);
    writer.write_u32(e.subject);
    writer.write_f64(e.value);
  }
  return writer.take();
}

core::Result<ShardJournalSlice> decode_journal_slice(
    std::span<const std::uint8_t> payload) {
  return decode_payload<ShardJournalSlice>(
      payload, "journal slice", [](ByteReader& reader) {
        ShardJournalSlice slice;
        slice.total_recorded = reader.read_u64();
        slice.round = reader.read_u32();
        const std::uint64_t count = reader.read_u64();
        if (count > std::numeric_limits<std::uint32_t>::max()) {
          throw WireError{"event count lie"};
        }
        slice.events.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          obs::Event e;
          const std::uint8_t kind = reader.read_u8();
          if (kind > static_cast<std::uint8_t>(obs::EventKind::kCustom)) {
            throw WireError{"unknown event kind"};
          }
          e.kind = static_cast<obs::EventKind>(kind);
          e.seq = reader.read_u64();
          e.logical = reader.read_u64();
          e.round = reader.read_u32();
          e.subject = reader.read_u32();
          e.value = reader.read_f64();
          slice.events.push_back(e);
        }
        return slice;
      });
}

std::vector<std::uint8_t> encode_shard_error(core::Errc code,
                                             std::string_view message) {
  ByteWriter writer;
  writer.write_u8(static_cast<std::uint8_t>(code));
  writer.write_string(message);
  return writer.take();
}

core::Result<ShardError> decode_shard_error(std::span<const std::uint8_t> payload) {
  return decode_payload<ShardError>(payload, "shard error", [](ByteReader& reader) {
    ShardError error;
    const std::uint8_t code = reader.read_u8();
    if (code < static_cast<std::uint8_t>(core::Errc::kInvalidArgument) ||
        code > static_cast<std::uint8_t>(core::Errc::kOverloaded)) {
      throw WireError{"unknown error code"};
    }
    error.code = static_cast<core::Errc>(code);
    error.message = reader.read_string();
    return error;
  });
}

std::vector<std::uint8_t> encode_shard_ack(std::uint64_t value) {
  ByteWriter writer;
  writer.write_u64(value);
  return writer.take();
}

core::Result<std::uint64_t> decode_shard_ack(std::span<const std::uint8_t> payload) {
  return decode_payload<std::uint64_t>(payload, "shard ack", [](ByteReader& reader) {
    return reader.read_u64();
  });
}

}  // namespace vdx::proto
