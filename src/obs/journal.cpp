#include "obs/journal.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace vdx::obs {

namespace {

constexpr std::array<std::string_view, 25> kKindNames{
    "round_start",    "round_end",   "bid",      "retry",
    "timeout",        "decode_reject", "stale_bid", "quorum_miss",
    "degraded_round", "failover",    "solve",    "epoch",
    "checkpoint",     "resume",      "shed",     "supply_shift",
    "admit",          "drain",       "breaker_open", "breaker_half_open",
    "breaker_close",  "brownout_step", "checkpoint_skip", "restart_denied",
    "custom",
};

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  const auto index = static_cast<std::size_t>(kind);
  return index < kKindNames.size() ? kKindNames[index] : "unknown";
}

std::optional<EventKind> event_kind_from(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (kKindNames[i] == name) return static_cast<EventKind>(i);
  }
  return std::nullopt;
}

RunJournal::RunJournal(std::size_t capacity) {
  buffer_.resize(capacity > 0 ? capacity : 1);
}

void RunJournal::record(EventKind kind, std::uint32_t subject, double value,
                        std::uint64_t logical) {
  Event event;
  event.kind = kind;
  event.seq = total_;
  event.logical = logical;
  event.round = round_;
  event.subject = subject;
  event.value = value;
  buffer_[total_ % buffer_.size()] = event;
  ++total_;
}

std::size_t RunJournal::size() const noexcept {
  return total_ < buffer_.size() ? static_cast<std::size_t>(total_) : buffer_.size();
}

std::vector<Event> RunJournal::events() const {
  std::vector<Event> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::uint64_t i = first; i < total_; ++i) {
    out.push_back(buffer_[i % buffer_.size()]);
  }
  return out;
}

void RunJournal::write_jsonl(std::ostream& out) const {
  for (const Event& event : events()) {
    char line[256];
    if (event.subject == kNoSubject) {
      std::snprintf(line, sizeof line,
                    "{\"event\":\"%s\",\"seq\":%" PRIu64 ",\"round\":%u,"
                    "\"logical\":%" PRIu64 ",\"value\":%.17g}",
                    std::string{to_string(event.kind)}.c_str(), event.seq,
                    event.round, event.logical, event.value);
    } else {
      std::snprintf(line, sizeof line,
                    "{\"event\":\"%s\",\"seq\":%" PRIu64 ",\"round\":%u,"
                    "\"subject\":%u,\"logical\":%" PRIu64 ",\"value\":%.17g}",
                    std::string{to_string(event.kind)}.c_str(), event.seq,
                    event.round, event.subject, event.logical, event.value);
    }
    out << line << '\n';
  }
}

void RunJournal::write_csv(std::ostream& out) const {
  out << "event,seq,round,subject,logical,value\n";
  for (const Event& event : events()) {
    char line[192];
    std::snprintf(line, sizeof line, "%s,%" PRIu64 ",%u,%s,%" PRIu64 ",%.17g",
                  std::string{to_string(event.kind)}.c_str(), event.seq, event.round,
                  event.subject == kNoSubject ? ""
                                              : std::to_string(event.subject).c_str(),
                  event.logical, event.value);
    out << line << '\n';
  }
}

namespace {

/// Pulls `"key":<raw value>` out of one flat JSON object line. The journal
/// parses only its own fixed-schema output, so a targeted scanner beats a
/// JSON dependency.
std::optional<std::string_view> json_field(std::string_view line,
                                           std::string_view key) {
  const std::string needle = "\"" + std::string{key} + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string_view::npos) return std::nullopt;
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  return line.substr(begin, end - begin);
}

}  // namespace

std::vector<Event> RunJournal::read_jsonl(std::istream& in) {
  std::vector<Event> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fail = [&](const char* what) -> std::runtime_error {
      return std::runtime_error{"RunJournal::read_jsonl: line " +
                                std::to_string(line_no) + ": " + what};
    };
    const auto kind_text = json_field(line, "event");
    if (!kind_text) throw fail("missing \"event\"");
    const auto kind = event_kind_from(*kind_text);
    if (!kind) throw fail("unknown event kind");
    Event event;
    event.kind = *kind;
    const auto seq = json_field(line, "seq");
    const auto round = json_field(line, "round");
    const auto logical = json_field(line, "logical");
    const auto value = json_field(line, "value");
    if (!seq || !round || !logical || !value) throw fail("missing field");
    try {
      event.seq = std::stoull(std::string{*seq});
      event.round = static_cast<std::uint32_t>(std::stoul(std::string{*round}));
      event.logical = std::stoull(std::string{*logical});
      event.value = std::stod(std::string{*value});
      if (const auto subject = json_field(line, "subject")) {
        event.subject = static_cast<std::uint32_t>(std::stoul(std::string{*subject}));
      }
    } catch (const std::exception&) {
      throw fail("unparsable number");
    }
    out.push_back(event);
  }
  return out;
}

core::Status RunJournal::restore(std::span<const Event> events, std::uint64_t total,
                                 std::uint32_t round) {
  const auto reject = [](std::string message) {
    return core::Status::failure(core::Errc::kInvalidArgument, std::move(message));
  };
  // The retained window must be exactly what a journal of this capacity
  // would hold at `total` records — anything else would leave stale or
  // missing ring slots and break events()/overwritten() equivalence.
  const std::uint64_t expected =
      total < buffer_.size() ? total : static_cast<std::uint64_t>(buffer_.size());
  if (events.size() != expected) {
    return reject("journal restore: window holds " + std::to_string(events.size()) +
                  " events, capacity " + std::to_string(buffer_.size()) +
                  " at total " + std::to_string(total) + " requires " +
                  std::to_string(expected));
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t want = total - events.size() + i;
    if (events[i].seq != want) {
      return reject("journal restore: event " + std::to_string(i) + " has seq " +
                    std::to_string(events[i].seq) + ", expected " +
                    std::to_string(want));
    }
  }
  for (const Event& event : events) buffer_[event.seq % buffer_.size()] = event;
  total_ = total;
  round_ = round;
  return core::ok_status();
}

core::Table RunJournal::summary_table() const {
  struct KindStats {
    std::uint64_t count = 0;
    double value_sum = 0.0;
    std::uint32_t first_round = UINT32_MAX;
    std::uint32_t last_round = 0;
  };
  std::array<KindStats, kKindNames.size()> stats{};
  for (const Event& event : events()) {
    KindStats& s = stats[static_cast<std::size_t>(event.kind)];
    ++s.count;
    s.value_sum += event.value;
    s.first_round = std::min(s.first_round, event.round);
    s.last_round = std::max(s.last_round, event.round);
  }
  core::Table table{{"Event", "Count", "Value sum", "Rounds"}};
  table.set_title("Run journal summary (" + std::to_string(size()) + " events, " +
                  std::to_string(overwritten()) + " overwritten)");
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (stats[i].count == 0) continue;
    table.add_row({std::string{kKindNames[i]}, std::to_string(stats[i].count),
                   core::format_double(stats[i].value_sum, 3),
                   std::to_string(stats[i].first_round) + "-" +
                       std::to_string(stats[i].last_round)});
  }
  return table;
}

std::vector<Event> merge_journal_slices(std::span<const JournalSlice> slices) {
  struct Tagged {
    std::uint32_t source;
    Event event;
  };
  std::vector<Tagged> merged;
  std::size_t count = 0;
  for (const JournalSlice& slice : slices) count += slice.events.size();
  merged.reserve(count);
  for (const JournalSlice& slice : slices) {
    for (const Event& event : slice.events) merged.push_back({slice.source, event});
  }
  // Stable total order: shared logical clock first, then round, then the
  // source shard, then the shard's own recording order. Ties inside one
  // shard cannot occur (per-shard seqs are strictly monotone), so the order
  // is unambiguous for any interleaving.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.event.logical != b.event.logical) {
                       return a.event.logical < b.event.logical;
                     }
                     if (a.event.round != b.event.round) {
                       return a.event.round < b.event.round;
                     }
                     if (a.source != b.source) return a.source < b.source;
                     return a.event.seq < b.event.seq;
                   });
  std::vector<Event> out;
  out.reserve(merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    Event event = merged[i].event;
    // Reassign: the merged stream gets its own dense, strictly monotone seq
    // space. Keeping the per-shard seqs would repeat every value N times.
    event.seq = i;
    out.push_back(event);
  }
  return out;
}

}  // namespace vdx::obs
