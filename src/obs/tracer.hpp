// SpanTracer: nested timed spans over the protocol engines (DESIGN.md §7).
//
// Each span records its interned name, parent/depth, a global event-sequence
// pair (seq_open/seq_close), the engine's *logical* clock at open/close, and
// wall-clock timestamps. The logical clock is advanced explicitly by the
// instrumented code (the chaos engine feeds it per-step tick counts; the
// perfect transport advances one tick per protocol step), so two runs with
// the same seed produce identical span streams. Wall-clock fields exist for
// profiling but are excluded from write_jsonl() by default precisely so the
// exported trace is byte-stable under a fixed seed.
//
// The tracer is bounded: spans beyond `capacity` are dropped (and counted)
// rather than grown without limit. It is deliberately single-threaded — the
// protocol engines are — unlike MetricsRegistry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vdx::obs {

class SpanTracer {
 public:
  explicit SpanTracer(std::size_t capacity = 1 << 16);

  /// Opens a span nested under the currently open one. Returns a token for
  /// end(); token 0 means the span was dropped (capacity) and end(0) is a
  /// no-op.
  [[nodiscard]] std::uint64_t begin(std::string_view name);
  void end(std::uint64_t token) noexcept;
  /// Records a zero-duration marker span (e.g. a participant-local protocol
  /// step the engine cannot time).
  void instant(std::string_view name);

  /// Advances the logical clock; ticks come from the protocol engine.
  void advance(std::uint64_t ticks) noexcept { logical_ += ticks; }
  [[nodiscard]] std::uint64_t logical_now() const noexcept { return logical_; }
  /// Restores the clock from a checkpoint so post-resume events carry the
  /// same logical stamps as an uninterrupted run.
  void set_logical(std::uint64_t logical) noexcept { logical_ = logical; }

  struct Span {
    std::uint32_t id = 0;
    std::uint32_t parent = UINT32_MAX;  // UINT32_MAX: root span
    std::uint32_t depth = 0;
    std::uint32_t name_id = 0;
    std::uint64_t seq_open = 0;
    std::uint64_t seq_close = 0;
    std::uint64_t logical_open = 0;
    std::uint64_t logical_close = 0;
    double wall_open_s = 0.0;
    double wall_close_s = 0.0;
    bool closed = false;
  };

  [[nodiscard]] std::span<const Span> spans() const noexcept { return spans_; }
  [[nodiscard]] std::string_view name(const Span& span) const;
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// One JSON object per span per line, in open order. Wall-clock fields are
  /// emitted only when `include_wall` — the default export is deterministic
  /// under a fixed seed (logical clock + sequence numbers only).
  void write_jsonl(std::ostream& out, bool include_wall = false) const;

  /// RAII span. A null tracer is a no-op, so call sites stay unconditional.
  class Scoped {
   public:
    Scoped(SpanTracer* tracer, std::string_view name)
        : tracer_(tracer), token_(tracer != nullptr ? tracer->begin(name) : 0) {}
    ~Scoped() {
      if (tracer_ != nullptr) tracer_->end(token_);
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    SpanTracer* tracer_;
    std::uint64_t token_;
  };

 private:
  [[nodiscard]] std::uint32_t intern(std::string_view name);
  [[nodiscard]] double wall_now() const noexcept;

  std::size_t capacity_;
  std::vector<Span> spans_;
  std::vector<std::uint32_t> open_stack_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_index_;
  std::uint64_t seq_ = 0;
  std::uint64_t logical_ = 0;
  std::size_t dropped_ = 0;
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace vdx::obs
