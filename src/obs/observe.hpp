// vdx::obs umbrella: the Observer bundle threaded through the stack, and
// ScopedTimer, the one sanctioned wall-clock timing helper (DESIGN.md §7).
//
// Instrumented layers take an `Observer` by value — three nullable pointers.
// The default Observer is the no-op sink: every instrumentation site guards
// on a null check (or uses a default-constructed no-op handle), so a
// non-observed hot loop pays a predictable branch and nothing else.
#pragma once

#include <chrono>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace vdx::obs {

/// The observability context handed down through configs. All pointers are
/// non-owning and nullable; a default Observer disables everything.
struct Observer {
  MetricsRegistry* metrics = nullptr;
  SpanTracer* tracer = nullptr;
  RunJournal* journal = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return metrics != nullptr || tracer != nullptr || journal != nullptr;
  }
  /// Logical clock for journal stamping (0 without a tracer).
  [[nodiscard]] std::uint64_t logical_now() const noexcept {
    return tracer != nullptr ? tracer->logical_now() : 0;
  }
  void record(EventKind kind, std::uint32_t subject = RunJournal::kNoSubject,
              double value = 0.0) const {
    if (journal != nullptr) journal->record(kind, subject, value, logical_now());
  }
};

/// RAII wall-clock timer: on destruction, observes the elapsed seconds into
/// a histogram (if valid) and/or accumulates them into a double sink (if
/// non-null). Replaces hand-rolled steady_clock blocks.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram histogram, double* sink = nullptr) noexcept
      : histogram_(histogram), sink_(sink),
        start_(std::chrono::steady_clock::now()) {}
  explicit ScopedTimer(double* sink) noexcept : ScopedTimer(Histogram{}, sink) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~ScopedTimer() {
    const double seconds = elapsed_seconds();
    if (histogram_.valid()) histogram_.observe(seconds);
    if (sink_ != nullptr) *sink_ += seconds;
  }

 private:
  Histogram histogram_;
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vdx::obs
