// MetricsRegistry: the VDX instrumentation spine (DESIGN.md §7).
//
// Counters, gauges, and log-bucketed histograms addressed by interned
// (name, label-set) pairs. Registration is mutex-guarded and returns a
// lightweight handle whose hot-path operations (add/set/observe) are
// lock-free atomics on a stable cell — pre-intern once, then update from
// inner loops at the cost of one atomic RMW. A default-constructed handle
// is a no-op sink: instrumented code paths compile in a single branch when
// observability is disabled.
//
// Histograms are log-bucketed (4 sub-buckets per octave over
// [1e-9, ~1.3e10)) so quantile estimates carry bounded relative error
// (one bucket width, < 2^0.25 - 1 ≈ 19%) at fixed memory; exact min/max
// and sum are tracked alongside. Exports (rows/JSONL/CSV) are sorted by
// (name, labels) so output is deterministic regardless of registration or
// update interleaving.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vdx::obs {

/// Label set attached to a metric, e.g. {{"backend", "simplex"}}. Order is
/// irrelevant: labels are canonicalized (sorted by key) before interning.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

namespace detail {

struct HistogramCell;

struct Cell {
  MetricKind kind = MetricKind::kCounter;
  std::atomic<double> value{0.0};
  std::unique_ptr<HistogramCell> histogram;
};

}  // namespace detail

/// Monotonic counter handle. Default-constructed: no-op.
class Counter {
 public:
  Counter() = default;
  void add(double delta = 1.0) const noexcept;
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] bool valid() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::Cell* cell) noexcept : cell_(cell) {}
  detail::Cell* cell_ = nullptr;
};

/// Last-value gauge handle. Default-constructed: no-op.
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept;
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] bool valid() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::Cell* cell) noexcept : cell_(cell) {}
  detail::Cell* cell_ = nullptr;
};

/// Log-bucketed histogram handle. Default-constructed: no-op.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double min() const noexcept;  // +inf when empty
  [[nodiscard]] double max() const noexcept;  // -inf when empty
  /// Quantile estimate in [0, 1], interpolated within the covering bucket
  /// and clamped to the exact [min, max] envelope. 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] bool valid() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::Cell* cell) noexcept : cell_(cell) {}
  detail::Cell* cell_ = nullptr;
};

class MetricsRegistry {
 public:
  // Out of line: HistogramCell is incomplete here, and the deque<Cell>
  // special members need its full type.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or re-resolves) a metric. The same (name, labels) always
  /// yields a handle on the same cell; re-registering under a different
  /// kind throws std::invalid_argument.
  [[nodiscard]] Counter counter(std::string_view name, Labels labels = {});
  [[nodiscard]] Gauge gauge(std::string_view name, Labels labels = {});
  [[nodiscard]] Histogram histogram(std::string_view name, Labels labels = {});

  /// One exported metric. Histogram rows carry count/sum/min/max/quantiles;
  /// counter and gauge rows carry `value`.
  struct Row {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };

  /// Summary of one histogram, as read back by benches and the serving
  /// daemon (SLO accounting wants p999, which Row deliberately omits to
  /// keep the JSONL/CSV schema stable).
  struct HistogramSummary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when empty
    double max = 0.0;  // 0 when empty
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };

  /// Quantile readback by name: the interpolated estimate of the named
  /// histogram at q (clamped to [0, 1]). 0 when the metric is missing, not
  /// a histogram, or empty — readback never throws, matching the no-op
  /// handle convention.
  [[nodiscard]] double quantile(std::string_view name, double q,
                                const Labels& labels = {}) const;
  /// Full summary readback; nullopt when the metric is missing or not a
  /// histogram (an *empty* histogram returns a zeroed summary, count 0).
  [[nodiscard]] std::optional<HistogramSummary> histogram_summary(
      std::string_view name, const Labels& labels = {}) const;

  /// Snapshot of every metric, sorted by (name, canonical labels).
  [[nodiscard]] std::vector<Row> rows() const;
  /// Snapshot of one metric, if registered.
  [[nodiscard]] std::optional<Row> find(std::string_view name,
                                        const Labels& labels = {}) const;
  [[nodiscard]] std::size_t size() const;

  /// One JSON object per metric per line; `line_prefix` is prepended to
  /// every line (e.g. "BENCH_JSON " for scrape-friendly bench output).
  void write_jsonl(std::ostream& out, std::string_view line_prefix = {}) const;
  void write_csv(std::ostream& out) const;

  // ---- Bucket scheme (public so tests can pin the boundaries). ----
  /// Bucket 0 catches v < kBucketMin (incl. zero/negative); buckets
  /// 1..kBucketCount-2 are [kBucketMin*r^(i-1), kBucketMin*r^i) with
  /// r = 2^(1/4); the last bucket is the overflow.
  static constexpr std::size_t kBucketCount = 256;
  static constexpr double kBucketMin = 1e-9;
  [[nodiscard]] static std::size_t bucket_index(double value) noexcept;
  [[nodiscard]] static double bucket_lower_bound(std::size_t index) noexcept;
  [[nodiscard]] static double bucket_upper_bound(std::size_t index) noexcept;

 private:
  detail::Cell& resolve(std::string_view name, Labels labels, MetricKind kind);
  [[nodiscard]] const detail::Cell* lookup(std::string_view name,
                                           const Labels& labels) const;
  [[nodiscard]] Row snapshot_row(std::size_t index) const;

  mutable std::mutex mutex_;
  /// Cells live in a deque so handles stay valid across registration.
  std::deque<detail::Cell> cells_;
  struct Meta {
    std::string name;
    Labels labels;
  };
  std::deque<Meta> meta_;
  /// Interning key: name + '\x1f' + "k=v" pairs (sorted, '\x1f'-joined).
  std::map<std::string, std::size_t> index_;
};

}  // namespace vdx::obs
