#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vdx::obs {

namespace detail {

struct HistogramCell {
  std::array<std::atomic<std::uint64_t>, MetricsRegistry::kBucketCount> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

namespace {

void atomic_min(std::atomic<double>& cell, double value) noexcept {
  double current = cell.load(std::memory_order_relaxed);
  while (value < current &&
         !cell.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& cell, double value) noexcept {
  double current = cell.load(std::memory_order_relaxed);
  while (value > current &&
         !cell.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

}  // namespace detail

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// ---- Handles ----

void Counter::add(double delta) const noexcept {
  if (cell_ != nullptr) cell_->value.fetch_add(delta, std::memory_order_relaxed);
}

double Counter::value() const noexcept {
  return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0.0;
}

void Gauge::set(double value) const noexcept {
  if (cell_ != nullptr) cell_->value.store(value, std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0.0;
}

void Histogram::observe(double value) const noexcept {
  if (cell_ == nullptr) return;
  detail::HistogramCell& h = *cell_->histogram;
  h.buckets[MetricsRegistry::bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  detail::atomic_min(h.min, value);
  detail::atomic_max(h.max, value);
}

std::uint64_t Histogram::count() const noexcept {
  return cell_ != nullptr ? cell_->histogram->count.load(std::memory_order_relaxed)
                          : 0;
}

double Histogram::sum() const noexcept {
  return cell_ != nullptr ? cell_->histogram->sum.load(std::memory_order_relaxed)
                          : 0.0;
}

double Histogram::min() const noexcept {
  return cell_ != nullptr ? cell_->histogram->min.load(std::memory_order_relaxed)
                          : std::numeric_limits<double>::infinity();
}

double Histogram::max() const noexcept {
  return cell_ != nullptr ? cell_->histogram->max.load(std::memory_order_relaxed)
                          : -std::numeric_limits<double>::infinity();
}

double Histogram::quantile(double q) const noexcept {
  if (cell_ == nullptr) return 0.0;
  const detail::HistogramCell& h = *cell_->histogram;
  const std::uint64_t total = h.count.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < MetricsRegistry::kBucketCount; ++i) {
    const double in_bucket =
        static_cast<double>(h.buckets[i].load(std::memory_order_relaxed));
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= target) {
      const double lower = MetricsRegistry::bucket_lower_bound(i);
      const double upper = MetricsRegistry::bucket_upper_bound(i);
      const double fraction =
          in_bucket > 0.0 ? (target - cumulative) / in_bucket : 0.0;
      const double estimate = lower + (upper - lower) * fraction;
      return std::clamp(estimate, h.min.load(std::memory_order_relaxed),
                        h.max.load(std::memory_order_relaxed));
    }
    cumulative += in_bucket;
  }
  return h.max.load(std::memory_order_relaxed);
}

// ---- Bucket scheme ----

namespace {

/// log2(r) with r = 2^(1/4): 4 sub-buckets per octave.
constexpr double kSubBucketsPerOctave = 4.0;

}  // namespace

std::size_t MetricsRegistry::bucket_index(double value) noexcept {
  if (!(value >= kBucketMin)) return 0;  // NaN, negatives, and underflow
  // log2(v) - log2(min), not log2(v/min): the quotient overflows to inf for
  // v near DBL_MAX, and casting inf to size_t is UB.
  const double octaves = std::log2(value) - std::log2(kBucketMin);
  if (octaves * kSubBucketsPerOctave >= static_cast<double>(kBucketCount)) {
    return kBucketCount - 1;
  }
  // Nudge past float error so exact bucket edges index into the bucket they
  // open (half-open intervals); the shift is ~2^1e-9, far below bucket width.
  const auto index = static_cast<std::size_t>(
      1 + std::floor(octaves * kSubBucketsPerOctave + 1e-9));
  return std::min(index, kBucketCount - 1);
}

double MetricsRegistry::bucket_lower_bound(std::size_t index) noexcept {
  if (index == 0) return 0.0;
  return kBucketMin * std::exp2(static_cast<double>(index - 1) / kSubBucketsPerOctave);
}

double MetricsRegistry::bucket_upper_bound(std::size_t index) noexcept {
  if (index == 0) return kBucketMin;
  if (index >= kBucketCount - 1) return std::numeric_limits<double>::infinity();
  return kBucketMin * std::exp2(static_cast<double>(index) / kSubBucketsPerOctave);
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

// ---- Registry ----

namespace {

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string intern_key(std::string_view name, const Labels& labels) {
  std::string key{name};
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

void write_json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

void write_json_number(std::ostream& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out << buffer;
}

}  // namespace

detail::Cell& MetricsRegistry::resolve(std::string_view name, Labels labels,
                                       MetricKind kind) {
  labels = canonical(std::move(labels));
  const std::string key = intern_key(name, labels);
  const std::scoped_lock lock{mutex_};
  const auto it = index_.find(key);
  if (it != index_.end()) {
    detail::Cell& cell = cells_[it->second];
    if (cell.kind != kind) {
      throw std::invalid_argument{"MetricsRegistry: '" + std::string{name} +
                                  "' re-registered as a different kind"};
    }
    return cell;
  }
  detail::Cell& cell = cells_.emplace_back();
  cell.kind = kind;
  if (kind == MetricKind::kHistogram) {
    cell.histogram = std::make_unique<detail::HistogramCell>();
  }
  meta_.push_back(Meta{std::string{name}, std::move(labels)});
  index_.emplace(key, cells_.size() - 1);
  return cell;
}

Counter MetricsRegistry::counter(std::string_view name, Labels labels) {
  return Counter{&resolve(name, std::move(labels), MetricKind::kCounter)};
}

Gauge MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return Gauge{&resolve(name, std::move(labels), MetricKind::kGauge)};
}

Histogram MetricsRegistry::histogram(std::string_view name, Labels labels) {
  return Histogram{&resolve(name, std::move(labels), MetricKind::kHistogram)};
}

MetricsRegistry::Row MetricsRegistry::snapshot_row(std::size_t index) const {
  // Caller holds mutex_ (cells/meta structure access only; values are atomic).
  auto& cell = const_cast<detail::Cell&>(cells_[index]);
  Row row;
  row.name = meta_[index].name;
  row.labels = meta_[index].labels;
  row.kind = cell.kind;
  if (cell.kind == MetricKind::kHistogram) {
    const Histogram h{&cell};
    row.count = h.count();
    row.sum = h.sum();
    row.min = row.count > 0 ? h.min() : 0.0;
    row.max = row.count > 0 ? h.max() : 0.0;
    row.p50 = h.quantile(0.50);
    row.p90 = h.quantile(0.90);
    row.p99 = h.quantile(0.99);
    row.value = row.sum;
  } else {
    row.value = cell.value.load(std::memory_order_relaxed);
  }
  return row;
}

std::vector<MetricsRegistry::Row> MetricsRegistry::rows() const {
  std::vector<Row> out;
  {
    const std::scoped_lock lock{mutex_};
    out.reserve(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) out.push_back(snapshot_row(i));
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

const detail::Cell* MetricsRegistry::lookup(std::string_view name,
                                            const Labels& labels) const {
  const std::string key = intern_key(name, canonical(labels));
  const std::scoped_lock lock{mutex_};
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &cells_[it->second];
}

double MetricsRegistry::quantile(std::string_view name, double q,
                                 const Labels& labels) const {
  const detail::Cell* cell = lookup(name, labels);
  if (cell == nullptr || cell->kind != MetricKind::kHistogram) return 0.0;
  // Handles only read atomics; shedding const here mirrors snapshot_row.
  return Histogram{const_cast<detail::Cell*>(cell)}.quantile(q);
}

std::optional<MetricsRegistry::HistogramSummary> MetricsRegistry::histogram_summary(
    std::string_view name, const Labels& labels) const {
  const detail::Cell* cell = lookup(name, labels);
  if (cell == nullptr || cell->kind != MetricKind::kHistogram) return std::nullopt;
  const Histogram h{const_cast<detail::Cell*>(cell)};
  HistogramSummary summary;
  summary.count = h.count();
  summary.sum = h.sum();
  summary.min = summary.count > 0 ? h.min() : 0.0;
  summary.max = summary.count > 0 ? h.max() : 0.0;
  summary.p50 = h.quantile(0.50);
  summary.p90 = h.quantile(0.90);
  summary.p99 = h.quantile(0.99);
  summary.p999 = h.quantile(0.999);
  return summary;
}

std::optional<MetricsRegistry::Row> MetricsRegistry::find(std::string_view name,
                                                          const Labels& labels) const {
  const std::string key = intern_key(name, canonical(labels));
  const std::scoped_lock lock{mutex_};
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return snapshot_row(it->second);
}

std::size_t MetricsRegistry::size() const {
  const std::scoped_lock lock{mutex_};
  return cells_.size();
}

void MetricsRegistry::write_jsonl(std::ostream& out,
                                  std::string_view line_prefix) const {
  for (const Row& row : rows()) {
    out << line_prefix << "{\"metric\":";
    write_json_string(out, row.name);
    out << ",\"kind\":" << '"' << to_string(row.kind) << '"';
    if (!row.labels.empty()) {
      out << ",\"labels\":{";
      bool first = true;
      for (const auto& [k, v] : row.labels) {
        if (!first) out << ',';
        first = false;
        write_json_string(out, k);
        out << ':';
        write_json_string(out, v);
      }
      out << '}';
    }
    if (row.kind == MetricKind::kHistogram) {
      out << ",\"count\":" << row.count << ",\"sum\":";
      write_json_number(out, row.sum);
      out << ",\"min\":";
      write_json_number(out, row.min);
      out << ",\"max\":";
      write_json_number(out, row.max);
      out << ",\"p50\":";
      write_json_number(out, row.p50);
      out << ",\"p90\":";
      write_json_number(out, row.p90);
      out << ",\"p99\":";
      write_json_number(out, row.p99);
    } else {
      out << ",\"value\":";
      write_json_number(out, row.value);
    }
    out << "}\n";
  }
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "metric,labels,kind,value,count,sum,min,max,p50,p90,p99\n";
  for (const Row& row : rows()) {
    out << row.name << ',';
    std::string labels;
    for (const auto& [k, v] : row.labels) {
      if (!labels.empty()) labels += ';';
      labels += k + "=" + v;
    }
    out << labels << ',' << to_string(row.kind) << ',' << row.value << ','
        << row.count << ',' << row.sum << ',' << row.min << ',' << row.max << ','
        << row.p50 << ',' << row.p90 << ',' << row.p99 << '\n';
  }
}

}  // namespace vdx::obs
