#include "obs/tracer.hpp"

#include <chrono>
#include <cstdio>

namespace vdx::obs {

SpanTracer::SpanTracer(std::size_t capacity) : capacity_(capacity) {
  spans_.reserve(capacity_);
  epoch_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double SpanTracer::wall_now() const noexcept {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(now - epoch_ns_) * 1e-9;
}

std::uint32_t SpanTracer::intern(std::string_view name) {
  const auto it = name_index_.find(name);
  if (it != name_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(names_.back(), id);
  return id;
}

std::uint64_t SpanTracer::begin(std::string_view name) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return 0;
  }
  Span span;
  span.id = static_cast<std::uint32_t>(spans_.size());
  span.parent = open_stack_.empty() ? UINT32_MAX : open_stack_.back();
  span.depth = static_cast<std::uint32_t>(open_stack_.size());
  span.name_id = intern(name);
  span.seq_open = ++seq_;
  span.logical_open = logical_;
  span.wall_open_s = wall_now();
  spans_.push_back(span);
  open_stack_.push_back(span.id);
  return span.id + 1;
}

void SpanTracer::end(std::uint64_t token) noexcept {
  if (token == 0 || token > spans_.size()) return;
  const auto id = static_cast<std::uint32_t>(token - 1);
  Span& span = spans_[id];
  if (span.closed) return;
  span.closed = true;
  span.seq_close = ++seq_;
  span.logical_close = logical_;
  span.wall_close_s = wall_now();
  // RAII usage is LIFO; defensively unwind anything left open above us.
  while (!open_stack_.empty()) {
    const std::uint32_t top = open_stack_.back();
    open_stack_.pop_back();
    if (top == id) break;
  }
}

void SpanTracer::instant(std::string_view name) { end(begin(name)); }

std::string_view SpanTracer::name(const Span& span) const {
  return names_[span.name_id];
}

void SpanTracer::write_jsonl(std::ostream& out, bool include_wall) const {
  for (const Span& span : spans_) {
    out << "{\"span\":\"" << names_[span.name_id] << "\",\"id\":" << span.id;
    if (span.parent != UINT32_MAX) out << ",\"parent\":" << span.parent;
    out << ",\"depth\":" << span.depth << ",\"seq_open\":" << span.seq_open
        << ",\"seq_close\":" << span.seq_close
        << ",\"logical_open\":" << span.logical_open
        << ",\"logical_close\":" << span.logical_close;
    if (include_wall) {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, ",\"wall_open_s\":%.9f,\"wall_close_s\":%.9f",
                    span.wall_open_s, span.wall_close_s);
      out << buffer;
    }
    out << ",\"closed\":" << (span.closed ? "true" : "false") << "}\n";
  }
}

}  // namespace vdx::obs
