// RunJournal: a bounded ring of structured run events (DESIGN.md §7).
//
// Where metrics aggregate and spans time, the journal *narrates*: every
// consequential decision-path event — bids landing, messages timing out,
// stale bids substituted, rounds degraded, sessions failing over — becomes
// one fixed-schema Event. The ring keeps the most recent `capacity` events
// (overwrites are counted, never silent), exports as JSONL or CSV, parses
// its own JSONL back (round-trip tested), and renders a compact end-of-run
// summary table of event counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string_view>
#include <vector>

#include "core/result.hpp"
#include "core/table.hpp"

namespace vdx::obs {

enum class EventKind : std::uint8_t {
  kRoundStart,
  kRoundEnd,
  kBid,
  kRetry,
  kTimeout,
  kDecodeReject,
  kStaleBid,
  kQuorumMiss,
  kDegradedRound,
  kFailover,
  kSolve,
  kEpoch,
  kCheckpoint,
  kResume,
  kShed,
  kSupplyShift,
  kAdmit,
  kDrain,
  kBreakerOpen,
  kBreakerHalfOpen,
  kBreakerClose,
  kBrownoutStep,
  kCheckpointSkip,
  kRestartDenied,
  kCustom,  // must stay last: the checkpoint codec bounds kind bytes by it
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;
[[nodiscard]] std::optional<EventKind> event_kind_from(std::string_view name) noexcept;

struct Event {
  EventKind kind = EventKind::kCustom;
  /// Monotonic position in the run (assigned by the journal; survives
  /// ring overwrites, so gaps in an exported window are detectable).
  std::uint64_t seq = 0;
  /// Engine logical clock when recorded (0 when no tracer drives one).
  std::uint64_t logical = 0;
  /// Exchange round the event belongs to.
  std::uint32_t round = 0;
  /// Event-specific id (CDN/link/cluster/backend); kNoSubject when n/a.
  std::uint32_t subject = UINT32_MAX;
  /// Event-specific payload (count, Mbps, ticks, ...).
  double value = 0.0;

  friend bool operator==(const Event&, const Event&) = default;
};

class RunJournal {
 public:
  static constexpr std::uint32_t kNoSubject = UINT32_MAX;

  explicit RunJournal(std::size_t capacity = 4096);

  /// Sets the ambient round stamped onto subsequent events; the exchange
  /// calls this once per round so lower layers need no round plumbing.
  void begin_round(std::uint32_t round) noexcept { round_ = round; }
  [[nodiscard]] std::uint32_t current_round() const noexcept { return round_; }

  void record(EventKind kind, std::uint32_t subject = kNoSubject,
              double value = 0.0, std::uint64_t logical = 0);

  /// Events currently retained, oldest first (handles wraparound).
  [[nodiscard]] std::vector<Event> events() const;
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
  /// Events pushed out of the ring by newer ones.
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return total_ > buffer_.size() ? total_ - buffer_.size() : 0;
  }

  void write_jsonl(std::ostream& out) const;
  void write_csv(std::ostream& out) const;
  /// Parses write_jsonl() output; throws std::runtime_error on malformed
  /// input. write_jsonl -> read_jsonl round-trips exactly.
  [[nodiscard]] static std::vector<Event> read_jsonl(std::istream& in);

  /// Restores a checkpointed journal: `events` is the retained window
  /// (oldest first, seq-contiguous, ending at `total` - 1), `total` the
  /// all-time record count, `round` the ambient round. Each event returns
  /// to its original ring slot (seq % capacity), so a restored journal's
  /// events(), seq numbering, and overwrite accounting are byte-identical
  /// to the uninterrupted run's — seq stays strictly monotone across the
  /// crash. Fails (kInvalidArgument) when the window is inconsistent with
  /// `total` or larger than this journal's capacity.
  [[nodiscard]] core::Status restore(std::span<const Event> events,
                                     std::uint64_t total, std::uint32_t round);

  /// Compact end-of-run view: events per kind with first/last round.
  [[nodiscard]] core::Table summary_table() const;

 private:
  std::vector<Event> buffer_;
  std::uint64_t total_ = 0;
  std::uint32_t round_ = 0;
};

/// One shard's exported journal window, tagged with its origin so the
/// coordinator merge has a deterministic tiebreak.
struct JournalSlice {
  /// Source shard id (merge order for events with equal clocks).
  std::uint32_t source = 0;
  /// The shard journal's all-time record count at export time.
  std::uint64_t total_recorded = 0;
  /// Retained window, oldest first (RunJournal::events()).
  std::vector<Event> events;
};

/// Merges per-shard journal windows into one coordinator-side stream.
///
/// Every shard numbers its own events from seq 0, so a naive concatenation
/// carries N copies of each seq value and violates the journal's strict
/// monotonicity contract (seq is "monotonic position in the run" — restore()
/// and gap detection both lean on it). The merge therefore orders events by
/// (logical clock, round, source shard, original seq) — a stable total order
/// that interleaves shards on the shared logical clock while keeping each
/// shard's own stream in recorded order — and REASSIGNS seq densely
/// 0..n-1 over the merged stream, so the result is strictly monotone and
/// gap-free regardless of how the per-shard windows interleave.
[[nodiscard]] std::vector<Event> merge_journal_slices(
    std::span<const JournalSlice> slices);

}  // namespace vdx::obs
