#include "solver/lagrangian.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "solver/greedy.hpp"

namespace vdx::solver {

LagrangianResult solve_lagrangian(const AssignmentProblem& problem,
                                  const LagrangianConfig& config) {
  problem.validate();

  std::vector<std::vector<std::size_t>> by_group(problem.group_count());
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    by_group[problem.options[i].group].push_back(i);
  }

  LagrangianResult result;
  result.duals.assign(problem.resource_count(), 0.0);

  double mean_cost = 0.0;
  for (const Option& o : problem.options) mean_cost += std::abs(o.unit_cost);
  mean_cost = problem.options.empty() ? 1.0
                                      : std::max(1e-9, mean_cost /
                                                           static_cast<double>(
                                                               problem.options.size()));

  std::vector<double> loads(problem.resource_count());
  result.dual_bound = -std::numeric_limits<double>::infinity();

  for (std::size_t it = 0; it < config.iterations; ++it) {
    // Relaxed subproblem: each group takes its lambda-cheapest option.
    std::fill(loads.begin(), loads.end(), 0.0);
    double relaxed_value = 0.0;
    for (std::size_t g = 0; g < problem.group_count(); ++g) {
      const double count = problem.group_counts[g];
      if (count <= 0.0 || by_group[g].empty()) continue;
      std::size_t best = by_group[g].front();
      double best_cost = std::numeric_limits<double>::infinity();
      for (const std::size_t i : by_group[g]) {
        const Option& o = problem.options[i];
        const double dual_price =
            o.resource == kNoResource ? 0.0 : result.duals[o.resource] * o.unit_demand;
        const double c = o.unit_cost + dual_price;
        if (c < best_cost) {
          best_cost = c;
          best = i;
        }
      }
      relaxed_value += count * best_cost;
      const Option& chosen = problem.options[best];
      if (chosen.resource != kNoResource) {
        loads[chosen.resource] += count * chosen.unit_demand;
      }
    }
    for (std::size_t r = 0; r < problem.resource_count(); ++r) {
      relaxed_value -= result.duals[r] * problem.capacities[r];
    }
    result.dual_bound = std::max(result.dual_bound, relaxed_value);

    // Subgradient step on the capacity violations, diminishing step size.
    const double step = config.initial_step * mean_cost /
                        std::sqrt(static_cast<double>(it + 1));
    for (std::size_t r = 0; r < problem.resource_count(); ++r) {
      const double violation = loads[r] - problem.capacities[r];
      const double scale =
          problem.capacities[r] > 0.0 ? problem.capacities[r] : 1.0;
      result.duals[r] = std::max(0.0, result.duals[r] + step * violation / scale);
    }
  }

  // Primal recovery: greedy on dual-adjusted costs (congestion-priced), then
  // evaluate against the *true* costs.
  AssignmentProblem priced = problem;
  for (Option& o : priced.options) {
    if (o.resource != kNoResource) {
      o.unit_cost += result.duals[o.resource] * o.unit_demand;
    }
  }
  GreedyConfig greedy_config;
  greedy_config.overflow_penalty = config.overflow_penalty;
  greedy_config.improvement_passes = config.repair_passes;
  const Assignment priced_solution = solve_greedy(priced, greedy_config);
  Assignment from_duals = evaluate(problem, priced_solution.amounts);

  // The dual prices can over-steer on loosely constrained instances; keep
  // whichever of {priced greedy, plain greedy} wins on the true objective.
  Assignment plain = solve_greedy(problem, greedy_config);
  result.assignment =
      plain.penalized_objective(config.overflow_penalty) <
              from_duals.penalized_objective(config.overflow_penalty)
          ? std::move(plain)
          : std::move(from_duals);
  return result;
}

}  // namespace vdx::solver
