#include "solver/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace vdx::solver {

namespace {

struct GroupView {
  std::vector<std::size_t> options;  // indices into problem.options, by cost
  double regret = 0.0;
};

}  // namespace

namespace {

/// One construction + local-search run for a fixed group order.
Assignment construct_and_improve(const AssignmentProblem& problem,
                                 const GreedyConfig& config,
                                 const std::vector<GroupView>& groups,
                                 const std::vector<std::size_t>& order) {
  std::vector<double> amounts(problem.options.size(), 0.0);
  std::vector<double> remaining(problem.capacities.begin(), problem.capacities.end());

  // Construction: cheapest option first, capped by remaining capacity; any
  // residue lands on the cheapest option regardless (overflow is legal, just
  // penalized — matching how a real broker can overload a cluster).
  for (const std::size_t g : order) {
    double need = problem.group_counts[g];
    if (need <= 0.0 || groups[g].options.empty()) continue;
    for (const std::size_t i : groups[g].options) {
      if (need <= 0.0) break;
      const Option& o = problem.options[i];
      double take = need;
      if (o.resource != kNoResource) {
        take = std::min(take, std::max(0.0, remaining[o.resource]) / o.unit_demand);
      }
      if (take <= 0.0) continue;
      amounts[i] += take;
      need -= take;
      if (o.resource != kNoResource) remaining[o.resource] -= take * o.unit_demand;
    }
    if (need > 0.0) {
      const std::size_t i = groups[g].options.front();
      amounts[i] += need;
      const Option& o = problem.options[i];
      if (o.resource != kNoResource) remaining[o.resource] -= need * o.unit_demand;
    }
  }

  // Local search: shift amount from option i to a cheaper-effective option j
  // of the same group while capacity allows. Effective cost counts the
  // overflow penalty, so this also repairs forced overflow placed above.
  const auto effective_unit_cost = [&](const Option& o, double at_remaining) {
    double c = o.unit_cost;
    if (o.resource != kNoResource && at_remaining <= 0.0) {
      c += config.overflow_penalty * o.unit_demand;
    }
    return c;
  };

  for (std::size_t pass = 0; pass < config.improvement_passes; ++pass) {
    bool improved = false;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (const std::size_t i : groups[g].options) {
        if (amounts[i] <= 0.0) continue;
        const Option& from = problem.options[i];
        const double from_cost = effective_unit_cost(
            from, from.resource == kNoResource ? 1.0 : remaining[from.resource]);
        for (const std::size_t j : groups[g].options) {
          if (j == i || amounts[i] <= 0.0) continue;
          const Option& to = problem.options[j];
          const double to_remaining =
              to.resource == kNoResource ? std::numeric_limits<double>::infinity()
                                         : remaining[to.resource];
          if (to_remaining <= 0.0) continue;
          const double to_cost = effective_unit_cost(to, to_remaining);
          if (to_cost + 1e-12 >= from_cost) continue;

          double shift = amounts[i];
          if (to.resource != kNoResource) {
            shift = std::min(shift, to_remaining / to.unit_demand);
          }
          if (shift <= 0.0) continue;
          amounts[i] -= shift;
          amounts[j] += shift;
          if (from.resource != kNoResource) {
            remaining[from.resource] += shift * from.unit_demand;
          }
          if (to.resource != kNoResource) {
            remaining[to.resource] -= shift * to.unit_demand;
          }
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  return evaluate(problem, std::move(amounts));
}

}  // namespace

Assignment solve_greedy(const AssignmentProblem& problem, const GreedyConfig& config) {
  problem.validate();

  std::vector<GroupView> groups(problem.group_count());
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    groups[problem.options[i].group].options.push_back(i);
  }
  for (auto& g : groups) {
    std::sort(g.options.begin(), g.options.end(), [&](std::size_t a, std::size_t b) {
      return problem.options[a].unit_cost < problem.options[b].unit_cost;
    });
    if (g.options.size() >= 2) {
      g.regret = problem.options[g.options[1]].unit_cost -
                 problem.options[g.options[0]].unit_cost;
    } else if (!g.options.empty()) {
      g.regret = std::numeric_limits<double>::max();  // forced choice first
    }
  }

  // Multi-start: the construction order matters under tight capacity, so run
  // a few informative orders and keep the best outcome.
  std::vector<std::size_t> by_regret(groups.size());
  std::iota(by_regret.begin(), by_regret.end(), std::size_t{0});
  std::sort(by_regret.begin(), by_regret.end(), [&](std::size_t a, std::size_t b) {
    if (groups[a].regret != groups[b].regret) return groups[a].regret > groups[b].regret;
    return a < b;
  });

  std::vector<std::size_t> by_demand(groups.size());
  std::iota(by_demand.begin(), by_demand.end(), std::size_t{0});
  std::sort(by_demand.begin(), by_demand.end(), [&](std::size_t a, std::size_t b) {
    const auto demand_of = [&](std::size_t g) {
      return groups[g].options.empty()
                 ? 0.0
                 : problem.group_counts[g] *
                       problem.options[groups[g].options.front()].unit_demand;
    };
    const double da = demand_of(a);
    const double db = demand_of(b);
    if (da != db) return da > db;
    return a < b;
  });

  std::vector<std::size_t> by_index(groups.size());
  std::iota(by_index.begin(), by_index.end(), std::size_t{0});

  Assignment best;
  bool have_best = false;
  for (const auto* order : {&by_regret, &by_demand, &by_index}) {
    Assignment candidate = construct_and_improve(problem, config, groups, *order);
    if (!have_best || candidate.penalized_objective(config.overflow_penalty) <
                          best.penalized_objective(config.overflow_penalty)) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  return best;
}

}  // namespace vdx::solver
