// Dense two-phase primal simplex for general linear programs.
//
// This is the exact backend behind the broker ILP (paper Fig. 9, solved with
// Gurobi by the authors — see DESIGN.md §2 for the substitution): the LP
// relaxation is solved here, and branch_bound.hpp closes the integrality
// gap. Dense tableaus are fine at the scale we use exact solves (hundreds of
// rows); trace-scale instances use the min-cost-flow / Lagrangian backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vdx::solver {

enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpConstraint {
  enum class Relation : std::uint8_t { kLessEqual, kEqual, kGreaterEqual };

  std::vector<std::pair<std::uint32_t, double>> terms;  // (variable, coefficient)
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// Minimize objective . x subject to constraints, x >= 0.
struct LpProblem {
  std::size_t variable_count = 0;
  std::vector<double> objective;  // size == variable_count
  std::vector<LpConstraint> constraints;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;
  double objective = 0.0;
  std::size_t iterations = 0;
};

struct SimplexConfig {
  std::size_t max_iterations = 200'000;
  double tolerance = 1e-9;
  /// Consecutive degenerate pivots tolerated under the Dantzig rule before
  /// switching to Bland's rule (which provably terminates but crawls).
  /// Classic cycling instances (Beale's) spin under pure Dantzig; the
  /// regression tests pin that this cutover breaks the cycle.
  std::size_t degenerate_pivot_limit = 64;
};

[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  const SimplexConfig& config = {});

}  // namespace vdx::solver
