#include "solver/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vdx::solver {

namespace {

/// Dense tableau with explicit basis bookkeeping. Columns are laid out as
/// [structural | slack/surplus | artificial | rhs].
class Tableau {
 public:
  Tableau(const LpProblem& problem, double tol, std::size_t degenerate_limit)
      : tol_(tol), degenerate_limit_(degenerate_limit), n_(problem.variable_count) {
    const std::size_t m = problem.constraints.size();
    rows_ = m;

    // Count auxiliary columns.
    std::size_t slack_count = 0;
    std::size_t artificial_count = 0;
    for (const auto& c : problem.constraints) {
      const bool rhs_negative = c.rhs < 0.0;
      auto rel = c.relation;
      if (rhs_negative) rel = flipped(rel);
      if (rel != LpConstraint::Relation::kEqual) ++slack_count;
      if (rel != LpConstraint::Relation::kLessEqual) ++artificial_count;
    }
    slack_begin_ = n_;
    artificial_begin_ = n_ + slack_count;
    cols_ = artificial_begin_ + artificial_count;  // + rhs handled separately

    a_.assign(rows_ * (cols_ + 1), 0.0);
    basis_.assign(rows_, 0);

    std::size_t next_slack = slack_begin_;
    std::size_t next_artificial = artificial_begin_;
    for (std::size_t r = 0; r < m; ++r) {
      const auto& c = problem.constraints[r];
      double sign = 1.0;
      auto rel = c.relation;
      if (c.rhs < 0.0) {
        sign = -1.0;
        rel = flipped(rel);
      }
      for (const auto& [var, coeff] : c.terms) {
        if (var >= n_) throw std::invalid_argument{"LpConstraint: variable out of range"};
        at(r, var) += sign * coeff;
      }
      rhs(r) = sign * c.rhs;

      switch (rel) {
        case LpConstraint::Relation::kLessEqual:
          at(r, next_slack) = 1.0;
          basis_[r] = next_slack++;
          break;
        case LpConstraint::Relation::kGreaterEqual:
          at(r, next_slack++) = -1.0;
          at(r, next_artificial) = 1.0;
          basis_[r] = next_artificial++;
          break;
        case LpConstraint::Relation::kEqual:
          at(r, next_artificial) = 1.0;
          basis_[r] = next_artificial++;
          break;
      }
    }
  }

  [[nodiscard]] std::size_t structural_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t artificial_begin() const noexcept { return artificial_begin_; }
  [[nodiscard]] std::size_t column_count() const noexcept { return cols_; }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_; }
  [[nodiscard]] std::size_t basis_of_row(std::size_t r) const { return basis_[r]; }

  double& at(std::size_t r, std::size_t c) { return a_[r * (cols_ + 1) + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return a_[r * (cols_ + 1) + c];
  }
  double& rhs(std::size_t r) { return a_[r * (cols_ + 1) + cols_]; }
  [[nodiscard]] double rhs(std::size_t r) const { return a_[r * (cols_ + 1) + cols_]; }

  /// Runs simplex minimizing `cost` (size column_count()). Returns status.
  /// `allow_columns(col)` filters entering candidates (used to freeze
  /// artificial columns in phase 2).
  template <typename ColumnFilter>
  LpStatus minimize(std::vector<double> cost, std::size_t max_iterations,
                    std::size_t& iterations, ColumnFilter allow_column) {
    // Reduced-cost row: z_j - c_j maintained implicitly by pricing out the
    // basis from the cost row.
    std::vector<double> reduced = std::move(cost);
    double objective_shift = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double cb = reduced_basis_cost(reduced, r);
      if (cb != 0.0) {
        for (std::size_t c = 0; c < cols_; ++c) reduced[c] -= cb * at(r, c);
        objective_shift += cb * rhs(r);
      }
    }
    (void)objective_shift;

    std::size_t stall = 0;
    while (iterations < max_iterations) {
      // Entering column: Dantzig rule normally, Bland's rule when stalling to
      // break degenerate cycles.
      const bool bland = stall > degenerate_limit_;
      std::size_t entering = cols_;
      double best = -tol_;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (!allow_column(c)) continue;
        const double rc = reduced[c];
        if (rc < -tol_) {
          if (bland) {
            entering = c;
            break;
          }
          if (rc < best) {
            best = rc;
            entering = c;
          }
        }
      }
      if (entering == cols_) return LpStatus::kOptimal;

      // Ratio test.
      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_; ++r) {
        const double pivot = at(r, entering);
        if (pivot > tol_) {
          const double ratio = rhs(r) / pivot;
          if (ratio < best_ratio - tol_ ||
              (ratio < best_ratio + tol_ &&
               (leaving == rows_ || basis_[r] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == rows_) return LpStatus::kUnbounded;

      stall = best_ratio < tol_ ? stall + 1 : 0;
      pivot(leaving, entering, reduced);
      ++iterations;
    }
    return LpStatus::kIterationLimit;
  }

  [[nodiscard]] std::vector<double> extract_solution() const {
    std::vector<double> x(n_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] < n_) x[basis_[r]] = std::max(0.0, rhs(r));
    }
    return x;
  }

  /// Sum of artificial basic variables (phase-1 objective value).
  [[nodiscard]] double artificial_mass() const {
    double mass = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] >= artificial_begin_) mass += std::max(0.0, rhs(r));
    }
    return mass;
  }

  /// Pivots any artificial variable still basic (at zero level) out of the
  /// basis where possible, so phase 2 cannot reintroduce infeasibility.
  void expel_artificials(std::vector<double>& reduced_dummy) {
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] < artificial_begin_) continue;
      for (std::size_t c = 0; c < artificial_begin_; ++c) {
        if (std::abs(at(r, c)) > tol_) {
          pivot(r, c, reduced_dummy);
          break;
        }
      }
    }
  }

 private:
  static LpConstraint::Relation flipped(LpConstraint::Relation rel) noexcept {
    switch (rel) {
      case LpConstraint::Relation::kLessEqual:
        return LpConstraint::Relation::kGreaterEqual;
      case LpConstraint::Relation::kGreaterEqual:
        return LpConstraint::Relation::kLessEqual;
      case LpConstraint::Relation::kEqual:
        return LpConstraint::Relation::kEqual;
    }
    return rel;
  }

  double reduced_basis_cost(const std::vector<double>& reduced, std::size_t r) const {
    return basis_[r] < reduced.size() ? reduced[basis_[r]] : 0.0;
  }

  void pivot(std::size_t leaving_row, std::size_t entering_col,
             std::vector<double>& reduced) {
    const double pivot_value = at(leaving_row, entering_col);
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c <= cols_; ++c) at(leaving_row, c) *= inv;
    at(leaving_row, entering_col) = 1.0;  // exact

    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == leaving_row) continue;
      const double factor = at(r, entering_col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c) {
        at(r, c) -= factor * at(leaving_row, c);
      }
      at(r, entering_col) = 0.0;  // exact
    }
    if (!reduced.empty()) {
      const double factor = reduced[entering_col];
      if (factor != 0.0) {
        for (std::size_t c = 0; c < cols_; ++c) {
          reduced[c] -= factor * at(leaving_row, c);
        }
        reduced[entering_col] = 0.0;
      }
    }
    basis_[leaving_row] = entering_col;
  }

  double tol_;
  std::size_t degenerate_limit_;
  std::size_t n_ = 0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t slack_begin_ = 0;
  std::size_t artificial_begin_ = 0;
  std::vector<double> a_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const SimplexConfig& config) {
  if (problem.objective.size() != problem.variable_count) {
    throw std::invalid_argument{"LpProblem: objective arity mismatch"};
  }

  LpSolution solution;
  if (problem.variable_count == 0) {
    // Feasibility is decided purely by constant constraints.
    for (const auto& c : problem.constraints) {
      const bool ok = c.relation == LpConstraint::Relation::kLessEqual ? 0.0 <= c.rhs
                      : c.relation == LpConstraint::Relation::kEqual   ? c.rhs == 0.0
                                                                       : 0.0 >= c.rhs;
      if (!ok) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
    }
    solution.status = LpStatus::kOptimal;
    return solution;
  }

  Tableau tableau{problem, config.tolerance, config.degenerate_pivot_limit};

  // Phase 1: minimize the sum of artificials.
  if (tableau.artificial_begin() < tableau.column_count()) {
    std::vector<double> phase1_cost(tableau.column_count(), 0.0);
    for (std::size_t c = tableau.artificial_begin(); c < tableau.column_count(); ++c) {
      phase1_cost[c] = 1.0;
    }
    const LpStatus status =
        tableau.minimize(std::move(phase1_cost), config.max_iterations,
                         solution.iterations, [](std::size_t) { return true; });
    if (status == LpStatus::kIterationLimit) {
      solution.status = status;
      return solution;
    }
    if (tableau.artificial_mass() > 1e-6) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    std::vector<double> dummy;
    tableau.expel_artificials(dummy);
  }

  // Phase 2: minimize the real objective with artificial columns frozen.
  std::vector<double> phase2_cost(tableau.column_count(), 0.0);
  std::copy(problem.objective.begin(), problem.objective.end(), phase2_cost.begin());
  const std::size_t artificial_begin = tableau.artificial_begin();
  solution.status = tableau.minimize(
      std::move(phase2_cost), config.max_iterations, solution.iterations,
      [artificial_begin](std::size_t c) { return c < artificial_begin; });

  if (solution.status == LpStatus::kOptimal) {
    solution.x = tableau.extract_solution();
    solution.objective = 0.0;
    for (std::size_t v = 0; v < problem.variable_count; ++v) {
      solution.objective += problem.objective[v] * solution.x[v];
    }
  }
  return solution;
}

}  // namespace vdx::solver
