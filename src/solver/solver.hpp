// Unified front-end over the solver backends.
//
// Backend ladder (DESIGN.md §5):
//   kSimplex       exact LP relaxation (dense two-phase simplex)
//   kBranchAndBound exact integral solve (simplex + B&B) — small instances
//   kMinCostFlow   exact LP relaxation via network flow — needs per-group
//                  uniform demand (always true for Share-grouped clients)
//   kGreedy        regret greedy + local search — any size
//   kLagrangian    dual ascent + priced greedy — any size
//   kAuto          picks by instance size and structure
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/observe.hpp"
#include "solver/problem.hpp"

namespace vdx::solver {

enum class Backend : std::uint8_t {
  kAuto,
  kSimplex,
  kBranchAndBound,
  kMinCostFlow,
  kGreedy,
  kLagrangian,
};

[[nodiscard]] std::string_view to_string(Backend backend) noexcept;

struct SolveOptions {
  Backend backend = Backend::kAuto;
  /// Penalty per demand unit above capacity (soft-capacity price).
  double overflow_penalty = 1e5;
  /// Round the final amounts to integral clients (largest remainder,
  /// group totals preserved).
  bool integral = false;
  /// Observability sinks (no-op by default): per-invocation span, a
  /// `solver.invocations{backend=...}` counter, instance-size histogram,
  /// and a kSolve journal event.
  obs::Observer obs;
};

/// Solves the assignment problem with the selected backend. Always returns a
/// complete assignment (every group fully placed); capacity excess shows up
/// in Assignment::overflow_demand.
[[nodiscard]] Assignment solve(const AssignmentProblem& problem,
                               const SolveOptions& options = {});

}  // namespace vdx::solver
