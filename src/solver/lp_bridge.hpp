// Bridges the assignment problem to the generic LP layer.
//
// Variable layout of the built LP: [option amounts | per-resource overflow].
// Overflow variables keep every subproblem feasible and are priced at the
// overflow penalty, mirroring the soft-capacity semantics of
// solver/problem.hpp.
#pragma once

#include "solver/problem.hpp"
#include "solver/simplex.hpp"

namespace vdx::solver {

[[nodiscard]] LpProblem build_assignment_lp(const AssignmentProblem& problem,
                                            double overflow_penalty);

/// Extracts option amounts from an LP solution built by build_assignment_lp
/// and re-evaluates them against the original problem.
[[nodiscard]] Assignment decode_assignment_lp(const AssignmentProblem& problem,
                                              const LpSolution& lp);

}  // namespace vdx::solver
