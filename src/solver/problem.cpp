#include "solver/problem.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vdx::solver {

void AssignmentProblem::validate() const {
  std::vector<std::uint8_t> has_option(group_counts.size(), 0);
  for (std::size_t g = 0; g < group_counts.size(); ++g) {
    if (!(group_counts[g] >= 0.0) || !std::isfinite(group_counts[g])) {
      throw std::invalid_argument{"AssignmentProblem: group count must be finite >= 0"};
    }
  }
  for (const double cap : capacities) {
    if (!(cap >= 0.0) || !std::isfinite(cap)) {
      throw std::invalid_argument{"AssignmentProblem: capacity must be finite >= 0"};
    }
  }
  for (std::size_t i = 0; i < options.size(); ++i) {
    const Option& o = options[i];
    if (o.group >= group_counts.size()) {
      throw std::invalid_argument{"AssignmentProblem: option " + std::to_string(i) +
                                  " references unknown group"};
    }
    if (o.resource != kNoResource && o.resource >= capacities.size()) {
      throw std::invalid_argument{"AssignmentProblem: option " + std::to_string(i) +
                                  " references unknown resource"};
    }
    if (!std::isfinite(o.unit_cost)) {
      throw std::invalid_argument{"AssignmentProblem: option cost must be finite"};
    }
    if (o.resource != kNoResource && !(o.unit_demand > 0.0)) {
      throw std::invalid_argument{
          "AssignmentProblem: resource-consuming option needs unit_demand > 0"};
    }
    has_option[o.group] = 1;
  }
  for (std::size_t g = 0; g < group_counts.size(); ++g) {
    if (group_counts[g] > 0.0 && !has_option[g]) {
      throw std::invalid_argument{"AssignmentProblem: group " + std::to_string(g) +
                                  " has clients but no options"};
    }
  }
}

double AssignmentProblem::total_clients() const noexcept {
  return std::accumulate(group_counts.begin(), group_counts.end(), 0.0);
}

Assignment evaluate(const AssignmentProblem& problem, std::vector<double> amounts) {
  if (amounts.size() != problem.options.size()) {
    throw std::invalid_argument{"evaluate: amounts arity mismatch"};
  }
  Assignment out;
  out.amounts = std::move(amounts);

  std::vector<double> assigned(problem.group_count(), 0.0);
  std::vector<double> loads(problem.resource_count(), 0.0);
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    const double a = out.amounts[i];
    if (a == 0.0) continue;
    if (!(a >= 0.0) || !std::isfinite(a)) {
      throw std::invalid_argument{"evaluate: negative or non-finite amount"};
    }
    const Option& o = problem.options[i];
    out.objective += a * o.unit_cost;
    assigned[o.group] += a;
    if (o.resource != kNoResource) loads[o.resource] += a * o.unit_demand;
  }

  out.complete = true;
  constexpr double kTol = 1e-6;
  for (std::size_t g = 0; g < problem.group_count(); ++g) {
    if (assigned[g] < problem.group_counts[g] * (1.0 - kTol) - kTol ||
        assigned[g] > problem.group_counts[g] * (1.0 + kTol) + kTol) {
      out.complete = false;
    }
  }
  for (std::size_t r = 0; r < problem.resource_count(); ++r) {
    out.overflow_demand += std::max(0.0, loads[r] - problem.capacities[r]);
  }
  return out;
}

std::vector<double> resource_loads(const AssignmentProblem& problem,
                                   std::span<const double> amounts) {
  if (amounts.size() != problem.options.size()) {
    throw std::invalid_argument{"resource_loads: amounts arity mismatch"};
  }
  std::vector<double> loads(problem.resource_count(), 0.0);
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    const Option& o = problem.options[i];
    if (o.resource != kNoResource) loads[o.resource] += amounts[i] * o.unit_demand;
  }
  return loads;
}

std::vector<double> round_to_integers(const AssignmentProblem& problem,
                                      std::span<const double> amounts) {
  if (amounts.size() != problem.options.size()) {
    throw std::invalid_argument{"round_to_integers: amounts arity mismatch"};
  }
  std::vector<double> rounded(amounts.size(), 0.0);

  // Options of each group, so remainders can be settled within the group.
  std::vector<std::vector<std::size_t>> by_group(problem.group_count());
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    by_group[problem.options[i].group].push_back(i);
  }

  for (std::size_t g = 0; g < problem.group_count(); ++g) {
    const auto target = static_cast<long long>(std::llround(problem.group_counts[g]));
    long long floored_total = 0;
    std::vector<std::pair<double, std::size_t>> remainders;  // (-frac, option)
    for (const std::size_t i : by_group[g]) {
      const double floored = std::floor(amounts[i] + 1e-9);
      rounded[i] = floored;
      floored_total += static_cast<long long>(floored);
      remainders.emplace_back(-(amounts[i] - floored), i);
    }
    std::sort(remainders.begin(), remainders.end());
    long long deficit = target - floored_total;
    for (const auto& [neg_frac, i] : remainders) {
      if (deficit <= 0) break;
      rounded[i] += 1.0;
      --deficit;
    }
    // If fp noise left a deficit beyond the number of options with nonzero
    // remainder, top up the cheapest option.
    while (deficit > 0 && !by_group[g].empty()) {
      std::size_t best = by_group[g].front();
      for (const std::size_t i : by_group[g]) {
        if (problem.options[i].unit_cost < problem.options[best].unit_cost) best = i;
      }
      rounded[best] += 1.0;
      --deficit;
    }
  }
  return rounded;
}

}  // namespace vdx::solver
