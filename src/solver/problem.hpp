// The broker's optimization problem (paper Figure 9) as a capacitated
// assignment problem, plus solution evaluation shared by all backends.
//
// Clients are aggregated into groups (the Share granularity of §6.1); each
// group has a set of options (the Matchings/bids available to it). Choosing
// option o for one client of group g incurs `unit_cost(o)` objective units
// and consumes `unit_demand(o)` (the group's bitrate) from the option's
// resource (the target cluster). The paper maximizes
//     wp * performance - wc * cost * bitrate;
// we equivalently minimize a per-client cost in which both terms are folded,
// so `unit_cost` is typically  wp * score + wc * price * bitrate.
//
// Capacity is modeled as soft-with-penalty: every resource has an implicit
// overflow channel priced at `overflow_penalty` per demand unit. This keeps
// every instance feasible (a real broker can always overload a cluster; the
// paper's Congested metric measures exactly when that happens) while making
// overload strictly unattractive to optimizers that know the capacities.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace vdx::solver {

/// Sentinel for options that consume no constrained resource.
inline constexpr std::uint32_t kNoResource = std::numeric_limits<std::uint32_t>::max();

/// One column: "assign clients of `group` to this matching".
struct Option {
  std::uint32_t group = 0;
  std::uint32_t resource = kNoResource;
  double unit_cost = 0.0;    // objective per client assigned
  double unit_demand = 1.0;  // capacity consumed per client (> 0 if resource set)
};

struct AssignmentProblem {
  std::vector<double> group_counts;  // clients per group (non-negative)
  std::vector<double> capacities;    // per resource
  std::vector<Option> options;

  /// Throws std::invalid_argument explaining the first structural defect
  /// (dangling indices, negative counts, group without options, ...).
  void validate() const;

  [[nodiscard]] std::size_t group_count() const noexcept { return group_counts.size(); }
  [[nodiscard]] std::size_t resource_count() const noexcept { return capacities.size(); }
  [[nodiscard]] double total_clients() const noexcept;
};

/// A (possibly fractional) solution: amount of each option used.
struct Assignment {
  std::vector<double> amounts;     // parallel to problem.options
  double objective = 0.0;          // excludes overflow penalty
  double overflow_demand = 0.0;    // total demand above capacity, all resources
  bool complete = false;           // every group fully assigned

  [[nodiscard]] double penalized_objective(double overflow_penalty) const noexcept {
    return objective + overflow_penalty * overflow_demand;
  }
};

/// Recomputes objective/overflow/completeness for `amounts` against
/// `problem`; the single source of truth used to cross-check every backend.
[[nodiscard]] Assignment evaluate(const AssignmentProblem& problem,
                                  std::vector<double> amounts);

/// Per-resource demand implied by a solution (length == resource_count()).
[[nodiscard]] std::vector<double> resource_loads(const AssignmentProblem& problem,
                                                 std::span<const double> amounts);

/// Rounds a fractional solution to integral per-group allocations via
/// largest remainder, preserving group totals exactly (counts must be
/// integral). Does not re-check capacities; callers follow with repair or
/// accept the (bounded) spill.
[[nodiscard]] std::vector<double> round_to_integers(const AssignmentProblem& problem,
                                                    std::span<const double> amounts);

}  // namespace vdx::solver
