// Lagrangian relaxation of the capacity constraints with subgradient ascent.
//
// Dualizing the cluster-capacity rows decomposes the broker problem per
// group: each group independently picks the option minimizing
//     unit_cost + lambda[resource] * unit_demand,
// which is exactly the "price signal" interpretation the paper's marketplace
// builds on (cluster shadow prices rise while overloaded). After the dual
// ascent converges we run a capacity-aware greedy fill on the
// lambda-adjusted costs so the primal answer respects capacities.
#pragma once

#include "solver/problem.hpp"

namespace vdx::solver {

struct LagrangianConfig {
  std::size_t iterations = 120;
  /// Initial subgradient step relative to the mean option cost.
  double initial_step = 0.5;
  double overflow_penalty = 1e5;
  /// Local-search sweeps on the final primal solution.
  std::size_t repair_passes = 2;
};

struct LagrangianResult {
  Assignment assignment;
  /// Final capacity duals (per resource); exposed so callers can inspect the
  /// implied congestion prices.
  std::vector<double> duals;
  /// Best Lagrangian dual bound found (lower bound on the LP optimum).
  double dual_bound = 0.0;
};

[[nodiscard]] LagrangianResult solve_lagrangian(const AssignmentProblem& problem,
                                                const LagrangianConfig& config = {});

}  // namespace vdx::solver
