// Min-cost max-flow (successive shortest augmenting paths with potentials).
//
// The broker LP has pure transportation structure whenever every option of a
// group consumes the group's own bitrate — which is how the Share format
// groups clients — so min-cost flow solves the LP relaxation orders of
// magnitude faster than the tableau simplex at trace scale. The graph layer
// here is generic; assignment wiring lives in solve_assignment_mcf().
#pragma once

#include <cstdint>
#include <vector>

#include "solver/problem.hpp"

namespace vdx::solver {

/// Directed graph with integer capacities and real per-unit costs.
/// Supports negative costs (Bellman-Ford bootstraps the potentials).
class MinCostFlowGraph {
 public:
  using NodeId = std::uint32_t;

  struct ArcRef {
    std::size_t index = 0;
  };

  NodeId add_node();
  [[nodiscard]] std::size_t node_count() const noexcept { return head_.size(); }

  /// Adds a forward arc (and its residual twin). Capacity must be >= 0.
  ArcRef add_arc(NodeId from, NodeId to, std::int64_t capacity, double cost);

  struct FlowResult {
    std::int64_t flow = 0;
    double cost = 0.0;
    bool reached_target = false;  // pushed the full target_flow
  };

  /// Sends up to `target_flow` units from source to sink at minimum cost.
  /// Resets any flow from a previous solve.
  FlowResult solve(NodeId source, NodeId sink, std::int64_t target_flow);

  /// Flow currently on a forward arc (after solve()).
  [[nodiscard]] std::int64_t flow_on(ArcRef arc) const;

 private:
  struct Arc {
    NodeId to = 0;
    std::int64_t capacity = 0;  // residual capacity
    double cost = 0.0;
    std::size_t next = SIZE_MAX;  // intrusive adjacency list
  };

  [[nodiscard]] bool bellman_ford_potentials(NodeId source, std::vector<double>& pot) const;

  std::vector<std::size_t> head_;  // first arc per node
  std::vector<Arc> arcs_;          // twin arcs at (2k, 2k+1)
  std::vector<std::int64_t> initial_capacity_;
};

/// Solves the assignment LP via min-cost flow. Requires every option of a
/// group to have the same unit_demand (throws otherwise). Demands are scaled
/// to integers with `demand_scale`; the returned amounts are client counts.
/// `overflow_penalty` prices demand above capacity (per demand unit).
[[nodiscard]] Assignment solve_assignment_mcf(const AssignmentProblem& problem,
                                              double overflow_penalty,
                                              std::int64_t demand_scale = 1000);

}  // namespace vdx::solver
