// Min-cost max-flow (successive shortest augmenting paths with potentials).
//
// The broker LP has pure transportation structure whenever every option of a
// group consumes the group's own bitrate — which is how the Share format
// groups clients — so min-cost flow solves the LP relaxation orders of
// magnitude faster than the tableau simplex at trace scale. The graph layer
// here is generic; assignment wiring lives in solve_assignment_mcf().
//
// Data layout: arcs are recorded append-only as flat parallel arrays, then
// compacted into a CSR adjacency image on the first solve. The CSR arc order
// per node is exactly the order the previous intrusive linked list iterated
// (newest arc first), so every relaxation — and therefore every tie-break,
// parent choice, and potential — is byte-identical to the list-based walk;
// the CSR merely makes the Dijkstra inner loop a contiguous strided sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "solver/problem.hpp"

namespace vdx::solver {

/// Directed graph with integer capacities and real per-unit costs.
/// Supports negative costs (Bellman-Ford bootstraps the potentials).
class MinCostFlowGraph {
 public:
  using NodeId = std::uint32_t;

  struct ArcRef {
    std::size_t index = 0;
  };

  NodeId add_node();
  [[nodiscard]] std::size_t node_count() const noexcept { return head_.size(); }

  /// Adds a forward arc (and its residual twin). Capacity must be >= 0.
  ArcRef add_arc(NodeId from, NodeId to, std::int64_t capacity, double cost);

  struct FlowResult {
    std::int64_t flow = 0;
    double cost = 0.0;
    bool reached_target = false;  // pushed the full target_flow
  };

  /// Sends up to `target_flow` units from source to sink at minimum cost.
  /// Resets any flow from a previous solve.
  FlowResult solve(NodeId source, NodeId sink, std::int64_t target_flow);

  /// Flow currently on a forward arc (after solve()).
  [[nodiscard]] std::int64_t flow_on(ArcRef arc) const;

 private:
  static constexpr std::uint32_t kNoPos = UINT32_MAX;

  [[nodiscard]] bool bellman_ford_potentials(NodeId source,
                                             std::vector<double>& pot) const;
  void build_csr();
  void heap_push_or_decrease(NodeId node);
  NodeId heap_pop_min();
  void heap_sift_up(std::uint32_t hole);
  void heap_sift_down(std::uint32_t hole);
  [[nodiscard]] bool heap_less(NodeId a, NodeId b) const noexcept {
    return dist_[a] < dist_[b] || (dist_[a] == dist_[b] && a < b);
  }

  // Append-side arc storage (twin arcs at (2k, 2k+1)). `arc_next_` chains a
  // node's arcs newest-first — the iteration order the solver's tie-breaking
  // is pinned to.
  std::vector<std::size_t> head_;  // first arc per node
  std::vector<NodeId> arc_to_;
  std::vector<double> arc_cost_;
  std::vector<std::size_t> arc_next_;
  std::vector<std::int64_t> initial_capacity_;

  // CSR image (built lazily on solve, invalidated by add_arc). Residual
  // capacities live in csr order so the relax loop touches one contiguous
  // block per node.
  std::size_t csr_arc_count_ = SIZE_MAX;
  std::vector<std::uint32_t> csr_start_;   // node -> first csr position
  std::vector<NodeId> csr_to_;
  std::vector<double> csr_cost_;
  std::vector<std::uint32_t> csr_twin_;    // csr position of the twin arc
  std::vector<std::uint32_t> pos_of_arc_;  // arc index -> csr position
  std::vector<std::int64_t> csr_cap_init_;
  std::vector<std::int64_t> residual_;

  // Dijkstra workspace, reused across augmentations (no per-iteration
  // allocation). The heap is an indexed binary min-heap on (dist, node):
  // decrease-key keeps exactly one live entry per node, so the sequence of
  // effective pops — and hence the relaxation order — matches the previous
  // lazy-deletion priority_queue, which skipped its stale duplicates without
  // side effects.
  std::vector<double> dist_;
  std::vector<std::uint32_t> parent_pos_;
  std::vector<std::uint32_t> heap_index_;  // node -> heap slot (kNoPos if out)
  std::vector<NodeId> heap_;
};

/// Solves the assignment LP via min-cost flow. Requires every option of a
/// group to have the same unit_demand (throws otherwise). Demands are scaled
/// to integers with `demand_scale`; the returned amounts are client counts.
/// `overflow_penalty` prices demand above capacity (per demand unit).
[[nodiscard]] Assignment solve_assignment_mcf(const AssignmentProblem& problem,
                                              double overflow_penalty,
                                              std::int64_t demand_scale = 1000);

}  // namespace vdx::solver
