#include "solver/solver.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "solver/branch_bound.hpp"
#include "solver/greedy.hpp"
#include "solver/lagrangian.hpp"
#include "solver/lp_bridge.hpp"
#include "solver/mincost_flow.hpp"
#include "solver/simplex.hpp"

namespace vdx::solver {

std::string_view to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kSimplex:
      return "simplex";
    case Backend::kBranchAndBound:
      return "branch-and-bound";
    case Backend::kMinCostFlow:
      return "min-cost-flow";
    case Backend::kGreedy:
      return "greedy";
    case Backend::kLagrangian:
      return "lagrangian";
  }
  return "unknown";
}

namespace {

bool has_uniform_group_demand(const AssignmentProblem& problem) {
  std::vector<double> demand(problem.group_count(), -1.0);
  for (const Option& o : problem.options) {
    if (demand[o.group] < 0.0) {
      demand[o.group] = o.unit_demand;
    } else if (std::abs(demand[o.group] - o.unit_demand) >
               1e-9 * std::max(1.0, o.unit_demand)) {
      return false;
    }
  }
  return true;
}

Backend pick_backend(const AssignmentProblem& problem) {
  const std::size_t rows = problem.group_count() + problem.resource_count();
  const std::size_t cols = problem.options.size();
  if (cols <= 2000 && rows <= 300) return Backend::kSimplex;
  if (has_uniform_group_demand(problem)) return Backend::kMinCostFlow;
  return Backend::kLagrangian;
}

}  // namespace

Assignment solve(const AssignmentProblem& problem, const SolveOptions& options) {
  problem.validate();

  Backend backend = options.backend;
  if (backend == Backend::kAuto) backend = pick_backend(problem);

  const obs::SpanTracer::Scoped span{options.obs.tracer, "solver.solve"};
  if (options.obs.metrics != nullptr) {
    options.obs.metrics
        ->counter("solver.invocations", {{"backend", std::string{to_string(backend)}}})
        .add();
    options.obs.metrics->histogram("solver.instance_options")
        .observe(static_cast<double>(problem.options.size()));
  }
  options.obs.record(obs::EventKind::kSolve, static_cast<std::uint32_t>(backend),
                     static_cast<double>(problem.options.size()));

  Assignment result;
  switch (backend) {
    case Backend::kSimplex: {
      const LpSolution lp =
          solve_lp(build_assignment_lp(problem, options.overflow_penalty));
      if (lp.status != LpStatus::kOptimal) {
        throw std::runtime_error{"solve: simplex did not reach optimality"};
      }
      result = decode_assignment_lp(problem, lp);
      break;
    }
    case Backend::kBranchAndBound: {
      BranchBoundConfig config;
      config.overflow_penalty = options.overflow_penalty;
      result = solve_branch_bound(problem, config).assignment;
      break;
    }
    case Backend::kMinCostFlow:
      result = solve_assignment_mcf(problem, options.overflow_penalty);
      break;
    case Backend::kGreedy: {
      GreedyConfig config;
      config.overflow_penalty = options.overflow_penalty;
      result = solve_greedy(problem, config);
      break;
    }
    case Backend::kLagrangian: {
      LagrangianConfig config;
      config.overflow_penalty = options.overflow_penalty;
      result = solve_lagrangian(problem, config).assignment;
      break;
    }
    case Backend::kAuto:
      throw std::logic_error{"solve: unresolved auto backend"};
  }

  if (options.integral && backend != Backend::kBranchAndBound) {
    result = evaluate(problem, round_to_integers(problem, result.amounts));
  }
  return result;
}

}  // namespace vdx::solver
