// Regret-ordered greedy assignment with local-search improvement.
//
// The paper notes "simpler greedy algorithms" are equally valid broker
// optimizers (§4.1 step 6). This backend is the scalable workhorse: groups
// are processed in descending regret (what it costs to miss your best
// option), demand is water-filled into the cheapest options with remaining
// capacity, and a shift-move local search then drains any expensive or
// overflowed placements into cheaper spare capacity.
#pragma once

#include "solver/problem.hpp"

namespace vdx::solver {

struct GreedyConfig {
  /// Price per unit of demand placed above a resource's capacity; steers the
  /// greedy away from overload without forbidding it.
  double overflow_penalty = 1e5;
  /// Local-search sweeps after construction (0 disables improvement).
  std::size_t improvement_passes = 3;
};

[[nodiscard]] Assignment solve_greedy(const AssignmentProblem& problem,
                                      const GreedyConfig& config = {});

}  // namespace vdx::solver
