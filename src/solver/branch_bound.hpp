// Exact branch-and-bound MIP on top of the simplex LP relaxation.
//
// The paper's broker solves the Figure-9 ILP with Gurobi; this backend is
// our exact equivalent for small/medium instances and the ground truth the
// heuristic backends are property-tested against. Branching is on the most
// fractional option amount; bounding uses the LP relaxation with capacity
// overflow variables so subproblems stay feasible.
#pragma once

#include <cstddef>

#include "solver/problem.hpp"

namespace vdx::solver {

struct BranchBoundConfig {
  std::size_t node_limit = 20'000;
  double overflow_penalty = 1e5;
  /// Relative optimality gap at which search stops early.
  double gap_tolerance = 1e-6;
};

struct BranchBoundResult {
  Assignment assignment;
  bool proved_optimal = false;
  std::size_t nodes_explored = 0;
  double best_bound = 0.0;  // penalized-objective lower bound
};

/// Solves for integral per-option amounts (group counts must be integers).
[[nodiscard]] BranchBoundResult solve_branch_bound(const AssignmentProblem& problem,
                                                   const BranchBoundConfig& config = {});

}  // namespace vdx::solver
