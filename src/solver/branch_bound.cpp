#include "solver/branch_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "solver/greedy.hpp"
#include "solver/lp_bridge.hpp"
#include "solver/simplex.hpp"

namespace vdx::solver {

LpProblem build_assignment_lp(const AssignmentProblem& problem, double overflow_penalty) {
  const std::size_t n = problem.options.size();
  LpProblem lp;
  lp.variable_count = n + problem.resource_count();
  lp.objective.assign(lp.variable_count, 0.0);
  for (std::size_t i = 0; i < n; ++i) lp.objective[i] = problem.options[i].unit_cost;
  for (std::size_t r = 0; r < problem.resource_count(); ++r) {
    lp.objective[n + r] = overflow_penalty;
  }

  // Group equality rows.
  std::vector<LpConstraint> group_rows(problem.group_count());
  for (std::size_t g = 0; g < problem.group_count(); ++g) {
    group_rows[g].relation = LpConstraint::Relation::kEqual;
    group_rows[g].rhs = problem.group_counts[g];
  }
  // Capacity rows: sum(demand * x) - overflow_r <= cap_r.
  std::vector<LpConstraint> capacity_rows(problem.resource_count());
  for (std::size_t r = 0; r < problem.resource_count(); ++r) {
    capacity_rows[r].relation = LpConstraint::Relation::kLessEqual;
    capacity_rows[r].rhs = problem.capacities[r];
    capacity_rows[r].terms.emplace_back(static_cast<std::uint32_t>(n + r), -1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Option& o = problem.options[i];
    group_rows[o.group].terms.emplace_back(static_cast<std::uint32_t>(i), 1.0);
    if (o.resource != kNoResource) {
      capacity_rows[o.resource].terms.emplace_back(static_cast<std::uint32_t>(i),
                                                   o.unit_demand);
    }
  }
  lp.constraints.reserve(group_rows.size() + capacity_rows.size());
  for (auto& row : group_rows) lp.constraints.push_back(std::move(row));
  for (auto& row : capacity_rows) lp.constraints.push_back(std::move(row));
  return lp;
}

Assignment decode_assignment_lp(const AssignmentProblem& problem, const LpSolution& lp) {
  std::vector<double> amounts(problem.options.size(), 0.0);
  for (std::size_t i = 0; i < amounts.size() && i < lp.x.size(); ++i) {
    amounts[i] = std::max(0.0, lp.x[i]);
  }
  return evaluate(problem, std::move(amounts));
}

namespace {

struct Bound {
  std::uint32_t variable = 0;
  double limit = 0.0;
  bool is_upper = true;  // x <= limit, else x >= limit
};

struct Node {
  std::vector<Bound> bounds;
  double parent_bound = -std::numeric_limits<double>::infinity();
};

/// Index of the most fractional option amount, or npos if integral.
std::size_t most_fractional(const std::vector<double>& x, std::size_t option_count) {
  std::size_t best = SIZE_MAX;
  double best_score = 1e-6;  // integrality tolerance
  for (std::size_t i = 0; i < option_count && i < x.size(); ++i) {
    const double frac = x[i] - std::floor(x[i]);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace

BranchBoundResult solve_branch_bound(const AssignmentProblem& problem,
                                     const BranchBoundConfig& config) {
  problem.validate();
  for (const double c : problem.group_counts) {
    if (std::abs(c - std::round(c)) > 1e-9) {
      throw std::invalid_argument{"solve_branch_bound: group counts must be integral"};
    }
  }

  BranchBoundResult result;

  // Warm incumbent: greedy + integral rounding.
  GreedyConfig greedy_config;
  greedy_config.overflow_penalty = config.overflow_penalty;
  Assignment incumbent = evaluate(
      problem,
      round_to_integers(problem, solve_greedy(problem, greedy_config).amounts));
  double incumbent_value = incumbent.penalized_objective(config.overflow_penalty);

  const LpProblem base_lp = build_assignment_lp(problem, config.overflow_penalty);

  std::vector<Node> stack{Node{}};
  double best_open_bound = -std::numeric_limits<double>::infinity();

  while (!stack.empty() && result.nodes_explored < config.node_limit) {
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    if (node.parent_bound > incumbent_value * (1.0 + config.gap_tolerance) &&
        node.parent_bound > incumbent_value + 1e-9) {
      continue;  // pruned by parent's relaxation
    }

    // Solve the node LP: base plus branching bounds.
    LpProblem lp = base_lp;
    for (const Bound& b : node.bounds) {
      LpConstraint row;
      row.terms.emplace_back(b.variable, 1.0);
      row.relation = b.is_upper ? LpConstraint::Relation::kLessEqual
                                : LpConstraint::Relation::kGreaterEqual;
      row.rhs = b.limit;
      lp.constraints.push_back(std::move(row));
    }
    const LpSolution relaxed = solve_lp(lp);
    if (relaxed.status == LpStatus::kInfeasible) continue;
    if (relaxed.status != LpStatus::kOptimal) continue;  // give up on this node

    if (relaxed.objective > incumbent_value + 1e-9 &&
        relaxed.objective > incumbent_value * (1.0 + config.gap_tolerance)) {
      continue;  // bound
    }
    best_open_bound = std::max(best_open_bound, relaxed.objective);

    const std::size_t branch_var = most_fractional(relaxed.x, problem.options.size());
    if (branch_var == SIZE_MAX) {
      // Integral: candidate incumbent.
      Assignment candidate = decode_assignment_lp(problem, relaxed);
      const double value = candidate.penalized_objective(config.overflow_penalty);
      if (value < incumbent_value) {
        incumbent = std::move(candidate);
        incumbent_value = value;
      }
      continue;
    }

    const double x_value = relaxed.x[branch_var];
    Node down = node;
    down.parent_bound = relaxed.objective;
    down.bounds.push_back(Bound{static_cast<std::uint32_t>(branch_var),
                                std::floor(x_value), true});
    Node up = node;
    up.parent_bound = relaxed.objective;
    up.bounds.push_back(Bound{static_cast<std::uint32_t>(branch_var),
                              std::ceil(x_value), false});
    // Explore the branch nearer the fractional value first.
    if (x_value - std::floor(x_value) < 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  result.proved_optimal = stack.empty();
  result.best_bound = result.proved_optimal ? incumbent_value : best_open_bound;
  result.assignment = std::move(incumbent);
  return result;
}

}  // namespace vdx::solver
