#include "solver/mincost_flow.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

namespace vdx::solver {

MinCostFlowGraph::NodeId MinCostFlowGraph::add_node() {
  head_.push_back(SIZE_MAX);
  return static_cast<NodeId>(head_.size() - 1);
}

MinCostFlowGraph::ArcRef MinCostFlowGraph::add_arc(NodeId from, NodeId to,
                                                   std::int64_t capacity, double cost) {
  if (from >= head_.size() || to >= head_.size()) {
    throw std::invalid_argument{"MinCostFlowGraph::add_arc: unknown node"};
  }
  if (capacity < 0) throw std::invalid_argument{"MinCostFlowGraph::add_arc: capacity < 0"};
  const std::size_t index = arcs_.size();
  arcs_.push_back(Arc{to, capacity, cost, head_[from]});
  head_[from] = index;
  arcs_.push_back(Arc{from, 0, -cost, head_[to]});
  head_[to] = index + 1;
  initial_capacity_.push_back(capacity);
  initial_capacity_.push_back(0);
  return ArcRef{index};
}

std::int64_t MinCostFlowGraph::flow_on(ArcRef arc) const {
  if (arc.index >= arcs_.size()) throw std::out_of_range{"flow_on: bad arc"};
  // Flow on the forward arc equals the residual capacity of its twin.
  return arcs_[arc.index ^ 1].capacity;
}

bool MinCostFlowGraph::bellman_ford_potentials(NodeId source,
                                               std::vector<double>& pot) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  pot.assign(head_.size(), kInf);
  pot[source] = 0.0;
  std::deque<NodeId> queue{source};
  std::vector<std::uint8_t> in_queue(head_.size(), 0);
  std::vector<std::uint32_t> relaxations(head_.size(), 0);
  in_queue[source] = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    in_queue[u] = 0;
    for (std::size_t e = head_[u]; e != SIZE_MAX; e = arcs_[e].next) {
      const Arc& arc = arcs_[e];
      if (arc.capacity <= 0) continue;
      const double candidate = pot[u] + arc.cost;
      if (candidate < pot[arc.to] - 1e-12) {
        pot[arc.to] = candidate;
        if (!in_queue[arc.to]) {
          if (++relaxations[arc.to] > head_.size() + 1) return false;  // negative cycle
          in_queue[arc.to] = 1;
          queue.push_back(arc.to);
        }
      }
    }
  }
  // Unreached nodes keep infinite potential; replace with 0 so reduced costs
  // stay finite (those nodes are unusable anyway).
  for (auto& p : pot) {
    if (p == kInf) p = 0.0;
  }
  return true;
}

MinCostFlowGraph::FlowResult MinCostFlowGraph::solve(NodeId source, NodeId sink,
                                                     std::int64_t target_flow) {
  if (source >= head_.size() || sink >= head_.size()) {
    throw std::invalid_argument{"MinCostFlowGraph::solve: unknown node"};
  }
  // Reset residual capacities from any prior run.
  for (std::size_t e = 0; e < arcs_.size(); ++e) arcs_[e].capacity = initial_capacity_[e];

  FlowResult result;
  if (target_flow <= 0) {
    result.reached_target = true;
    return result;
  }

  std::vector<double> pot;
  if (!bellman_ford_potentials(source, pot)) {
    throw std::runtime_error{"MinCostFlowGraph: negative cycle in costs"};
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(head_.size());
  std::vector<std::size_t> parent_arc(head_.size());
  using HeapEntry = std::pair<double, NodeId>;

  while (result.flow < target_flow) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(parent_arc.begin(), parent_arc.end(), SIZE_MAX);
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
    dist[source] = 0.0;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u] + 1e-12) continue;
      for (std::size_t e = head_[u]; e != SIZE_MAX; e = arcs_[e].next) {
        const Arc& arc = arcs_[e];
        if (arc.capacity <= 0) continue;
        const double reduced = arc.cost + pot[u] - pot[arc.to];
        const double candidate = dist[u] + std::max(0.0, reduced);
        if (candidate < dist[arc.to] - 1e-12) {
          dist[arc.to] = candidate;
          parent_arc[arc.to] = e;
          heap.emplace(candidate, arc.to);
        }
      }
    }
    if (dist[sink] == kInf) break;  // no augmenting path left

    for (std::size_t v = 0; v < head_.size(); ++v) {
      if (dist[v] < kInf) pot[v] += dist[v];
    }

    // Bottleneck along the path.
    std::int64_t push = target_flow - result.flow;
    for (NodeId v = sink; v != source;) {
      const std::size_t e = parent_arc[v];
      push = std::min(push, arcs_[e].capacity);
      v = arcs_[e ^ 1].to;
    }
    for (NodeId v = sink; v != source;) {
      const std::size_t e = parent_arc[v];
      arcs_[e].capacity -= push;
      arcs_[e ^ 1].capacity += push;
      result.cost += static_cast<double>(push) * arcs_[e].cost;
      v = arcs_[e ^ 1].to;
    }
    result.flow += push;
  }
  result.reached_target = result.flow >= target_flow;
  return result;
}

Assignment solve_assignment_mcf(const AssignmentProblem& problem, double overflow_penalty,
                                std::int64_t demand_scale) {
  problem.validate();
  if (demand_scale <= 0) throw std::invalid_argument{"demand_scale must be > 0"};

  // Per-group uniform demand requirement (transportation structure).
  std::vector<double> group_demand(problem.group_count(), -1.0);
  for (const Option& o : problem.options) {
    const double d = o.unit_demand;
    if (group_demand[o.group] < 0.0) {
      group_demand[o.group] = d;
    } else if (std::abs(group_demand[o.group] - d) > 1e-9 * std::max(1.0, d)) {
      throw std::invalid_argument{
          "solve_assignment_mcf: options of a group must share unit_demand"};
    }
  }

  MinCostFlowGraph graph;
  const auto source = graph.add_node();
  const auto sink = graph.add_node();
  std::vector<MinCostFlowGraph::NodeId> group_node(problem.group_count());
  std::vector<MinCostFlowGraph::NodeId> resource_node(problem.resource_count());
  for (auto& n : group_node) n = graph.add_node();
  for (auto& n : resource_node) n = graph.add_node();

  const auto scale_demand = [&](double demand) {
    return static_cast<std::int64_t>(
        std::llround(demand * static_cast<double>(demand_scale)));
  };

  // Source -> group arcs carry the group's total demand.
  std::int64_t total_supply = 0;
  std::vector<std::int64_t> supply(problem.group_count(), 0);
  for (std::size_t g = 0; g < problem.group_count(); ++g) {
    if (problem.group_counts[g] <= 0.0) continue;
    const double d = group_demand[g] > 0.0 ? group_demand[g] : 1.0;
    supply[g] = scale_demand(problem.group_counts[g] * d);
    if (supply[g] <= 0) supply[g] = 1;  // keep tiny groups representable
    graph.add_arc(source, group_node[g], supply[g], 0.0);
    total_supply += supply[g];
  }

  // Option arcs: group -> resource (or straight to sink when uncapacitated).
  // Cost is per demand unit.
  std::vector<MinCostFlowGraph::ArcRef> option_arc(problem.options.size());
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    const Option& o = problem.options[i];
    const double d = o.unit_demand > 0.0 ? o.unit_demand : 1.0;
    // One client corresponds to d * demand_scale flow units; spreading the
    // per-client cost over them reproduces the objective exactly.
    const double cost_per_flow_unit =
        o.unit_cost / (d * static_cast<double>(demand_scale));
    const auto to = o.resource == kNoResource ? sink : resource_node[o.resource];
    option_arc[i] =
        graph.add_arc(group_node[o.group], to, supply[o.group], cost_per_flow_unit);
  }

  // Resource -> sink: capacity arc plus an overflow arc priced at the
  // penalty (per demand unit, i.e. penalty/demand_scale per flow unit).
  for (std::size_t r = 0; r < problem.resource_count(); ++r) {
    graph.add_arc(resource_node[r], sink, scale_demand(problem.capacities[r]), 0.0);
    graph.add_arc(resource_node[r], sink, total_supply,
                  overflow_penalty / static_cast<double>(demand_scale));
  }

  graph.solve(source, sink, total_supply);

  std::vector<double> amounts(problem.options.size(), 0.0);
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    const Option& o = problem.options[i];
    const double d = o.unit_demand > 0.0 ? o.unit_demand : 1.0;
    amounts[i] = static_cast<double>(graph.flow_on(option_arc[i])) /
                 (d * static_cast<double>(demand_scale));
  }

  // Scaled-supply rounding can leave group totals a hair off the true count;
  // snap them back proportionally.
  std::vector<double> assigned(problem.group_count(), 0.0);
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    assigned[problem.options[i].group] += amounts[i];
  }
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    const std::uint32_t g = problem.options[i].group;
    if (assigned[g] > 0.0 && problem.group_counts[g] > 0.0) {
      amounts[i] *= problem.group_counts[g] / assigned[g];
    }
  }

  return evaluate(problem, std::move(amounts));
}

}  // namespace vdx::solver
