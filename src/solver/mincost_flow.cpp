#include "solver/mincost_flow.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>

namespace vdx::solver {

MinCostFlowGraph::NodeId MinCostFlowGraph::add_node() {
  head_.push_back(SIZE_MAX);
  return static_cast<NodeId>(head_.size() - 1);
}

MinCostFlowGraph::ArcRef MinCostFlowGraph::add_arc(NodeId from, NodeId to,
                                                   std::int64_t capacity, double cost) {
  if (from >= head_.size() || to >= head_.size()) {
    throw std::invalid_argument{"MinCostFlowGraph::add_arc: unknown node"};
  }
  if (capacity < 0) throw std::invalid_argument{"MinCostFlowGraph::add_arc: capacity < 0"};
  const std::size_t index = arc_to_.size();
  arc_to_.push_back(to);
  arc_cost_.push_back(cost);
  arc_next_.push_back(head_[from]);
  head_[from] = index;
  arc_to_.push_back(from);
  arc_cost_.push_back(-cost);
  arc_next_.push_back(head_[to]);
  head_[to] = index + 1;
  initial_capacity_.push_back(capacity);
  initial_capacity_.push_back(0);
  csr_arc_count_ = SIZE_MAX;  // adjacency changed; rebuild on next solve
  return ArcRef{index};
}

std::int64_t MinCostFlowGraph::flow_on(ArcRef arc) const {
  if (arc.index >= arc_to_.size()) throw std::out_of_range{"flow_on: bad arc"};
  if (csr_arc_count_ != arc_to_.size() || residual_.empty()) return 0;  // no solve yet
  // Flow on the forward arc equals the residual capacity of its twin.
  return residual_[pos_of_arc_[arc.index ^ 1]];
}

void MinCostFlowGraph::build_csr() {
  if (csr_arc_count_ == arc_to_.size()) return;
  const std::size_t nodes = head_.size();
  const std::size_t arcs = arc_to_.size();
  csr_start_.assign(nodes + 1, 0);
  csr_to_.resize(arcs);
  csr_cost_.resize(arcs);
  csr_twin_.resize(arcs);
  pos_of_arc_.resize(arcs);
  csr_cap_init_.resize(arcs);

  // Pass 1: lay arcs out per node by walking the newest-first chains, which
  // is the exact order the list-based relax loop visited them.
  std::uint32_t pos = 0;
  for (std::size_t u = 0; u < nodes; ++u) {
    csr_start_[u] = pos;
    for (std::size_t e = head_[u]; e != SIZE_MAX; e = arc_next_[e]) {
      pos_of_arc_[e] = pos++;
    }
  }
  csr_start_[nodes] = pos;

  // Pass 2: fill the permuted arrays (twin positions need pass 1 complete).
  for (std::size_t e = 0; e < arcs; ++e) {
    const std::uint32_t p = pos_of_arc_[e];
    csr_to_[p] = arc_to_[e];
    csr_cost_[p] = arc_cost_[e];
    csr_twin_[p] = pos_of_arc_[e ^ 1];
    csr_cap_init_[p] = initial_capacity_[e];
  }

  dist_.resize(nodes);
  parent_pos_.resize(nodes);
  heap_index_.resize(nodes);
  heap_.reserve(nodes);
  csr_arc_count_ = arcs;
}

bool MinCostFlowGraph::bellman_ford_potentials(NodeId source,
                                               std::vector<double>& pot) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  pot.assign(head_.size(), kInf);
  pot[source] = 0.0;
  std::deque<NodeId> queue{source};
  std::vector<std::uint8_t> in_queue(head_.size(), 0);
  std::vector<std::uint32_t> relaxations(head_.size(), 0);
  in_queue[source] = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    in_queue[u] = 0;
    const std::uint32_t begin = csr_start_[u];
    const std::uint32_t end = csr_start_[u + 1];
    for (std::uint32_t p = begin; p < end; ++p) {
      if (residual_[p] <= 0) continue;
      const double candidate = pot[u] + csr_cost_[p];
      const NodeId to = csr_to_[p];
      if (candidate < pot[to] - 1e-12) {
        pot[to] = candidate;
        if (!in_queue[to]) {
          if (++relaxations[to] > head_.size() + 1) return false;  // negative cycle
          in_queue[to] = 1;
          queue.push_back(to);
        }
      }
    }
  }
  // Unreached nodes keep infinite potential; replace with 0 so reduced costs
  // stay finite (those nodes are unusable anyway).
  for (auto& p : pot) {
    if (p == kInf) p = 0.0;
  }
  return true;
}

void MinCostFlowGraph::heap_sift_up(std::uint32_t hole) {
  while (hole > 0) {
    const std::uint32_t up = (hole - 1) / 2;
    if (!heap_less(heap_[hole], heap_[up])) break;
    std::swap(heap_[hole], heap_[up]);
    heap_index_[heap_[hole]] = hole;
    heap_index_[heap_[up]] = up;
    hole = up;
  }
}

void MinCostFlowGraph::heap_sift_down(std::uint32_t hole) {
  const auto size = static_cast<std::uint32_t>(heap_.size());
  while (true) {
    const std::uint32_t left = 2 * hole + 1;
    if (left >= size) break;
    std::uint32_t best = left;
    const std::uint32_t right = left + 1;
    if (right < size && heap_less(heap_[right], heap_[left])) best = right;
    if (!heap_less(heap_[best], heap_[hole])) break;
    std::swap(heap_[best], heap_[hole]);
    heap_index_[heap_[hole]] = hole;
    heap_index_[heap_[best]] = best;
    hole = best;
  }
}

void MinCostFlowGraph::heap_push_or_decrease(NodeId node) {
  const std::uint32_t slot = heap_index_[node];
  if (slot == kNoPos) {
    heap_.push_back(node);
    heap_index_[node] = static_cast<std::uint32_t>(heap_.size() - 1);
    heap_sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
  } else {
    heap_sift_up(slot);  // dist only ever decreases
  }
}

MinCostFlowGraph::NodeId MinCostFlowGraph::heap_pop_min() {
  const NodeId top = heap_[0];
  heap_index_[top] = kNoPos;
  const NodeId last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_index_[last] = 0;
    heap_sift_down(0);
  }
  return top;
}

MinCostFlowGraph::FlowResult MinCostFlowGraph::solve(NodeId source, NodeId sink,
                                                     std::int64_t target_flow) {
  if (source >= head_.size() || sink >= head_.size()) {
    throw std::invalid_argument{"MinCostFlowGraph::solve: unknown node"};
  }
  build_csr();
  // Reset residual capacities from any prior run.
  residual_ = csr_cap_init_;

  FlowResult result;
  if (target_flow <= 0) {
    result.reached_target = true;
    return result;
  }

  std::vector<double> pot;
  if (!bellman_ford_potentials(source, pot)) {
    throw std::runtime_error{"MinCostFlowGraph: negative cycle in costs"};
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t nodes = head_.size();

  while (result.flow < target_flow) {
    // Dijkstra on reduced costs. Each reached node pops exactly once, in
    // increasing (dist, node) order — the same effective sequence the lazy
    // heap produced — and scans its CSR block once.
    std::fill(dist_.begin(), dist_.end(), kInf);
    std::fill(parent_pos_.begin(), parent_pos_.end(), kNoPos);
    std::fill(heap_index_.begin(), heap_index_.end(), kNoPos);
    heap_.clear();
    dist_[source] = 0.0;
    heap_push_or_decrease(source);
    while (!heap_.empty()) {
      const NodeId u = heap_pop_min();
      const double du = dist_[u];
      const double pu = pot[u];
      const std::uint32_t begin = csr_start_[u];
      const std::uint32_t end = csr_start_[u + 1];
      for (std::uint32_t p = begin; p < end; ++p) {
        if (residual_[p] <= 0) continue;
        const NodeId to = csr_to_[p];
        const double reduced = csr_cost_[p] + pu - pot[to];
        const double candidate = du + std::max(0.0, reduced);
        if (candidate < dist_[to] - 1e-12) {
          dist_[to] = candidate;
          parent_pos_[to] = p;
          heap_push_or_decrease(to);
        }
      }
    }
    if (dist_[sink] == kInf) break;  // no augmenting path left

    for (std::size_t v = 0; v < nodes; ++v) {
      if (dist_[v] < kInf) pot[v] += dist_[v];
    }

    // Bottleneck along the path.
    std::int64_t push = target_flow - result.flow;
    for (NodeId v = sink; v != source;) {
      const std::uint32_t p = parent_pos_[v];
      push = std::min(push, residual_[p]);
      v = csr_to_[csr_twin_[p]];
    }
    for (NodeId v = sink; v != source;) {
      const std::uint32_t p = parent_pos_[v];
      residual_[p] -= push;
      residual_[csr_twin_[p]] += push;
      result.cost += static_cast<double>(push) * csr_cost_[p];
      v = csr_to_[csr_twin_[p]];
    }
    result.flow += push;
  }
  result.reached_target = result.flow >= target_flow;
  return result;
}

Assignment solve_assignment_mcf(const AssignmentProblem& problem, double overflow_penalty,
                                std::int64_t demand_scale) {
  problem.validate();
  if (demand_scale <= 0) throw std::invalid_argument{"demand_scale must be > 0"};

  // Per-group uniform demand requirement (transportation structure).
  std::vector<double> group_demand(problem.group_count(), -1.0);
  for (const Option& o : problem.options) {
    const double d = o.unit_demand;
    if (group_demand[o.group] < 0.0) {
      group_demand[o.group] = d;
    } else if (std::abs(group_demand[o.group] - d) > 1e-9 * std::max(1.0, d)) {
      throw std::invalid_argument{
          "solve_assignment_mcf: options of a group must share unit_demand"};
    }
  }

  MinCostFlowGraph graph;
  const auto source = graph.add_node();
  const auto sink = graph.add_node();
  std::vector<MinCostFlowGraph::NodeId> group_node(problem.group_count());
  std::vector<MinCostFlowGraph::NodeId> resource_node(problem.resource_count());
  for (auto& n : group_node) n = graph.add_node();
  for (auto& n : resource_node) n = graph.add_node();

  const auto scale_demand = [&](double demand) {
    return static_cast<std::int64_t>(
        std::llround(demand * static_cast<double>(demand_scale)));
  };

  // Source -> group arcs carry the group's total demand.
  std::int64_t total_supply = 0;
  std::vector<std::int64_t> supply(problem.group_count(), 0);
  for (std::size_t g = 0; g < problem.group_count(); ++g) {
    if (problem.group_counts[g] <= 0.0) continue;
    const double d = group_demand[g] > 0.0 ? group_demand[g] : 1.0;
    supply[g] = scale_demand(problem.group_counts[g] * d);
    if (supply[g] <= 0) supply[g] = 1;  // keep tiny groups representable
    graph.add_arc(source, group_node[g], supply[g], 0.0);
    total_supply += supply[g];
  }

  // Option arcs: group -> resource (or straight to sink when uncapacitated).
  // Cost is per demand unit.
  std::vector<MinCostFlowGraph::ArcRef> option_arc(problem.options.size());
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    const Option& o = problem.options[i];
    const double d = o.unit_demand > 0.0 ? o.unit_demand : 1.0;
    // One client corresponds to d * demand_scale flow units; spreading the
    // per-client cost over them reproduces the objective exactly.
    const double cost_per_flow_unit =
        o.unit_cost / (d * static_cast<double>(demand_scale));
    const auto to = o.resource == kNoResource ? sink : resource_node[o.resource];
    option_arc[i] =
        graph.add_arc(group_node[o.group], to, supply[o.group], cost_per_flow_unit);
  }

  // Resource -> sink: capacity arc plus an overflow arc priced at the
  // penalty (per demand unit, i.e. penalty/demand_scale per flow unit).
  for (std::size_t r = 0; r < problem.resource_count(); ++r) {
    graph.add_arc(resource_node[r], sink, scale_demand(problem.capacities[r]), 0.0);
    graph.add_arc(resource_node[r], sink, total_supply,
                  overflow_penalty / static_cast<double>(demand_scale));
  }

  graph.solve(source, sink, total_supply);

  std::vector<double> amounts(problem.options.size(), 0.0);
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    const Option& o = problem.options[i];
    const double d = o.unit_demand > 0.0 ? o.unit_demand : 1.0;
    amounts[i] = static_cast<double>(graph.flow_on(option_arc[i])) /
                 (d * static_cast<double>(demand_scale));
  }

  // Scaled-supply rounding can leave group totals a hair off the true count;
  // snap them back proportionally.
  std::vector<double> assigned(problem.group_count(), 0.0);
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    assigned[problem.options[i].group] += amounts[i];
  }
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    const std::uint32_t g = problem.options[i].group;
    if (assigned[g] > 0.0 && problem.group_counts[g] > 0.0) {
      amounts[i] *= problem.group_counts[g] / assigned[g];
    }
  }

  return evaluate(problem, std::move(amounts));
}

}  // namespace vdx::solver
