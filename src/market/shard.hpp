// Sharded multi-process exchange: one marketplace, N region shards
// (DESIGN.md §14; ROADMAP "sharded multi-process exchange").
//
// Topology. The marketplace is partitioned by city across N worker shards
// (farthest-point region seeding, the federation idiom). Each worker owns
// its slice of the demand — either explicit broker groups or a live session
// ledger — plus its own journal, metrics, and per-shard CheckpointStore.
// A coordinator drives every settlement round on the shared logical clock:
//
//   collect per-shard candidate groups  ->  merge into the canonical global
//   demand vector  ->  settle globally on an internal VdxExchange  ->
//   broadcast each shard's slice of the allocation.
//
// Byte-identity by construction. The partition is lossless (groups travel
// with their global ids; the merge restores the exact original vector), and
// settlement runs on the same VdxExchange machinery a monolithic deployment
// uses — so the settlement RoundReports, placements, journal, and metrics
// exports are byte-identical to the monolith at ANY shard count. The
// differential suite under tests/shard/ pins this at N in {1, 2, 4, 7}.
//
// Chaos isolation. Shard links run through their own proto::FaultInjector
// (separate seed and link streams from the settlement transport's CDN
// chaos). The coordinator retries a corrupted/dropped exchange until an
// intact one lands (workers are idempotent per round), so link chaos costs
// retries — never settlement bytes. Faults are injected at the coordinator
// on both legs, which keeps the in-process and process backends on the
// identical fault sequence. Control-plane frames (hello, state transfer,
// checkpoints, journal export) bypass injection: chaos drills target the
// data path, and checkpoint cadence must not perturb the fault streams.
//
// Crash tolerance. Workers checkpoint into per-shard stores on command; a
// worker that dies mid-run (real SIGKILL under the process backend) is
// respawned and restored by the coordinator without losing settlement
// bytes. A killed coordinator rebuilds from its own store with
// resume_from_stores(). The embedded save_state()/restore_state() path
// additionally bundles every worker's state into one snapshot so the
// serving daemon's checkpoint/resume works unchanged at --shards N.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/parallel.hpp"
#include "market/exchange.hpp"
#include "net/shard_channel.hpp"
#include "proto/shard_wire.hpp"
#include "resilience/breaker.hpp"
#include "resilience/supervisor.hpp"
#include "state/snapshot.hpp"
#include "state/store.hpp"

namespace vdx::market {

enum class ShardBackend : std::uint8_t {
  /// Workers are in-process handlers (deterministic default; batch calls
  /// can fan out across a ThreadPool).
  kInproc = 0,
  /// Workers are fork()ed processes on socketpairs (vdxd --shard style).
  kProcess = 1,
};

[[nodiscard]] std::string_view to_string(ShardBackend backend) noexcept;
[[nodiscard]] std::optional<ShardBackend> shard_backend_from(
    std::string_view name) noexcept;

/// City -> shard partition: farthest-point seeds (market::pick_region_seeds)
/// with nearest-seed assignment, so shards are geographically coherent and
/// the partition is a pure function of (world, shard_count).
struct ShardPlan {
  std::size_t shard_count = 1;
  /// Owning shard per city id.
  std::vector<std::uint32_t> shard_of_city;
  /// Cities per shard.
  std::vector<std::size_t> city_counts;

  /// Clamps `shards` to [1, city count]. Throws std::invalid_argument on an
  /// empty world (via pick_region_seeds).
  [[nodiscard]] static ShardPlan build(const geo::World& world, std::size_t shards);

  [[nodiscard]] std::uint32_t shard_of(geo::CityId city) const {
    return shard_of_city.at(city.value());
  }
  /// Stable fingerprint of the partition; restore paths refuse state saved
  /// under a different plan.
  [[nodiscard]] std::uint64_t hash() const noexcept;
};

/// Incremental (city, bitrate)-aggregated session book. Workers keep one per
/// shard; the monolithic reference path keeps one global — and because every
/// city lives in exactly one shard, concatenating the per-shard group lists
/// in (city, bitrate) order reproduces the global ledger's groups exactly.
/// That equality is what makes the session-fed sharded exchange
/// byte-identical to a monolith fed the same deltas.
class SessionLedger {
 public:
  /// Validates the whole batch, then applies it — a rejected batch mutates
  /// nothing. Re-adding a live session with identical (city, bitrate) is a
  /// no-op and removing an unknown id is a no-op (both make retried
  /// deliveries idempotent); re-adding with different data is
  /// kInvalidArgument.
  [[nodiscard]] core::Status apply(std::span<const proto::ShardSessionAdd> adds,
                                   std::span<const std::uint32_t> removes);

  /// Active sessions aggregated into broker groups, ordered by
  /// (city, bitrate) ascending with dense ids.
  [[nodiscard]] std::vector<broker::ClientGroup> groups() const;

  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  void clear() noexcept;

  /// Serialized session set (save/restore round-trips exactly).
  [[nodiscard]] std::vector<proto::ShardSessionAdd> sessions() const;

 private:
  /// id -> (city, bitrate).
  std::map<std::uint32_t, std::pair<std::uint32_t, double>> sessions_;
  /// (city, bitrate) -> active count. Counts are exact sums of 1.0.
  std::map<std::pair<std::uint32_t, double>, double> counts_;
};

/// One worker shard: a self-contained frame server over the shard codec.
/// It is constructed knowing only its shard id — everything else (topology,
/// cluster->CDN table, checkpoint store) arrives in the kHello frame, so a
/// fork()ed process worker needs no Scenario and no shared memory.
///
/// Contract for every mutating frame: decode and validate the COMPLETE
/// payload first, then commit — a rejected frame (kError response) never
/// partially applies state. Handlers are idempotent per settlement round,
/// which is what lets the coordinator retry through link chaos.
class ShardWorker {
 public:
  explicit ShardWorker(std::uint32_t shard);

  /// Handles one decoded frame. Never throws on wire-derived input.
  [[nodiscard]] proto::ShardFrame handle(const proto::ShardFrame& request);

  /// Byte-level entry: decode -> handle -> encode. Malformed bytes come
  /// back as an encoded kError(kCorruptFrame) frame. Sets *shutdown when
  /// the request was an acknowledged kShutdown.
  [[nodiscard]] std::vector<std::uint8_t> handle_bytes(
      std::span<const std::uint8_t> bytes, bool* shutdown = nullptr);

  /// Process-backend child loop: serve frames on `fd` until EOF or
  /// kShutdown. Returns the child's exit code.
  [[nodiscard]] static int serve_fd(std::uint32_t shard, int fd);

  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }
  [[nodiscard]] bool configured() const noexcept { return configured_; }
  [[nodiscard]] std::uint64_t rounds_applied() const noexcept { return rounds_applied_; }
  [[nodiscard]] const obs::RunJournal& journal() const noexcept { return journal_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Checkpointable worker state (demand slice / session ledger, journal
  /// window, deterministic shard.* counters, round bookkeeping) in a
  /// state::Snapshot envelope. Volatile transport counters (frames seen,
  /// errors returned) are deliberately excluded: they depend on link chaos,
  /// and restored state must match the uninterrupted run's deterministic
  /// surfaces.
  [[nodiscard]] std::vector<std::uint8_t> save_state() const;
  [[nodiscard]] core::Status restore_state(std::span<const std::uint8_t> bytes);

 private:
  [[nodiscard]] proto::ShardFrame ack(const proto::ShardFrame& request,
                                      std::uint64_t value) const;
  [[nodiscard]] proto::ShardFrame fail(const proto::ShardFrame& request,
                                       core::Errc code, std::string message);

  [[nodiscard]] proto::ShardFrame on_hello(const proto::ShardFrame& request);
  [[nodiscard]] proto::ShardFrame on_set_demand(const proto::ShardFrame& request);
  [[nodiscard]] proto::ShardFrame on_session_delta(const proto::ShardFrame& request);
  [[nodiscard]] proto::ShardFrame on_collect(const proto::ShardFrame& request);
  [[nodiscard]] proto::ShardFrame on_allocation(const proto::ShardFrame& request);
  [[nodiscard]] proto::ShardFrame on_checkpoint(const proto::ShardFrame& request);
  [[nodiscard]] proto::ShardFrame on_resume_from_store(const proto::ShardFrame& request);

  void refresh_gauges();

  static constexpr std::uint64_t kNoRound = UINT64_MAX;

  std::uint32_t shard_;
  bool configured_ = false;
  proto::ShardHello context_;
  proto::ShardDemandMode mode_ = proto::ShardDemandMode::kNone;
  std::vector<proto::ShardGroup> demand_;
  SessionLedger ledger_;

  std::uint64_t rounds_applied_ = 0;
  std::uint64_t last_allocation_round_ = kNoRound;
  std::uint64_t last_collect_logged_round_ = kNoRound;

  obs::MetricsRegistry metrics_;
  obs::RunJournal journal_;
  std::optional<state::CheckpointStore> store_;

  struct Counters {
    obs::Counter frames, errors;                     // volatile (not saved)
    obs::Counter rounds, groups_announced, placements, awarded_mbps;
    obs::Gauge demand_mbps, sessions_active;
  } counters_;
};

struct ShardedConfig {
  std::size_t shards = 2;
  ShardBackend backend = ShardBackend::kInproc;
  /// Settlement-layer configuration (CDN chaos, strategies, overload policy,
  /// observer). The observer's journal/metrics see exactly what a monolith's
  /// would — coordinator bookkeeping lands in the separate shard registry.
  ExchangeConfig exchange;
  /// Chaos on the coordinator<->worker links (independent injector; its
  /// seed defaults differ from the CDN transport's so the streams never
  /// alias).
  proto::FaultProfile link_faults;
  /// Per-link retry budget before a round fails with kTimeout.
  std::size_t max_link_retries = 64;
  /// >1 enables ThreadPool fan-out for in-process batch calls on the
  /// fault-free path (0 = hardware). With link faults configured the
  /// coordinator always walks shards serially — the injector streams are
  /// ordered state.
  std::size_t collect_threads = 1;
  /// Root for per-shard stores: <dir>/coordinator plus <dir>/shard-<s>.
  /// Empty disables store-backed recovery (embedded snapshots still work).
  std::filesystem::path checkpoint_dir;
  std::size_t checkpoint_every_rounds = 0;
  std::size_t checkpoint_keep = 3;
  std::size_t worker_journal_capacity = 4096;
  /// Restart budget + deterministic backoff for worker respawns, on the
  /// settlement round clock. The default policy (unbounded, immediate) is
  /// exactly the pre-supervisor behavior.
  resilience::RestartPolicy worker_restart;
  /// Per shard-link circuit breaker (demand mode only). Disabled by default
  /// (failure_threshold 0): every existing call site keeps its fail-closed
  /// semantics. When enabled, a tripped shard is quarantined — settled from
  /// its cached slice (byte-identical: in demand mode the coordinator cache
  /// is authoritative and workers only echo it) instead of burning the link
  /// retry budget every round — until a half-open probe re-pushes its slice.
  resilience::BreakerConfig link_breaker;
};

/// The coordinator. See the file comment for the topology and invariants.
class ShardedExchange final : public ExchangeFrontend {
 public:
  ShardedExchange(const sim::Scenario& scenario, ShardedConfig config = {});
  ~ShardedExchange() override;
  ShardedExchange(const ShardedExchange&) = delete;
  ShardedExchange& operator=(const ShardedExchange&) = delete;

  /// One settlement round: collect -> merge -> settle -> broadcast. Throws
  /// std::runtime_error when the topology is unrecoverable (try_run_round
  /// surfaces the typed error instead).
  RoundReport run_round() override;
  [[nodiscard]] core::Result<RoundReport> try_run_round();
  std::vector<RoundReport> run(std::size_t rounds);

  /// Replaces the global demand: partitions `groups` by city and pushes one
  /// slice per shard. Ids must be dense (== index), as everywhere else.
  void set_active_load(std::span<const broker::ClientGroup> groups,
                       std::span<const double> background_loads) override;

  /// Session-fed mode: routes adds/removes to their owning shards' ledgers.
  /// A remove follows its same-batch add to the owning shard (adds apply
  /// before removes within one batch, the SessionLedger contract). Mutually
  /// exclusive with set_active_load on one exchange (logic_error).
  ///
  /// The per-shard sends are not atomic as a set: on failure some shards may
  /// have applied their slice. The batch stays OUTSTANDING — run_round,
  /// checkpointing, and any DIFFERENT delta fail with kNotReady until the
  /// identical batch is retried to completion (idempotent on the shards that
  /// already applied it).
  [[nodiscard]] core::Status push_session_delta(
      std::span<const proto::ShardSessionAdd> adds,
      std::span<const std::uint32_t> removes);

  void set_demand_budget(double budget_mbps) override;
  [[nodiscard]] double demand_budget() const override;
  [[nodiscard]] std::size_t rounds_completed() const override;
  [[nodiscard]] core::Result<proto::DeliveryOutcome> deliver(
      std::uint32_t session_id, geo::CityId city, double bitrate_mbps) override;
  [[nodiscard]] const obs::MetricsRegistry& metrics() const override;

  void set_failed(cdn::CdnId cdn, bool failed);
  void set_fraudulent(cdn::CdnId cdn, bool fraudulent);

  /// Embedded snapshot: coordinator core + settlement exchange + every
  /// worker's state in one envelope (the daemon checkpoint path).
  /// try_save_state returns the typed error when a worker's state is
  /// unavailable (dead and unrecoverable); save_state throws on it.
  [[nodiscard]] core::Result<std::vector<std::uint8_t>> try_save_state()
      const override;
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override;
  [[nodiscard]] core::Status restore_state(
      std::span<const std::uint8_t> bytes) override;

  /// Store-backed checkpoint: coordinator snapshot into <dir>/coordinator
  /// plus a kCheckpoint command to every worker's own store. Requires
  /// checkpoint_dir.
  [[nodiscard]] core::Status checkpoint_now();
  /// Coordinator-driven resume on a freshly built exchange: restores the
  /// coordinator from its store, then commands every worker to reload from
  /// its per-shard store and verifies the rounds line up.
  [[nodiscard]] core::Status resume_from_stores();

  /// Crash drills: hard-kills a worker (SIGKILL under the process backend).
  /// The next round detects the dead shard and recovers it automatically —
  /// from its per-shard store when one is configured, by re-pushing the
  /// cached demand slice otherwise.
  void kill_worker(std::size_t shard);
  [[nodiscard]] bool worker_alive(std::size_t shard) const noexcept;

  /// Merged view of every worker's journal window on the shared clock
  /// (obs::merge_journal_slices — seqs reassigned, strictly monotone).
  [[nodiscard]] core::Result<std::vector<obs::Event>> merged_worker_journal() const;

  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const VdxExchange& settlement() const noexcept { return *settlement_; }
  [[nodiscard]] const sim::Scenario& scenario() const noexcept { return scenario_; }
  /// Coordinator-side exchange.shard.* registry (kept separate so the
  /// settlement metrics export stays byte-identical to the monolith's).
  [[nodiscard]] const obs::MetricsRegistry& shard_metrics() const noexcept {
    return shard_metrics_;
  }
  [[nodiscard]] proto::FaultCounters link_fault_counters() const noexcept;
  [[nodiscard]] std::size_t worker_restarts() const noexcept {
    return worker_restarts_;
  }

  /// Shard links whose breaker is currently open (ExchangeFrontend hook for
  /// the daemon's brownout signals). Always 0 with the breaker disabled.
  [[nodiscard]] std::size_t open_breakers() const override;
  /// True while `shard` settles from its cached slice (breaker open, or a
  /// fresh slice push has not landed since the last failure).
  [[nodiscard]] bool shard_quarantined(std::size_t shard) const noexcept;
  /// Rounds in which at least one shard settled from its cached slice.
  [[nodiscard]] std::size_t stale_rounds() const noexcept { return stale_rounds_; }
  [[nodiscard]] const resilience::Supervisor& worker_supervisor() const noexcept {
    return supervisor_;
  }

 private:
  using FrameResult = core::Result<proto::ShardFrame>;

  [[nodiscard]] proto::ShardHello hello_for(std::size_t shard) const;
  [[nodiscard]] core::Status send_hello(std::size_t shard) const;

  /// Control-plane exchange: no fault injection; transparently respawns a
  /// dead worker (when recover is true) before failing.
  [[nodiscard]] FrameResult direct_call(std::size_t shard,
                                        const proto::ShardFrame& request,
                                        bool recover) const;
  /// Data-plane exchange: both legs through the link injector, retried
  /// until an intact response lands or the retry budget dies.
  [[nodiscard]] FrameResult chaotic_call(std::size_t shard,
                                         const proto::ShardFrame& request) const;
  [[nodiscard]] FrameResult data_call(std::size_t shard,
                                      const proto::ShardFrame& request) const;
  /// Fault-free batch fan-out (transport broadcast); chaos falls back to
  /// ordered serial chaotic_call.
  [[nodiscard]] core::Result<std::vector<proto::ShardFrame>> data_broadcast(
      const std::vector<proto::ShardFrame>& requests) const;

  /// Respawn + restore; on failure the worker is re-killed so it cannot
  /// linger half-initialized and absorb later deltas into an empty ledger.
  /// The supervisor can deny the respawn outright (budget spent / backoff
  /// running), which also fails typed (kUnavailable).
  [[nodiscard]] core::Status recover_worker(std::size_t shard) const;
  [[nodiscard]] core::Status try_recover_worker(std::size_t shard) const;

  [[nodiscard]] bool breaker_active() const noexcept {
    return !link_breakers_.empty() && mode_ == proto::ShardDemandMode::kDemand;
  }
  /// Observer for resilience bookkeeping: shard-side registry (never the
  /// settlement metrics, whose export must stay byte-identical to the
  /// monolith's) plus the settlement journal/tracer for typed transitions.
  [[nodiscard]] obs::Observer resilience_obs() const noexcept;
  /// Partitions a dense global demand vector into per-shard ShardGroup
  /// slices (index = global id). Throws std::invalid_argument on non-dense
  /// ids or unknown cities.
  [[nodiscard]] std::vector<std::vector<proto::ShardGroup>> slice_demand(
      std::span<const broker::ClientGroup> groups) const;
  /// Sends each shard its slice as kSetDemand and expects acks. With the
  /// link breaker enabled a quarantined/failed shard is flagged for resync
  /// instead of failing the push.
  [[nodiscard]] core::Status push_demand_slices() const;
  [[nodiscard]] core::Status push_slice_to(std::size_t shard) const;
  /// Half-open probes: re-push the current slice to flagged shards whose
  /// breaker admits traffic again.
  void resync_quarantined(std::uint64_t round) const;
  [[nodiscard]] core::Status ensure_fed();
  [[nodiscard]] core::Result<std::vector<broker::ClientGroup>> collect_and_merge(
      std::uint64_t round);
  /// One live collect round-trip to `shard`, fully validated (demand mode).
  [[nodiscard]] core::Result<std::vector<proto::ShardGroup>> collect_live(
      std::size_t shard, const proto::ShardFrame& request,
      std::uint64_t round) const;
  /// Demand-mode merge: sorts by global id and checks the dense bijection.
  [[nodiscard]] core::Result<std::vector<broker::ClientGroup>> merge_demand_groups(
      std::vector<proto::ShardGroup> all) const;
  /// Slices the settlement's placements by owning shard and broadcasts
  /// kAllocation (every shard gets a frame — empty slices close the round).
  [[nodiscard]] core::Status broadcast_allocation(std::uint64_t round);

  struct CoordinatorCore;
  /// Canonical fingerprint of one (adds, removes) batch — pins the verbatim
  /// retry of a delta that failed mid-push.
  [[nodiscard]] static std::uint64_t delta_hash(
      std::span<const proto::ShardSessionAdd> adds,
      std::span<const std::uint32_t> removes);
  [[nodiscard]] std::vector<std::uint8_t> encode_coordinator_core() const;
  [[nodiscard]] std::vector<std::uint8_t> encode_slices() const;
  [[nodiscard]] core::Status restore_from_snapshot(const state::SnapshotView& view,
                                                   bool embedded_workers);

  const sim::Scenario& scenario_;
  ShardedConfig config_;
  ShardPlan plan_;
  std::unique_ptr<VdxExchange> settlement_;
  /// Declared before transport_: the in-process transport borrows the pool.
  std::unique_ptr<core::ThreadPool> pool_;
  std::unique_ptr<net::ShardTransport> transport_;
  /// Null when link_faults has no fault (perfect links).
  std::unique_ptr<proto::FaultInjector> link_injector_;

  std::vector<double> background_loads_;
  proto::ShardDemandMode mode_ = proto::ShardDemandMode::kNone;
  bool fed_ = false;
  /// The coordinator's demand changed since it was last pushed into the
  /// settlement exchange. Crucial for byte-identity under admission control:
  /// the monolith's post-shed demand PERSISTS in the broker agent between
  /// rounds, so re-pushing an unchanged merged demand every round would
  /// reset that and diverge — the settlement only sees demand on change.
  bool demand_dirty_ = false;
  /// Last pushed demand slice per shard (storeless worker recovery, and the
  /// coordinator checkpoint payload).
  std::vector<std::vector<proto::ShardGroup>> last_slices_;
  /// Session-mode routing: id -> owning shard.
  std::unordered_map<std::uint32_t, std::uint32_t> session_shard_;
  /// A push_session_delta failed mid-broadcast: some shards applied their
  /// slice, routing was not committed. Settlement and checkpoints refuse to
  /// run, and only a verbatim retry (pinned by the batch hash) may follow.
  bool delta_pending_ = false;
  std::uint64_t pending_delta_hash_ = 0;

  std::optional<state::CheckpointStore> coordinator_store_;
  std::vector<std::filesystem::path> worker_store_dirs_;

  /// Gates worker respawns (restart budget + deterministic backoff on the
  /// settlement round clock).
  mutable resilience::Supervisor supervisor_;
  /// One breaker per shard link; empty when the breaker is disabled.
  mutable std::vector<resilience::CircuitBreaker> link_breakers_;
  /// Shard must accept a fresh slice push before its live collect output is
  /// trusted again (set when a push was skipped or failed under the
  /// breaker; cleared by the next successful push).
  mutable std::vector<char> needs_resync_;
  mutable std::size_t stale_rounds_ = 0;

  mutable std::size_t worker_restarts_ = 0;
  mutable obs::MetricsRegistry shard_metrics_;
  struct Counters {
    obs::Counter rounds, frames, retries, rejects, restarts, checkpoints;
    obs::Counter stale_collects, skipped_pushes;
    obs::Gauge shards, merged_groups;
  };
  mutable Counters counters_;
};

}  // namespace vdx::market
