#include "market/exchange.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "cdn/menu_cache.hpp"
#include "proto/wire.hpp"
#include "sim/designs.hpp"
#include "sim/metrics.hpp"
#include "state/snapshot.hpp"

namespace vdx::market {

core::Result<AdmissionReport> shed_to_budget(std::vector<broker::ClientGroup>& groups,
                                             double budget_mbps) {
  if (!std::isfinite(budget_mbps) || budget_mbps < 0.0) {
    return core::Result<AdmissionReport>::failure(
        core::Errc::kInvalidArgument,
        "shed_to_budget: budget must be finite and >= 0");
  }
  AdmissionReport report;
  double total = 0.0;
  for (const broker::ClientGroup& g : groups) total += g.client_count * g.bitrate_mbps;
  if (total <= budget_mbps) return report;

  // Victim order: lowest value first — ascending bitrate, then group id.
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&groups](std::size_t a, std::size_t b) {
    if (groups[a].bitrate_mbps != groups[b].bitrate_mbps) {
      return groups[a].bitrate_mbps < groups[b].bitrate_mbps;
    }
    return groups[a].id.value() < groups[b].id.value();
  });

  double excess = total - budget_mbps;
  for (const std::size_t idx : order) {
    if (excess <= 0.0) break;
    broker::ClientGroup& g = groups[idx];
    const double demand = g.client_count * g.bitrate_mbps;
    if (demand <= 0.0) continue;
    if (demand <= excess) {
      report.shed_mbps += demand;
      report.shed_clients += g.client_count;
      excess -= demand;
      g.client_count = 0.0;
    } else {
      const double clients = excess / g.bitrate_mbps;
      report.shed_mbps += excess;
      report.shed_clients += clients;
      g.client_count -= clients;
      excess = 0.0;
    }
  }

  const std::size_t before = groups.size();
  std::erase_if(groups,
                [](const broker::ClientGroup& g) { return g.client_count <= 0.0; });
  report.groups_dropped = before - groups.size();
  for (std::size_t i = 0; i < groups.size(); ++i) {
    groups[i].id = broker::ShareId{static_cast<std::uint32_t>(i)};
  }
  return report;
}

VdxExchange::VdxExchange(const sim::Scenario& scenario, ExchangeConfig config)
    : scenario_(scenario), config_(config) {
  // The exchange always has a live registry so RoundReport telemetry can be
  // read back from counters; tracer/journal stay opt-in (null = no-op).
  obs_ = config_.obs;
  if (obs_.metrics == nullptr) obs_.metrics = &owned_metrics_;
  counters_.rounds = obs_.metrics->counter("exchange.rounds");
  counters_.messages = obs_.metrics->counter("exchange.messages");
  counters_.timeouts = obs_.metrics->counter("exchange.timeouts");
  counters_.retries = obs_.metrics->counter("exchange.retries");
  counters_.bids = obs_.metrics->counter("exchange.bids");
  counters_.stale_bids = obs_.metrics->counter("exchange.stale_bids");
  counters_.degraded_rounds = obs_.metrics->counter("exchange.degraded_rounds");
  counters_.quorum_misses = obs_.metrics->counter("exchange.quorum_misses");
  counters_.awarded_mbps = obs_.metrics->counter("exchange.awarded_mbps");
  counters_.stale_awarded_mbps = obs_.metrics->counter("exchange.stale_awarded_mbps");
  counters_.failovers = obs_.metrics->counter("exchange.failovers");
  counters_.shed_mbps = obs_.metrics->counter("exchange.shed.mbps");
  counters_.shed_clients = obs_.metrics->counter("exchange.shed.clients");
  counters_.shed_rounds = obs_.metrics->counter("exchange.shed.rounds");
  counters_.peering_rehomed = obs_.metrics->counter("exchange.peering.rehomed");
  counters_.peering_rejected = obs_.metrics->counter("exchange.peering.rejected");
  counters_.mean_score = obs_.metrics->gauge("exchange.mean_score");
  counters_.mean_cost = obs_.metrics->gauge("exchange.mean_cost");
  counters_.prediction_error = obs_.metrics->gauge("exchange.prediction_error");

  background_loads_ = sim::place_background(scenario_);
  {
    cdn::MatchingConfig matching;
    matching.max_candidates = config_.agent.bid_count;
    matching.score_tolerance = config_.agent.menu_tolerance;
    menu_cache_ = std::make_unique<cdn::CandidateMenuCache>(
        scenario_.catalog(), scenario_.mapping(), scenario_.world().cities().size(),
        matching);
    config_.agent.menus = menu_cache_.get();
  }
  if (config_.chaos.faults.any()) {
    injector_ = std::make_unique<proto::FaultInjector>(config_.chaos.faults);
    // A lossy transport needs the degraded-round fallback to stay useful.
    config_.broker.enable_stale_bids = true;
  }
  config_.broker.obs = obs_;
  broker_agent_ = std::make_unique<VdxBrokerAgent>(scenario_, config_.broker);
  for (const cdn::Cdn& cdn : scenario_.catalog().cdns()) {
    std::unique_ptr<cdn::BiddingStrategy> strategy =
        config_.strategy == StrategyKind::kStatic
            ? cdn::make_static_strategy(cdn.markup)
            : cdn::make_risk_averse_strategy();
    cdn_agents_.push_back(std::make_unique<VdxCdnAgent>(
        scenario_, cdn.id, *strategy, background_loads_, config_.agent));
    strategies_.push_back(std::move(strategy));
  }
}

VdxExchange::~VdxExchange() = default;

RoundReport VdxExchange::run_round() {
  RoundReport report;
  report.round = rounds_completed_;

  if (obs_.journal != nullptr) {
    obs_.journal->begin_round(rounds_completed_);
    obs_.record(obs::EventKind::kRoundStart, obs::RunJournal::kNoSubject,
                static_cast<double>(rounds_completed_));
  }
  // Admission control: trim the Gathered demand to the budget before the
  // decision round ever prices it (overload-graceful degradation, §11).
  if (config_.overload.demand_budget_mbps > 0.0) {
    const auto demand = broker_agent_->demand();
    std::vector<broker::ClientGroup> admitted{demand.begin(), demand.end()};
    auto admission = shed_to_budget(admitted, config_.overload.demand_budget_mbps);
    if (admission.ok() && admission.value().shed_mbps > 0.0) {
      const AdmissionReport& shed = admission.value();
      broker_agent_->set_demand(std::move(admitted));
      report.shed_mbps = shed.shed_mbps;
      report.shed_clients = shed.shed_clients;
      report.shed_groups = shed.groups_dropped;
      counters_.shed_mbps.add(shed.shed_mbps);
      counters_.shed_clients.add(shed.shed_clients);
      counters_.shed_rounds.add();
      obs_.record(obs::EventKind::kShed, obs::RunJournal::kNoSubject, shed.shed_mbps);
    }
  }

  // Counter deltas over this round back the report's fault telemetry, so the
  // registry and the report cannot disagree.
  const double messages_before = counters_.messages.value();
  const double timeouts_before = counters_.timeouts.value();
  const double stale_before = counters_.stale_bids.value();

  std::vector<proto::CdnParticipant*> participants;
  participants.reserve(cdn_agents_.size());
  for (const auto& agent : cdn_agents_) participants.push_back(agent.get());

  proto::DecisionEngineConfig engine;
  engine.faults = injector_.get();
  engine.deadlines = config_.chaos.deadlines;
  engine.obs = obs_;
  report.wire = proto::run_decision_round(*broker_agent_, participants, engine);

  counters_.rounds.add();
  counters_.messages.add(static_cast<double>(report.wire.chaos.messages));
  counters_.timeouts.add(static_cast<double>(report.wire.chaos.timeouts));
  counters_.retries.add(static_cast<double>(report.wire.chaos.retries));
  counters_.bids.add(static_cast<double>(report.wire.bids_received));
  counters_.stale_bids.add(
      static_cast<double>(broker_agent_->stale_bids_substituted()));
  counters_.awarded_mbps.add(broker_agent_->total_awarded_mbps());
  counters_.stale_awarded_mbps.add(broker_agent_->stale_awarded_mbps());

  // Fault telemetry + degraded-round accounting, read back from the deltas.
  std::size_t live_cdns = 0;
  for (const auto& agent : cdn_agents_) {
    if (!agent->failed()) ++live_cdns;
  }
  const double quorum_floor =
      config_.chaos.quorum_fraction * static_cast<double>(live_cdns);
  report.quorum_met = static_cast<double>(broker_agent_->fresh_cdn_count()) + 1e-9 >=
                      quorum_floor;
  const double messages_delta = counters_.messages.value() - messages_before;
  const double timeouts_delta = counters_.timeouts.value() - timeouts_before;
  report.stale_bids_used =
      static_cast<std::size_t>(counters_.stale_bids.value() - stale_before + 0.5);
  report.stale_bid_share =
      broker_agent_->total_awarded_mbps() > 0.0
          ? broker_agent_->stale_awarded_mbps() / broker_agent_->total_awarded_mbps()
          : 0.0;
  report.timeout_rate = messages_delta > 0.0 ? timeouts_delta / messages_delta : 0.0;
  report.degraded = timeouts_delta > 0.0 || report.stale_bids_used > 0 ||
                    !report.quorum_met;
  if (!report.quorum_met) {
    counters_.quorum_misses.add();
    obs_.record(obs::EventKind::kQuorumMiss,
                static_cast<std::uint32_t>(broker_agent_->fresh_cdn_count()),
                quorum_floor);
  }
  if (report.stale_bids_used > 0) {
    obs_.record(obs::EventKind::kStaleBid, obs::RunJournal::kNoSubject,
                static_cast<double>(report.stale_bids_used));
  }
  if (report.degraded) {
    counters_.degraded_rounds.add();
    obs_.record(obs::EventKind::kDegradedRound, obs::RunJournal::kNoSubject,
                report.timeout_rate);
  }

  // Metrics from the broker's placements.
  const auto placements = broker_agent_->placements();
  const auto groups = broker_agent_->demand();
  last_cluster_loads_ = background_loads_;
  double clients = 0.0;
  double score_sum = 0.0;
  double cost_sum = 0.0;
  for (const sim::Placement& p : placements) {
    const broker::ClientGroup& group = groups[p.group];
    clients += p.clients;
    score_sum += p.clients * p.score;
    cost_sum += p.clients * scenario_.catalog().cluster(p.cluster).unit_cost() *
                group.bitrate_mbps;
    last_cluster_loads_[p.cluster.value()] += p.clients * group.bitrate_mbps;
  }
  if (clients > 0.0) {
    report.mean_score = score_sum / clients;
    report.mean_cost = cost_sum / clients;
  }

  double congested_clients = 0.0;
  for (const sim::Placement& p : placements) {
    const cdn::Cluster& cluster = scenario_.catalog().cluster(p.cluster);
    if (cluster.capacity > 0.0 &&
        last_cluster_loads_[p.cluster.value()] > cluster.capacity * 1.001 + 1e-6) {
      congested_clients += p.clients;
    }
  }
  if (clients > 0.0) report.congested_fraction = congested_clients / clients;

  // Predictability. The award ledger is the broker's under chaos (the
  // agents' own Accept-derived view undercounts when Accepts are lost);
  // both sides agree exactly on a perfect transport.
  const auto broker_awarded = broker_agent_->awarded_by_cdn();
  report.awarded_mbps.resize(cdn_agents_.size(), 0.0);
  double error_sum = 0.0;
  std::size_t bidders = 0;
  for (std::size_t i = 0; i < cdn_agents_.size(); ++i) {
    const VdxCdnAgent& agent = *cdn_agents_[i];
    report.awarded_mbps[i] =
        injector_ && i < broker_awarded.size() ? broker_awarded[i] : agent.awarded_mbps();
    if (agent.bid_mbps() > 0.0) {
      error_sum += std::abs(agent.expected_win_mbps() - agent.awarded_mbps()) /
                   std::max(1.0, agent.bid_mbps());
      ++bidders;
    }
  }
  report.mean_prediction_error =
      bidders > 0 ? error_sum / static_cast<double>(bidders) : 0.0;

  counters_.mean_score.set(report.mean_score);
  counters_.mean_cost.set(report.mean_cost);
  counters_.prediction_error.set(report.mean_prediction_error);
  if (obs_.journal != nullptr) {
    for (std::size_t i = 0; i < report.awarded_mbps.size(); ++i) {
      if (report.awarded_mbps[i] > 0.0) {
        obs_.record(obs::EventKind::kBid, static_cast<std::uint32_t>(i),
                    report.awarded_mbps[i]);
      }
    }
    obs_.record(obs::EventKind::kRoundEnd, obs::RunJournal::kNoSubject, report.mean_score);
  }

  ++rounds_completed_;
  return report;
}

std::vector<RoundReport> VdxExchange::run(std::size_t rounds) {
  std::vector<RoundReport> reports;
  reports.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) reports.push_back(run_round());
  return reports;
}

void VdxExchange::set_failed(cdn::CdnId cdn, bool failed) {
  if (!cdn.valid() || cdn.value() >= cdn_agents_.size()) {
    throw std::out_of_range{"VdxExchange::set_failed: unknown CDN"};
  }
  cdn_agents_[cdn.value()]->set_failed(failed);
}

void VdxExchange::set_fraudulent(cdn::CdnId cdn, bool fraudulent) {
  if (!cdn.valid() || cdn.value() >= cdn_agents_.size()) {
    throw std::out_of_range{"VdxExchange::set_fraudulent: unknown CDN"};
  }
  cdn_agents_[cdn.value()]->set_fraudulent(fraudulent);
}

void VdxExchange::set_active_load(std::span<const broker::ClientGroup> groups,
                                  std::span<const double> background_loads) {
  if (background_loads.size() != scenario_.catalog().clusters().size()) {
    throw std::invalid_argument{"VdxExchange::set_active_load: loads arity mismatch"};
  }
  broker_agent_->set_demand({groups.begin(), groups.end()});
  background_loads_.assign(background_loads.begin(), background_loads.end());
  for (const auto& agent : cdn_agents_) {
    agent->set_background_loads(background_loads_);
  }
}

void VdxExchange::set_demand_budget(double budget_mbps) {
  if (!std::isfinite(budget_mbps) || budget_mbps < 0.0) {
    throw std::invalid_argument{
        "VdxExchange::set_demand_budget: budget must be finite and >= 0"};
  }
  config_.overload.demand_budget_mbps = budget_mbps;
}

const broker::ReputationSystem& VdxExchange::reputation() const {
  return broker_agent_->reputation();
}

core::Result<proto::DeliveryOutcome> VdxExchange::deliver(std::uint32_t session_id,
                                                          geo::CityId city,
                                                          double bitrate_mbps) {
  if (rounds_completed_ == 0) {
    return core::Result<proto::DeliveryOutcome>::failure(
        core::Errc::kNotReady, "VdxExchange::deliver: run a decision round first");
  }
  ClusterService frontend{scenario_, last_cluster_loads_};
  frontend.register_session(session_id, bitrate_mbps);
  // Clusters of failed CDNs are dark mid-stream: the frontend refuses them,
  // which drives the Delivery-Protocol failover in run_delivery(). With QoS
  // peering on, saturated clusters (load past threshold x capacity, or no
  // capacity at all — e.g. blacked out) are dark too, so sessions re-home to
  // healthy clusters instead of piling onto overloaded ones.
  const bool peering = config_.overload.saturation_threshold > 0.0;
  const auto clusters = scenario_.catalog().clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const std::uint32_t cdn = clusters[c].cdn.value();
    if (cdn < cdn_agents_.size() && cdn_agents_[cdn]->failed()) {
      frontend.set_dark(cdn::ClusterId{static_cast<std::uint32_t>(c)});
      continue;
    }
    if (peering && (clusters[c].capacity <= 0.0 ||
                    (c < last_cluster_loads_.size() &&
                     last_cluster_loads_[c] > config_.overload.saturation_threshold *
                                                  clusters[c].capacity))) {
      frontend.set_dark(cdn::ClusterId{static_cast<std::uint32_t>(c)});
    }
  }
  proto::QueryMessage query;
  query.session_id = session_id;
  query.location = city.value();
  query.bitrate_mbps = bitrate_mbps;
  proto::DeliveryOutcome outcome =
      proto::run_delivery(query, *broker_agent_, frontend, obs_);
  if (outcome.rehomed) {
    counters_.failovers.add();
    if (peering) counters_.peering_rehomed.add();
  }
  if (peering && outcome.delivery.delivered_mbps <= 0.0) {
    counters_.peering_rejected.add();
    return core::Result<proto::DeliveryOutcome>::failure(
        core::Errc::kOverloaded,
        "VdxExchange::deliver: no healthy cluster can take this session");
  }
  return outcome;
}

const proto::FaultCounters& VdxExchange::fault_counters() const {
  static const proto::FaultCounters kNone{};
  return injector_ ? injector_->counters() : kNone;
}

namespace {

// Exchange snapshot section ids (distinct from the timeline checkpoint's
// 1-6 range so a file of the wrong kind fails loudly on a missing section).
constexpr std::uint32_t kSectionExchangeCore = 10;
constexpr std::uint32_t kSectionBroker = 11;
constexpr std::uint32_t kSectionStrategies = 12;
constexpr std::uint32_t kSectionCdnAgents = 13;
constexpr std::uint32_t kSectionInjector = 14;

core::Status invalid(std::string message) {
  return core::Status::failure(core::Errc::kInvalidArgument, std::move(message));
}

core::Status corrupt(std::string message) {
  return core::Status::failure(core::Errc::kCorruptSnapshot, std::move(message));
}

void write_f64_vector(proto::ByteWriter& out, std::span<const double> values) {
  out.write_u64(values.size());
  for (const double value : values) out.write_f64(value);
}

std::vector<double> read_f64_vector(proto::ByteReader& in) {
  const std::uint64_t count = in.read_u64();
  if (count * 8 > in.remaining()) {
    throw std::invalid_argument{"f64 vector count overruns the section"};
  }
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(in.read_f64());
  return values;
}

void write_bid(proto::ByteWriter& out, const proto::BidMessage& bid) {
  out.write_u32(bid.cluster_id);
  out.write_u32(bid.share_id);
  out.write_f64(bid.performance_estimate);
  out.write_f64(bid.capacity_mbps);
  out.write_f64(bid.price);
  out.write_u32(bid.cdn_id);
}

proto::BidMessage read_bid(proto::ByteReader& in) {
  proto::BidMessage bid;
  bid.cluster_id = in.read_u32();
  bid.share_id = in.read_u32();
  bid.performance_estimate = in.read_f64();
  bid.capacity_mbps = in.read_f64();
  bid.price = in.read_f64();
  bid.cdn_id = in.read_u32();
  return bid;
}

}  // namespace

std::vector<std::uint8_t> VdxExchange::save_state() const {
  state::SnapshotWriter writer;
  {
    proto::ByteWriter out;
    out.write_u64(rounds_completed_);
    out.write_u64(obs_.tracer != nullptr ? obs_.tracer->logical_now() : 0);
    write_f64_vector(out, background_loads_);
    write_f64_vector(out, last_cluster_loads_);
    writer.add_section(kSectionExchangeCore, out.take());
  }
  {
    const VdxBrokerAgent::Saved broker = broker_agent_->save_state();
    proto::ByteWriter out;
    out.write_u64(broker.reputation.size());
    for (const broker::ReputationSystem::State& state : broker.reputation) {
      out.write_f64(state.error);
      out.write_u64(state.strikes);
      out.write_u8(state.blacklisted ? 1 : 0);
    }
    out.write_u64(broker.optimize_round);
    out.write_u8(broker.has_demand_override ? 1 : 0);
    out.write_u64(broker.demand.size());
    for (const broker::ClientGroup& group : broker.demand) {
      out.write_u32(group.id.value());
      out.write_u32(group.city.value());
      out.write_u32(group.isp);
      out.write_f64(group.bitrate_mbps);
      out.write_f64(group.client_count);
    }
    out.write_u64(broker.stale_bids.size());
    for (const VdxBrokerAgent::SavedStale& stale : broker.stale_bids) {
      out.write_u32(stale.cdn);
      out.write_u32(stale.share);
      out.write_u32(stale.cluster);
      write_bid(out, stale.bid);
      out.write_u64(stale.round);
    }
    writer.add_section(kSectionBroker, out.take());
  }
  {
    proto::ByteWriter out;
    out.write_u64(strategies_.size());
    for (const auto& strategy : strategies_) {
      const std::vector<cdn::BiddingStrategy::SavedEntry> entries =
          strategy->save_state();
      out.write_u64(entries.size());
      for (const cdn::BiddingStrategy::SavedEntry& entry : entries) {
        out.write_u64(entry.key);
        out.write_f64(entry.win_rate);
        out.write_f64(entry.price_multiplier);
      }
    }
    writer.add_section(kSectionStrategies, out.take());
  }
  {
    proto::ByteWriter out;
    out.write_u64(cdn_agents_.size());
    for (const auto& agent : cdn_agents_) {
      const VdxCdnAgent::Saved saved = agent->save_state();
      out.write_u8(saved.failed ? 1 : 0);
      out.write_u8(saved.fraudulent ? 1 : 0);
      out.write_f64(saved.expected_mbps);
      out.write_f64(saved.awarded_mbps);
      out.write_f64(saved.bid_mbps);
    }
    writer.add_section(kSectionCdnAgents, out.take());
  }
  {
    proto::ByteWriter out;
    out.write_u8(injector_ != nullptr ? 1 : 0);
    if (injector_ != nullptr) {
      const proto::FaultInjector::Saved saved = injector_->save();
      out.write_u64(saved.links.size());
      for (const proto::FaultInjector::Saved::Link& link : saved.links) {
        for (const std::uint64_t word : link.rng.state) out.write_u64(word);
        out.write_f64(link.rng.spare_normal);
        out.write_u8(link.rng.has_spare ? 1 : 0);
        out.write_u8(link.burst ? 1 : 0);
        out.write_u8(link.initialized ? 1 : 0);
      }
      out.write_u64(saved.counters.frames);
      out.write_u64(saved.counters.delivered);
      out.write_u64(saved.counters.dropped);
      out.write_u64(saved.counters.duplicated);
      out.write_u64(saved.counters.delayed);
      out.write_u64(saved.counters.truncated);
      out.write_u64(saved.counters.corrupted);
    }
    writer.add_section(kSectionInjector, out.take());
  }
  return writer.finish();
}

core::Status VdxExchange::restore_state(std::span<const std::uint8_t> bytes) {
  auto parsed = state::SnapshotView::parse(bytes);
  if (!parsed.ok()) return core::Status{parsed.error()};
  const state::SnapshotView view = std::move(parsed).value();

  const auto section = [&view](std::uint32_t id) -> const state::Section* {
    return view.find(id);
  };
  const state::Section* core_section = section(kSectionExchangeCore);
  const state::Section* broker_section = section(kSectionBroker);
  const state::Section* strategy_section = section(kSectionStrategies);
  const state::Section* agent_section = section(kSectionCdnAgents);
  const state::Section* injector_section = section(kSectionInjector);
  if (core_section == nullptr || broker_section == nullptr ||
      strategy_section == nullptr || agent_section == nullptr ||
      injector_section == nullptr) {
    return corrupt("exchange snapshot is missing a required section");
  }

  // Decode everything into locals first: restore_state either applies the
  // whole snapshot or leaves the exchange untouched.
  std::uint64_t rounds = 0;
  std::uint64_t logical = 0;
  std::vector<double> background_loads;
  std::vector<double> cluster_loads;
  VdxBrokerAgent::Saved broker;
  std::vector<std::vector<cdn::BiddingStrategy::SavedEntry>> strategy_entries;
  std::vector<VdxCdnAgent::Saved> agent_saved;
  bool has_injector = false;
  proto::FaultInjector::Saved injector_saved;
  try {
    {
      proto::ByteReader in{core_section->bytes};
      rounds = in.read_u64();
      logical = in.read_u64();
      background_loads = read_f64_vector(in);
      cluster_loads = read_f64_vector(in);
    }
    {
      proto::ByteReader in{broker_section->bytes};
      const std::uint64_t reputation_count = in.read_u64();
      if (reputation_count * 17 > in.remaining()) {
        return corrupt("reputation row count overruns the section");
      }
      broker.reputation.reserve(static_cast<std::size_t>(reputation_count));
      for (std::uint64_t i = 0; i < reputation_count; ++i) {
        broker::ReputationSystem::State state;
        state.error = in.read_f64();
        state.strikes = static_cast<std::size_t>(in.read_u64());
        state.blacklisted = in.read_u8() != 0;
        broker.reputation.push_back(state);
      }
      broker.optimize_round = in.read_u64();
      broker.has_demand_override = in.read_u8() != 0;
      const std::uint64_t demand_count = in.read_u64();
      if (demand_count * 28 > in.remaining()) {
        return corrupt("demand group count overruns the section");
      }
      broker.demand.reserve(static_cast<std::size_t>(demand_count));
      for (std::uint64_t i = 0; i < demand_count; ++i) {
        const std::uint32_t id = in.read_u32();
        const std::uint32_t city = in.read_u32();
        broker::ClientGroup group{broker::ShareId{id}, geo::CityId{city}, in.read_u32(),
                                  0.0, 0.0};
        group.bitrate_mbps = in.read_f64();
        group.client_count = in.read_f64();
        broker.demand.push_back(group);
      }
      const std::uint64_t stale_count = in.read_u64();
      if (stale_count * 52 > in.remaining()) {
        return corrupt("stale bid count overruns the section");
      }
      broker.stale_bids.reserve(static_cast<std::size_t>(stale_count));
      for (std::uint64_t i = 0; i < stale_count; ++i) {
        VdxBrokerAgent::SavedStale stale;
        stale.cdn = in.read_u32();
        stale.share = in.read_u32();
        stale.cluster = in.read_u32();
        stale.bid = read_bid(in);
        stale.round = in.read_u64();
        broker.stale_bids.push_back(stale);
      }
    }
    {
      proto::ByteReader in{strategy_section->bytes};
      const std::uint64_t strategy_count = in.read_u64();
      if (strategy_count * 8 > in.remaining()) {
        return corrupt("strategy count overruns the section");
      }
      strategy_entries.reserve(static_cast<std::size_t>(strategy_count));
      for (std::uint64_t s = 0; s < strategy_count; ++s) {
        const std::uint64_t entry_count = in.read_u64();
        if (entry_count * 24 > in.remaining()) {
          return corrupt("strategy entry count overruns the section");
        }
        std::vector<cdn::BiddingStrategy::SavedEntry> entries;
        entries.reserve(static_cast<std::size_t>(entry_count));
        for (std::uint64_t i = 0; i < entry_count; ++i) {
          cdn::BiddingStrategy::SavedEntry entry;
          entry.key = in.read_u64();
          entry.win_rate = in.read_f64();
          entry.price_multiplier = in.read_f64();
          entries.push_back(entry);
        }
        strategy_entries.push_back(std::move(entries));
      }
    }
    {
      proto::ByteReader in{agent_section->bytes};
      const std::uint64_t agent_count = in.read_u64();
      if (agent_count * 26 > in.remaining()) {
        return corrupt("CDN agent count overruns the section");
      }
      agent_saved.reserve(static_cast<std::size_t>(agent_count));
      for (std::uint64_t i = 0; i < agent_count; ++i) {
        VdxCdnAgent::Saved saved;
        saved.failed = in.read_u8() != 0;
        saved.fraudulent = in.read_u8() != 0;
        saved.expected_mbps = in.read_f64();
        saved.awarded_mbps = in.read_f64();
        saved.bid_mbps = in.read_f64();
        agent_saved.push_back(saved);
      }
    }
    {
      proto::ByteReader in{injector_section->bytes};
      has_injector = in.read_u8() != 0;
      if (has_injector) {
        const std::uint64_t link_count = in.read_u64();
        if (link_count * 44 > in.remaining()) {
          return corrupt("fault link count overruns the section");
        }
        injector_saved.links.reserve(static_cast<std::size_t>(link_count));
        for (std::uint64_t i = 0; i < link_count; ++i) {
          proto::FaultInjector::Saved::Link link;
          for (std::uint64_t& word : link.rng.state) word = in.read_u64();
          link.rng.spare_normal = in.read_f64();
          link.rng.has_spare = in.read_u8() != 0;
          link.burst = in.read_u8() != 0;
          link.initialized = in.read_u8() != 0;
          injector_saved.links.push_back(link);
        }
        injector_saved.counters.frames = static_cast<std::size_t>(in.read_u64());
        injector_saved.counters.delivered = static_cast<std::size_t>(in.read_u64());
        injector_saved.counters.dropped = static_cast<std::size_t>(in.read_u64());
        injector_saved.counters.duplicated = static_cast<std::size_t>(in.read_u64());
        injector_saved.counters.delayed = static_cast<std::size_t>(in.read_u64());
        injector_saved.counters.truncated = static_cast<std::size_t>(in.read_u64());
        injector_saved.counters.corrupted = static_cast<std::size_t>(in.read_u64());
      }
    }
  } catch (const proto::WireError&) {
    return corrupt("exchange snapshot section truncated");
  } catch (const std::invalid_argument& error) {
    return corrupt(error.what());
  }

  // Cross-check against this exchange's configuration before mutating
  // anything: a snapshot from a different scenario or transport must not be
  // half-applied.
  if (strategy_entries.size() != strategies_.size() ||
      agent_saved.size() != cdn_agents_.size()) {
    return invalid("exchange snapshot CDN count does not match this catalog");
  }
  const std::size_t clusters = scenario_.catalog().clusters().size();
  if (background_loads.size() != clusters ||
      (!cluster_loads.empty() && cluster_loads.size() != clusters)) {
    return invalid("exchange snapshot cluster arity does not match this catalog");
  }
  if (has_injector != (injector_ != nullptr)) {
    return invalid("exchange snapshot transport kind (chaos vs perfect) mismatch");
  }
  // The broker validates the reputation arity itself; it applies first so a
  // rejection leaves every other component untouched too.
  if (core::Status broker_status = broker_agent_->restore_state(std::move(broker));
      !broker_status.ok()) {
    return broker_status;
  }

  rounds_completed_ = static_cast<std::size_t>(rounds);
  if (obs_.tracer != nullptr) obs_.tracer->set_logical(logical);
  background_loads_ = std::move(background_loads);
  last_cluster_loads_ = std::move(cluster_loads);
  for (std::size_t i = 0; i < strategies_.size(); ++i) {
    strategies_[i]->restore_state(strategy_entries[i]);
  }
  for (std::size_t i = 0; i < cdn_agents_.size(); ++i) {
    cdn_agents_[i]->restore_state(agent_saved[i]);
    cdn_agents_[i]->set_background_loads(background_loads_);
  }
  if (injector_ != nullptr) injector_->restore(injector_saved);
  return core::ok_status();
}

}  // namespace vdx::market
