#include "market/exchange.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cdn/menu_cache.hpp"
#include "sim/designs.hpp"
#include "sim/metrics.hpp"

namespace vdx::market {

VdxExchange::VdxExchange(const sim::Scenario& scenario, ExchangeConfig config)
    : scenario_(scenario), config_(config) {
  // The exchange always has a live registry so RoundReport telemetry can be
  // read back from counters; tracer/journal stay opt-in (null = no-op).
  obs_ = config_.obs;
  if (obs_.metrics == nullptr) obs_.metrics = &owned_metrics_;
  counters_.rounds = obs_.metrics->counter("exchange.rounds");
  counters_.messages = obs_.metrics->counter("exchange.messages");
  counters_.timeouts = obs_.metrics->counter("exchange.timeouts");
  counters_.retries = obs_.metrics->counter("exchange.retries");
  counters_.bids = obs_.metrics->counter("exchange.bids");
  counters_.stale_bids = obs_.metrics->counter("exchange.stale_bids");
  counters_.degraded_rounds = obs_.metrics->counter("exchange.degraded_rounds");
  counters_.quorum_misses = obs_.metrics->counter("exchange.quorum_misses");
  counters_.awarded_mbps = obs_.metrics->counter("exchange.awarded_mbps");
  counters_.stale_awarded_mbps = obs_.metrics->counter("exchange.stale_awarded_mbps");
  counters_.failovers = obs_.metrics->counter("exchange.failovers");
  counters_.mean_score = obs_.metrics->gauge("exchange.mean_score");
  counters_.mean_cost = obs_.metrics->gauge("exchange.mean_cost");
  counters_.prediction_error = obs_.metrics->gauge("exchange.prediction_error");

  background_loads_ = sim::place_background(scenario_);
  {
    cdn::MatchingConfig matching;
    matching.max_candidates = config_.agent.bid_count;
    matching.score_tolerance = config_.agent.menu_tolerance;
    menu_cache_ = std::make_unique<cdn::CandidateMenuCache>(
        scenario_.catalog(), scenario_.mapping(), scenario_.world().cities().size(),
        matching);
    config_.agent.menus = menu_cache_.get();
  }
  if (config_.chaos.faults.any()) {
    injector_ = std::make_unique<proto::FaultInjector>(config_.chaos.faults);
    // A lossy transport needs the degraded-round fallback to stay useful.
    config_.broker.enable_stale_bids = true;
  }
  config_.broker.obs = obs_;
  broker_agent_ = std::make_unique<VdxBrokerAgent>(scenario_, config_.broker);
  for (const cdn::Cdn& cdn : scenario_.catalog().cdns()) {
    std::unique_ptr<cdn::BiddingStrategy> strategy =
        config_.strategy == StrategyKind::kStatic
            ? cdn::make_static_strategy(cdn.markup)
            : cdn::make_risk_averse_strategy();
    cdn_agents_.push_back(std::make_unique<VdxCdnAgent>(
        scenario_, cdn.id, *strategy, background_loads_, config_.agent));
    strategies_.push_back(std::move(strategy));
  }
}

VdxExchange::~VdxExchange() = default;

RoundReport VdxExchange::run_round() {
  RoundReport report;
  report.round = rounds_completed_;

  if (obs_.journal != nullptr) {
    obs_.journal->begin_round(rounds_completed_);
    obs_.record(obs::EventKind::kRoundStart, obs::RunJournal::kNoSubject,
                static_cast<double>(rounds_completed_));
  }
  // Counter deltas over this round back the report's fault telemetry, so the
  // registry and the report cannot disagree.
  const double messages_before = counters_.messages.value();
  const double timeouts_before = counters_.timeouts.value();
  const double stale_before = counters_.stale_bids.value();

  std::vector<proto::CdnParticipant*> participants;
  participants.reserve(cdn_agents_.size());
  for (const auto& agent : cdn_agents_) participants.push_back(agent.get());

  proto::DecisionEngineConfig engine;
  engine.faults = injector_.get();
  engine.deadlines = config_.chaos.deadlines;
  engine.obs = obs_;
  report.wire = proto::run_decision_round(*broker_agent_, participants, engine);

  counters_.rounds.add();
  counters_.messages.add(static_cast<double>(report.wire.chaos.messages));
  counters_.timeouts.add(static_cast<double>(report.wire.chaos.timeouts));
  counters_.retries.add(static_cast<double>(report.wire.chaos.retries));
  counters_.bids.add(static_cast<double>(report.wire.bids_received));
  counters_.stale_bids.add(
      static_cast<double>(broker_agent_->stale_bids_substituted()));
  counters_.awarded_mbps.add(broker_agent_->total_awarded_mbps());
  counters_.stale_awarded_mbps.add(broker_agent_->stale_awarded_mbps());

  // Fault telemetry + degraded-round accounting, read back from the deltas.
  std::size_t live_cdns = 0;
  for (const auto& agent : cdn_agents_) {
    if (!agent->failed()) ++live_cdns;
  }
  const double quorum_floor =
      config_.chaos.quorum_fraction * static_cast<double>(live_cdns);
  report.quorum_met = static_cast<double>(broker_agent_->fresh_cdn_count()) + 1e-9 >=
                      quorum_floor;
  const double messages_delta = counters_.messages.value() - messages_before;
  const double timeouts_delta = counters_.timeouts.value() - timeouts_before;
  report.stale_bids_used =
      static_cast<std::size_t>(counters_.stale_bids.value() - stale_before + 0.5);
  report.stale_bid_share =
      broker_agent_->total_awarded_mbps() > 0.0
          ? broker_agent_->stale_awarded_mbps() / broker_agent_->total_awarded_mbps()
          : 0.0;
  report.timeout_rate = messages_delta > 0.0 ? timeouts_delta / messages_delta : 0.0;
  report.degraded = timeouts_delta > 0.0 || report.stale_bids_used > 0 ||
                    !report.quorum_met;
  if (!report.quorum_met) {
    counters_.quorum_misses.add();
    obs_.record(obs::EventKind::kQuorumMiss,
                static_cast<std::uint32_t>(broker_agent_->fresh_cdn_count()),
                quorum_floor);
  }
  if (report.stale_bids_used > 0) {
    obs_.record(obs::EventKind::kStaleBid, obs::RunJournal::kNoSubject,
                static_cast<double>(report.stale_bids_used));
  }
  if (report.degraded) {
    counters_.degraded_rounds.add();
    obs_.record(obs::EventKind::kDegradedRound, obs::RunJournal::kNoSubject,
                report.timeout_rate);
  }

  // Metrics from the broker's placements.
  const auto placements = broker_agent_->placements();
  const auto groups = broker_agent_->demand();
  last_cluster_loads_ = background_loads_;
  double clients = 0.0;
  double score_sum = 0.0;
  double cost_sum = 0.0;
  for (const sim::Placement& p : placements) {
    const broker::ClientGroup& group = groups[p.group];
    clients += p.clients;
    score_sum += p.clients * p.score;
    cost_sum += p.clients * scenario_.catalog().cluster(p.cluster).unit_cost() *
                group.bitrate_mbps;
    last_cluster_loads_[p.cluster.value()] += p.clients * group.bitrate_mbps;
  }
  if (clients > 0.0) {
    report.mean_score = score_sum / clients;
    report.mean_cost = cost_sum / clients;
  }

  double congested_clients = 0.0;
  for (const sim::Placement& p : placements) {
    const cdn::Cluster& cluster = scenario_.catalog().cluster(p.cluster);
    if (cluster.capacity > 0.0 &&
        last_cluster_loads_[p.cluster.value()] > cluster.capacity * 1.001 + 1e-6) {
      congested_clients += p.clients;
    }
  }
  if (clients > 0.0) report.congested_fraction = congested_clients / clients;

  // Predictability. The award ledger is the broker's under chaos (the
  // agents' own Accept-derived view undercounts when Accepts are lost);
  // both sides agree exactly on a perfect transport.
  const auto broker_awarded = broker_agent_->awarded_by_cdn();
  report.awarded_mbps.resize(cdn_agents_.size(), 0.0);
  double error_sum = 0.0;
  std::size_t bidders = 0;
  for (std::size_t i = 0; i < cdn_agents_.size(); ++i) {
    const VdxCdnAgent& agent = *cdn_agents_[i];
    report.awarded_mbps[i] =
        injector_ && i < broker_awarded.size() ? broker_awarded[i] : agent.awarded_mbps();
    if (agent.bid_mbps() > 0.0) {
      error_sum += std::abs(agent.expected_win_mbps() - agent.awarded_mbps()) /
                   std::max(1.0, agent.bid_mbps());
      ++bidders;
    }
  }
  report.mean_prediction_error =
      bidders > 0 ? error_sum / static_cast<double>(bidders) : 0.0;

  counters_.mean_score.set(report.mean_score);
  counters_.mean_cost.set(report.mean_cost);
  counters_.prediction_error.set(report.mean_prediction_error);
  if (obs_.journal != nullptr) {
    for (std::size_t i = 0; i < report.awarded_mbps.size(); ++i) {
      if (report.awarded_mbps[i] > 0.0) {
        obs_.record(obs::EventKind::kBid, static_cast<std::uint32_t>(i),
                    report.awarded_mbps[i]);
      }
    }
    obs_.record(obs::EventKind::kRoundEnd, obs::RunJournal::kNoSubject, report.mean_score);
  }

  ++rounds_completed_;
  return report;
}

std::vector<RoundReport> VdxExchange::run(std::size_t rounds) {
  std::vector<RoundReport> reports;
  reports.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) reports.push_back(run_round());
  return reports;
}

void VdxExchange::set_failed(cdn::CdnId cdn, bool failed) {
  if (!cdn.valid() || cdn.value() >= cdn_agents_.size()) {
    throw std::out_of_range{"VdxExchange::set_failed: unknown CDN"};
  }
  cdn_agents_[cdn.value()]->set_failed(failed);
}

void VdxExchange::set_fraudulent(cdn::CdnId cdn, bool fraudulent) {
  if (!cdn.valid() || cdn.value() >= cdn_agents_.size()) {
    throw std::out_of_range{"VdxExchange::set_fraudulent: unknown CDN"};
  }
  cdn_agents_[cdn.value()]->set_fraudulent(fraudulent);
}

void VdxExchange::set_active_load(std::span<const broker::ClientGroup> groups,
                                  std::span<const double> background_loads) {
  if (background_loads.size() != scenario_.catalog().clusters().size()) {
    throw std::invalid_argument{"VdxExchange::set_active_load: loads arity mismatch"};
  }
  broker_agent_->set_demand({groups.begin(), groups.end()});
  background_loads_.assign(background_loads.begin(), background_loads.end());
  for (const auto& agent : cdn_agents_) {
    agent->set_background_loads(background_loads_);
  }
}

const broker::ReputationSystem& VdxExchange::reputation() const {
  return broker_agent_->reputation();
}

core::Result<proto::DeliveryOutcome> VdxExchange::deliver(std::uint32_t session_id,
                                                          geo::CityId city,
                                                          double bitrate_mbps) {
  if (rounds_completed_ == 0) {
    return core::Result<proto::DeliveryOutcome>::failure(
        core::Errc::kNotReady, "VdxExchange::deliver: run a decision round first");
  }
  ClusterService frontend{scenario_, last_cluster_loads_};
  frontend.register_session(session_id, bitrate_mbps);
  // Clusters of failed CDNs are dark mid-stream: the frontend refuses them,
  // which drives the Delivery-Protocol failover in run_delivery().
  const auto clusters = scenario_.catalog().clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const std::uint32_t cdn = clusters[c].cdn.value();
    if (cdn < cdn_agents_.size() && cdn_agents_[cdn]->failed()) {
      frontend.set_dark(cdn::ClusterId{static_cast<std::uint32_t>(c)});
    }
  }
  proto::QueryMessage query;
  query.session_id = session_id;
  query.location = city.value();
  query.bitrate_mbps = bitrate_mbps;
  proto::DeliveryOutcome outcome =
      proto::run_delivery(query, *broker_agent_, frontend, obs_);
  if (outcome.rehomed) counters_.failovers.add();
  return outcome;
}

const proto::FaultCounters& VdxExchange::fault_counters() const {
  static const proto::FaultCounters kNone{};
  return injector_ ? injector_->counters() : kNone;
}

}  // namespace vdx::market
