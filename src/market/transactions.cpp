#include "market/transactions.hpp"

#include <algorithm>
#include <numeric>

#include "sim/designs.hpp"

namespace vdx::market {

TransactionResult run_transactions(const sim::Scenario& scenario,
                                   const TransactionConfig& config) {
  TransactionResult result;

  const auto background = sim::place_background(scenario);

  // Strategies and agents (static: the protocol, not learning, is under
  // test).
  std::vector<std::unique_ptr<cdn::BiddingStrategy>> strategies;
  std::vector<std::unique_ptr<VdxCdnAgent>> agents;
  for (const cdn::Cdn& cdn : scenario.catalog().cdns()) {
    strategies.push_back(cdn::make_static_strategy(cdn.markup));
    agents.push_back(std::make_unique<VdxCdnAgent>(scenario, cdn.id, *strategies.back(),
                                                   background, config.agent));
  }
  VdxBrokerAgent broker{scenario, config.broker};

  std::vector<bool> withdrawn(agents.size(), false);

  double total_demand = 0.0;
  for (const broker::ClientGroup& g : scenario.broker_groups()) {
    total_demand += g.demand_mbps();
  }

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    // One Decision-Protocol pass over the remaining CDNs.
    std::vector<proto::CdnParticipant*> participants;
    for (std::size_t i = 0; i < agents.size(); ++i) {
      agents[i]->set_failed(withdrawn[i]);  // a withdrawn CDN goes silent
      participants.push_back(agents[i].get());
    }
    try {
      (void)proto::run_decision_round(broker, participants);
    } catch (const std::invalid_argument&) {
      // Enough CDNs walked away that some clients have no offers left: the
      // transaction collapses with no mapping at all — the paper's
      // "CDNs may never all approve the mapping" in its terminal form.
      result.committed = false;
      result.rounds_used = round + 1;
      break;
    }

    TransactionRound report;
    report.round = round;

    // Mapping quality.
    const auto groups = scenario.broker_groups();
    double clients = 0.0;
    double score_sum = 0.0;
    double cost_sum = 0.0;
    for (const sim::Placement& p : broker.placements()) {
      clients += p.clients;
      score_sum += p.clients * p.score;
      cost_sum += p.clients * scenario.catalog().cluster(p.cluster).unit_cost() *
                  groups[p.group].bitrate_mbps;
    }
    if (clients > 0.0) {
      report.mean_score = score_sum / clients;
      report.mean_cost = cost_sum / clients;
    }

    // Crash drill: the CDN bid and was awarded traffic, but goes dark before
    // answering the commit request. The transaction aborts — the mapping is
    // withdrawn from every CDN (no partial commit), the crashed CDN is
    // removed, and its clients are re-assigned by the next recompute.
    if (config.crash_cdn < agents.size() && round == config.crash_round &&
        !withdrawn[config.crash_cdn]) {
      report.aborted = true;
      withdrawn[config.crash_cdn] = true;
      ++result.aborts;
      result.crashed.push_back(cdn::CdnId{config.crash_cdn});
      result.rounds.push_back(report);
      result.rounds_used = round + 1;
      result.final_mean_score = report.mean_score;
      result.final_mean_cost = report.mean_cost;
      continue;
    }

    // Commit phase: every participating CDN checks its award against its
    // fair share of the demand.
    const std::size_t active =
        agents.size() - static_cast<std::size_t>(
                            std::count(withdrawn.begin(), withdrawn.end(), true));
    const double fair_share =
        active > 0 ? total_demand / static_cast<double>(active) : 0.0;
    for (std::size_t i = 0; i < agents.size(); ++i) {
      if (withdrawn[i]) continue;
      const double bid = agents[i]->bid_mbps();
      const double awarded = agents[i]->awarded_mbps();
      if (bid > 0.0 && awarded < config.veto_threshold * fair_share) {
        report.vetoes.push_back(cdn::CdnId{static_cast<std::uint32_t>(i)});
      }
    }

    result.rounds.push_back(report);
    result.rounds_used = round + 1;
    result.final_mean_score = report.mean_score;
    result.final_mean_cost = report.mean_cost;

    if (result.rounds.back().vetoes.empty()) {
      result.committed = true;
      break;
    }
    // Withdraw the vetoing CDNs and recompute (the paper's "the mapping is
    // withdrawn from all CDNs and a new mapping is computed").
    for (const cdn::CdnId id : result.rounds.back().vetoes) {
      withdrawn[id.value()] = true;
    }
  }

  result.withdrawn_cdns = static_cast<std::size_t>(
      std::count(withdrawn.begin(), withdrawn.end(), true));
  return result;
}

}  // namespace vdx::market
