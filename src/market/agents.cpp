#include "market/agents.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cdn/menu_cache.hpp"

namespace vdx::market {

namespace {

std::uint64_t bid_key(std::uint32_t share, std::uint32_t cluster) noexcept {
  return (static_cast<std::uint64_t>(share) << 32) | cluster;
}

}  // namespace

VdxCdnAgent::VdxCdnAgent(const sim::Scenario& scenario, cdn::CdnId cdn,
                         cdn::BiddingStrategy& strategy,
                         std::span<const double> background_loads,
                         CdnAgentConfig config)
    : scenario_(scenario),
      cdn_(cdn),
      strategy_(strategy),
      background_loads_(background_loads.begin(), background_loads.end()),
      config_(config) {
  if (background_loads_.size() != scenario.catalog().clusters().size()) {
    throw std::invalid_argument{"VdxCdnAgent: background loads arity mismatch"};
  }
}

void VdxCdnAgent::set_background_loads(std::span<const double> background_loads) {
  if (background_loads.size() != scenario_.catalog().clusters().size()) {
    throw std::invalid_argument{"VdxCdnAgent: background loads arity mismatch"};
  }
  background_loads_.assign(background_loads.begin(), background_loads.end());
}

void VdxCdnAgent::handle_share(std::span<const proto::ShareMessage> shares) {
  shares_.assign(shares.begin(), shares.end());
  city_of_share_.clear();
  for (const proto::ShareMessage& share : shares) {
    city_of_share_.emplace(share.share_id, geo::CityId{share.location});
  }
}

std::vector<proto::BidMessage> VdxCdnAgent::announce() {
  committed_.clear();
  expected_mbps_ = 0.0;
  bid_mbps_ = 0.0;
  if (failed_) return {};  // §6.3: a failed CDN simply goes silent

  cdn::MatchingConfig matching;
  matching.max_candidates = config_.bid_count;
  matching.score_tolerance = config_.menu_tolerance;
  const cdn::CandidateMenuCache* menus =
      (config_.menus != nullptr && config_.menus->config() == matching)
          ? config_.menus
          : nullptr;

  std::vector<proto::BidMessage> bids;
  bids.reserve(shares_.size() * config_.bid_count);
  cdn::SweepBuffer sweep;
  // Per-candidate lanes, either straight out of the cache arena or staged
  // locally from candidates_for — the bidding loop below sees one shape.
  std::vector<std::uint32_t> built_cluster;
  std::vector<double> built_score, built_cost, built_capacity;
  for (const proto::ShareMessage& share : shares_) {
    const geo::CityId city{share.location};
    cdn::MenuLanes lanes;
    if (menus != nullptr) {
      lanes = menus->lanes(cdn_, city);
    } else {
      const std::vector<cdn::Candidate> built = cdn::candidates_for(
          scenario_.catalog(), scenario_.mapping(), cdn_, city, matching);
      built_cluster.clear();
      built_score.clear();
      built_cost.clear();
      built_capacity.clear();
      for (const cdn::Candidate& c : built) {
        built_cluster.push_back(c.cluster.value());
        built_score.push_back(c.score);
        built_cost.push_back(c.unit_cost);
        built_capacity.push_back(c.capacity);
      }
      lanes = cdn::MenuLanes{built_cluster, built_score, built_cost, built_capacity};
    }
    // Spare capacity for the whole menu in one strided sweep; prices are
    // shaded per candidate afterwards (the multiplier varies per cluster).
    cdn::score_sweep(lanes, 1.0, background_loads_, sweep);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const cdn::ClusterId cluster{lanes.cluster[i]};
      const cdn::BidShading shading = strategy_.shade(city, cluster);

      proto::BidMessage bid;
      bid.cluster_id = lanes.cluster[i];
      bid.share_id = share.share_id;
      bid.cdn_id = cdn_.value();
      bid.performance_estimate = lanes.score[i];
      bid.capacity_mbps = sweep.spare[i] * shading.capacity_fraction;
      bid.price = lanes.unit_cost[i] * shading.price_multiplier;
      if (fraudulent_) {
        // §6.3 fraud: claim stellar performance at a knock-down price.
        bid.performance_estimate = lanes.score[i] * 0.25;
        bid.price = lanes.unit_cost[i] * 0.5;
      }
      if (bid.capacity_mbps <= 0.0) continue;

      committed_.emplace(bid_key(bid.share_id, bid.cluster_id), bid.capacity_mbps);
      expected_mbps_ +=
          strategy_.expected_win(city, cluster, bid.capacity_mbps);
      bid_mbps_ += bid.capacity_mbps;
      bids.push_back(bid);
    }
  }
  return bids;
}

void VdxCdnAgent::handle_accept(std::span<const proto::AcceptMessage> accepts) {
  awarded_mbps_ = 0.0;
  for (const proto::AcceptMessage& accept : accepts) {
    if (accept.cdn_id != cdn_.value()) continue;
    const auto committed = committed_.find(bid_key(accept.share_id, accept.cluster_id));
    if (committed == committed_.end()) continue;  // not one of ours this round
    const auto city = city_of_share_.find(accept.share_id);
    if (city == city_of_share_.end()) continue;
    strategy_.record_outcome(city->second, cdn::ClusterId{accept.cluster_id},
                             committed->second, accept.awarded_mbps);
    awarded_mbps_ += accept.awarded_mbps;
  }
}

VdxBrokerAgent::VdxBrokerAgent(const sim::Scenario& scenario, BrokerAgentConfig config)
    : scenario_(scenario),
      config_(config),
      reputation_(scenario.catalog().cdns().size()) {}

void VdxBrokerAgent::set_demand(std::vector<broker::ClientGroup> groups) {
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].id.value() != g) {
      throw std::invalid_argument{"set_demand: group ids must be dense and in order"};
    }
  }
  demand_ = std::move(groups);
}

VdxBrokerAgent::Saved VdxBrokerAgent::save_state() const {
  Saved saved;
  saved.reputation = reputation_.save();
  saved.optimize_round = optimize_round_;
  saved.has_demand_override = demand_.has_value();
  if (demand_) saved.demand = *demand_;
  saved.stale_bids.reserve(stale_cache_.size());
  for (const auto& [key, entry] : stale_cache_) {  // std::map: key-ascending
    saved.stale_bids.push_back(
        SavedStale{key[0], key[1], key[2], entry.bid, entry.round});
  }
  return saved;
}

core::Status VdxBrokerAgent::restore_state(Saved saved) {
  auto reputation = reputation_.restore(std::move(saved.reputation));
  if (!reputation.ok()) return reputation;
  optimize_round_ = static_cast<std::size_t>(saved.optimize_round);
  if (saved.has_demand_override) {
    demand_ = std::move(saved.demand);
  } else {
    demand_.reset();
  }
  stale_cache_.clear();
  for (SavedStale& stale : saved.stale_bids) {
    stale_cache_.emplace(StaleKey{stale.cdn, stale.share, stale.cluster},
                         StaleEntry{stale.bid, static_cast<std::size_t>(stale.round)});
  }
  return core::ok_status();
}

std::vector<proto::ShareMessage> VdxBrokerAgent::gather() {
  std::vector<proto::ShareMessage> shares;
  shares.reserve(demand().size());
  for (const broker::ClientGroup& group : demand()) {
    proto::ShareMessage share;
    share.share_id = group.id.value();
    share.location = group.city.value();
    share.isp = group.isp;
    share.content_id = 0;  // aggregated across videos
    share.data_size_mbps = group.bitrate_mbps;
    share.client_count = static_cast<std::uint32_t>(std::llround(group.client_count));
    shares.push_back(share);
  }
  return shares;
}

std::vector<proto::AcceptMessage> VdxBrokerAgent::optimize(
    std::span<const proto::BidMessage> bids) {
  const auto groups = demand();

  ++optimize_round_;
  stale_substituted_ = 0;
  stale_cdns_ = 0;
  stale_awarded_ = 0.0;
  total_awarded_ = 0.0;

  // Distinct CDNs that delivered fresh bids this round (quorum accounting).
  std::vector<std::uint32_t> fresh_ids;
  fresh_ids.reserve(bids.size());
  for (const proto::BidMessage& bid : bids) fresh_ids.push_back(bid.cdn_id);
  std::sort(fresh_ids.begin(), fresh_ids.end());
  fresh_cdns_ = static_cast<std::size_t>(
      std::unique(fresh_ids.begin(), fresh_ids.end()) - fresh_ids.begin());

  // Working bid set = fresh bids, plus (in degraded rounds) stale cache
  // substitutes for pairs whose refresh never arrived. `announced` keeps the
  // pre-discount performance estimates so staleness never reads as fraud.
  std::vector<proto::BidMessage> working(bids.begin(), bids.end());
  const std::size_t fresh_count = working.size();
  std::vector<double> announced;
  announced.reserve(working.size());
  for (const proto::BidMessage& bid : bids) announced.push_back(bid.performance_estimate);

  if (config_.enable_stale_bids) {
    std::vector<StaleKey> fresh_keys;
    fresh_keys.reserve(bids.size());
    for (const proto::BidMessage& bid : bids) {
      fresh_keys.push_back(StaleKey{bid.cdn_id, bid.share_id, bid.cluster_id});
    }
    std::sort(fresh_keys.begin(), fresh_keys.end());

    std::vector<std::uint32_t> stale_ids;
    for (auto it = stale_cache_.begin(); it != stale_cache_.end();) {
      const std::size_t age = optimize_round_ - it->second.round;
      if (age > config_.stale_ttl_rounds) {
        it = stale_cache_.erase(it);
        continue;
      }
      if (!std::binary_search(fresh_keys.begin(), fresh_keys.end(), it->first)) {
        const cdn::CdnId cdn{it->second.bid.cdn_id};
        const bool tracked = cdn.valid() && cdn.value() < reputation_.size();
        const bool banned =
            config_.enable_reputation && tracked && reputation_.is_blacklisted(cdn);
        if (!banned) {
          proto::BidMessage stale = it->second.bid;
          announced.push_back(stale.performance_estimate);
          stale.performance_estimate *=
              tracked ? reputation_.stale_multiplier(cdn)
                      : reputation_.config().stale_bid_discount;
          stale.capacity_mbps *= config_.stale_capacity_fraction;
          working.push_back(stale);
          ++stale_substituted_;
          stale_ids.push_back(stale.cdn_id);
        }
      }
      ++it;
    }
    std::sort(stale_ids.begin(), stale_ids.end());
    stale_cdns_ = static_cast<std::size_t>(
        std::unique(stale_ids.begin(), stale_ids.end()) - stale_ids.begin());

    for (const proto::BidMessage& bid : bids) {
      stale_cache_[StaleKey{bid.cdn_id, bid.share_id, bid.cluster_id}] =
          StaleEntry{bid, optimize_round_};
    }
  }

  // Total blackout: every Bid was lost and the stale cache has nothing to
  // substitute. The round completes with an empty award set (degraded, no
  // quorum) rather than handing the optimizer an infeasible problem.
  if (working.empty()) {
    placements_.clear();
    awarded_by_cdn_.assign(scenario_.catalog().cdns().size(), 0.0);
    city_choices_.assign(scenario_.world().cities().size(), CityChoice{});
    return {};
  }

  std::vector<broker::BidView> views;
  views.reserve(working.size());
  for (const proto::BidMessage& bid : working) {
    broker::BidView view;
    view.share = broker::ShareId{bid.share_id};
    view.cdn = cdn::CdnId{bid.cdn_id};
    view.cluster = cdn::ClusterId{bid.cluster_id};
    view.score = bid.performance_estimate;
    view.price = bid.price;
    view.capacity = bid.capacity_mbps;
    views.push_back(view);
  }

  broker::OptimizerConfig optimizer;
  optimizer.weights = config_.weights;
  optimizer.solve = config_.solve;
  optimizer.obs = config_.obs;
  optimizer.allow_unbid_groups = config_.allow_unbid_groups;
  if (config_.enable_reputation) optimizer.reputation = &reputation_;
  const broker::OptimizeResult result = broker::optimize(groups, views, optimizer);

  // Awarded traffic per bid.
  std::vector<double> awarded(working.size(), 0.0);
  placements_.clear();
  awarded_by_cdn_.assign(scenario_.catalog().cdns().size(), 0.0);
  city_choices_.assign(scenario_.world().cities().size(), CityChoice{});
  for (const broker::Allocation& allocation : result.allocations) {
    const broker::BidView& view = views[allocation.bid_index];
    const broker::ClientGroup& group = groups[view.share.value()];
    const double mbps = allocation.clients * group.bitrate_mbps;
    awarded[allocation.bid_index] += mbps;
    total_awarded_ += mbps;
    if (allocation.bid_index >= fresh_count) stale_awarded_ += mbps;
    if (view.cdn.valid() && view.cdn.value() < awarded_by_cdn_.size()) {
      awarded_by_cdn_[view.cdn.value()] += mbps;
    }

    sim::Placement placement;
    placement.group = view.share.value();
    placement.cluster = view.cluster;
    placement.clients = allocation.clients;
    placement.price = view.price;
    placement.score = scenario_.mapping().score(group.city, view.cluster.value());
    placements_.push_back(placement);

    CityChoice& choice = city_choices_[group.city.value()];
    choice.weighted_clusters.emplace_back(view.cluster, allocation.clients);
    choice.total += allocation.clients;

    // Reputation: compare the announced performance against the measured
    // truth for traffic we actually observed (the broker's client-side QoE).
    if (config_.enable_reputation) {
      reputation_.record(view.cdn, announced[allocation.bid_index], placement.score);
    }
  }

  std::vector<proto::AcceptMessage> accepts;
  accepts.reserve(working.size());
  for (std::size_t i = 0; i < working.size(); ++i) {
    proto::AcceptMessage accept;
    accept.cluster_id = working[i].cluster_id;
    accept.share_id = working[i].share_id;
    accept.performance_estimate = working[i].performance_estimate;
    accept.capacity_mbps = working[i].capacity_mbps;
    accept.price = working[i].price;
    accept.cdn_id = working[i].cdn_id;
    accept.awarded_mbps = awarded[i];
    accepts.push_back(accept);
  }
  return accepts;
}

proto::ResultMessage VdxBrokerAgent::resolve(const proto::QueryMessage& query) {
  proto::ResultMessage result;
  result.session_id = query.session_id;
  if (query.location >= city_choices_.size() ||
      city_choices_[query.location].total <= 0.0) {
    // No decision for this city (no clients in the optimization round):
    // fail gracefully to an invalid cluster; CP software falls back (§6.3).
    result.cdn_id = cdn::CdnId::invalid_value;
    result.cluster_id = cdn::ClusterId::invalid_value;
    return result;
  }
  // Weighted round-robin across the city's winning clusters, so repeated
  // queries approximate the optimizer's split.
  CityChoice& choice = city_choices_[query.location];
  double cursor = std::fmod(choice.cursor, choice.total);
  choice.cursor += 1.0;
  for (const auto& [cluster, weight] : choice.weighted_clusters) {
    if (cursor < weight) {
      result.cluster_id = cluster.value();
      result.cdn_id = scenario_.catalog().cluster(cluster).cdn.value();
      return result;
    }
    cursor -= weight;
  }
  const auto& last = choice.weighted_clusters.back();
  result.cluster_id = last.first.value();
  result.cdn_id = scenario_.catalog().cluster(last.first).cdn.value();
  return result;
}

proto::ResultMessage VdxBrokerAgent::resolve_excluding(const proto::QueryMessage& query,
                                                       std::uint32_t dark_cluster) {
  proto::ResultMessage result;
  result.session_id = query.session_id;
  result.cdn_id = cdn::CdnId::invalid_value;
  result.cluster_id = cdn::ClusterId::invalid_value;
  if (query.location >= city_choices_.size()) return result;

  CityChoice& choice = city_choices_[query.location];
  double alive_total = 0.0;
  for (const auto& [cluster, weight] : choice.weighted_clusters) {
    if (cluster.value() != dark_cluster) alive_total += weight;
  }
  if (alive_total <= 0.0) return result;  // every winner is dark: give up

  // Weighted round-robin over the surviving winners, advancing the same
  // cursor as resolve() so re-homed sessions keep approximating the split.
  double cursor = std::fmod(choice.cursor, alive_total);
  choice.cursor += 1.0;
  const std::pair<cdn::ClusterId, double>* fallback = nullptr;
  for (const auto& entry : choice.weighted_clusters) {
    if (entry.first.value() == dark_cluster) continue;
    fallback = &entry;
    if (cursor < entry.second) break;
    cursor -= entry.second;
  }
  result.cluster_id = fallback->first.value();
  result.cdn_id = scenario_.catalog().cluster(fallback->first).cdn.value();
  return result;
}

ClusterService::ClusterService(const sim::Scenario& scenario,
                               std::span<const double> cluster_loads)
    : scenario_(scenario),
      loads_(cluster_loads.begin(), cluster_loads.end()),
      dark_(scenario.catalog().clusters().size(), false) {}

void ClusterService::set_dark(cdn::ClusterId cluster, bool dark) {
  if (cluster.valid() && cluster.value() < dark_.size()) dark_[cluster.value()] = dark;
}

void ClusterService::register_session(std::uint32_t session_id, double bitrate_mbps) {
  session_bitrate_[session_id] = bitrate_mbps;
}

proto::DeliveryMessage ClusterService::serve(const proto::RequestMessage& request) {
  proto::DeliveryMessage delivery;
  delivery.session_id = request.session_id;
  delivery.cluster_id = request.cluster_id;

  const auto bitrate = session_bitrate_.find(request.session_id);
  const double requested = bitrate == session_bitrate_.end() ? 1.0 : bitrate->second;

  if (request.cluster_id >= scenario_.catalog().clusters().size() ||
      dark_[request.cluster_id]) {
    delivery.delivered_mbps = 0.0;  // unknown or dark cluster: delivery fails
    return delivery;
  }
  const cdn::Cluster& cluster =
      scenario_.catalog().cluster(cdn::ClusterId{request.cluster_id});
  const double load = loads_[request.cluster_id];
  // Overloaded clusters fair-share their capacity.
  const double factor =
      cluster.capacity > 0.0 && load > cluster.capacity ? cluster.capacity / load : 1.0;
  delivery.delivered_mbps = requested * factor;
  return delivery;
}

}  // namespace vdx::market
