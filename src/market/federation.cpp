#include "market/federation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cdn/matching.hpp"
#include "obs/metrics.hpp"
#include "sim/designs.hpp"

namespace vdx::market {

namespace {

/// Greedy farthest-point seeding: the top-demand city first, then cities
/// maximizing the minimum distance to the chosen seeds. Gives well-spread
/// regional exchanges.
std::vector<geo::CityId> pick_seeds(const geo::World& world, std::size_t count) {
  std::vector<geo::CityId> seeds;
  geo::CityId best;
  double best_weight = -1.0;
  for (const geo::City& city : world.cities()) {
    if (city.demand_weight > best_weight) {
      best_weight = city.demand_weight;
      best = city.id;
    }
  }
  seeds.push_back(best);
  while (seeds.size() < count) {
    geo::CityId farthest;
    double farthest_distance = -1.0;
    for (const geo::City& city : world.cities()) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const geo::CityId seed : seeds) {
        nearest = std::min(nearest, world.distance_km(city.id, seed));
      }
      if (nearest > farthest_distance) {
        farthest_distance = nearest;
        farthest = city.id;
      }
    }
    seeds.push_back(farthest);
  }
  return seeds;
}

}  // namespace

FederationResult run_federated_marketplace(const sim::Scenario& scenario,
                                           const FederationConfig& config) {
  if (config.region_count == 0) {
    throw std::invalid_argument{"FederationConfig: region_count must be > 0"};
  }
  const auto& world = scenario.world();
  const auto& catalog = scenario.catalog();
  const auto& mapping = scenario.mapping();

  FederationResult result;
  result.region_count = config.region_count;

  // Optimize wall time flows through the registry (satellite: no hand-rolled
  // steady_clock blocks). Without an external registry, a local one keeps the
  // ScopedTimer/readback path identical.
  obs::MetricsRegistry local_metrics;
  obs::Observer obs = config.obs;
  if (obs.metrics == nullptr) obs.metrics = &local_metrics;
  const obs::Histogram optimize_hist =
      obs.metrics->histogram("federation.optimize_seconds");
  const obs::Counter region_solves = obs.metrics->counter("federation.region_solves");
  const obs::Counter fallback_clients =
      obs.metrics->counter("federation.fallback_clients");
  const double optimize_sum_before = optimize_hist.sum();

  // ---- Partition cities across regional exchanges. ----
  const auto seeds = pick_seeds(world, config.region_count);
  std::vector<std::size_t> region_of_city(world.cities().size());
  result.region_city_counts.assign(config.region_count, 0);
  for (const geo::City& city : world.cities()) {
    std::size_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < seeds.size(); ++r) {
      const double d = world.distance_km(city.id, seeds[r]);
      if (d < best_distance) {
        best_distance = d;
        best = r;
      }
    }
    region_of_city[city.id.value()] = best;
    ++result.region_city_counts[best];
  }

  const auto background = sim::place_background(scenario);
  const auto groups = scenario.broker_groups();
  std::vector<std::size_t> group_of_share(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of_share[groups[g].id.value()] = g;
  }

  cdn::MatchingConfig matching;
  matching.max_candidates = config.run.bid_count;
  matching.score_tolerance = config.run.menu_tolerance;

  sim::DesignOutcome combined;
  combined.design = sim::Design::kMarketplace;
  combined.background_loads = background;
  combined.cluster_loads = background;

  // ---- One Marketplace optimization per region. ----
  for (std::size_t region = 0; region < config.region_count; ++region) {
    std::vector<broker::ClientGroup> region_groups;
    for (const broker::ClientGroup& g : groups) {
      if (region_of_city[g.city.value()] == region) region_groups.push_back(g);
    }
    if (region_groups.empty()) continue;

    std::vector<broker::BidView> bids;
    for (const broker::ClientGroup& group : region_groups) {
      bool any_bid = false;
      for (const cdn::Cdn& cdn_entry : catalog.cdns()) {
        if (cdn_entry.clusters.empty()) continue;
        for (const cdn::Candidate& candidate : cdn::candidates_for(
                 catalog, mapping, cdn_entry.id, group.city, matching)) {
          // Regional exchange: only clusters inside the region participate.
          if (region_of_city[catalog.cluster(candidate.cluster).city.value()] !=
              region) {
            continue;
          }
          broker::BidView bid;
          bid.share = group.id;
          bid.cdn = cdn_entry.id;
          bid.cluster = candidate.cluster;
          bid.score = candidate.score;
          bid.price = candidate.unit_cost * cdn_entry.markup;
          bid.capacity =
              std::max(0.0, candidate.capacity - background[candidate.cluster.value()]);
          bids.push_back(bid);
          any_bid = true;
        }
      }
      if (!any_bid) {
        // No in-region menu for this group: global fallback (the client is
        // handed to the global exchange rather than dropped).
        result.fallback_clients += group.client_count;
        for (const cdn::Cdn& cdn_entry : catalog.cdns()) {
          for (const cdn::Candidate& candidate : cdn::candidates_for(
                   catalog, mapping, cdn_entry.id, group.city, matching)) {
            broker::BidView bid;
            bid.share = group.id;
            bid.cdn = cdn_entry.id;
            bid.cluster = candidate.cluster;
            bid.score = candidate.score;
            bid.price = candidate.unit_cost * cdn_entry.markup;
            bid.capacity = std::max(
                0.0, candidate.capacity - background[candidate.cluster.value()]);
            bids.push_back(bid);
          }
        }
      }
    }

    broker::OptimizerConfig optimizer;
    optimizer.weights = config.run.weights;
    optimizer.solve = config.run.solve;
    optimizer.obs = obs;
    broker::OptimizeResult solved;
    {
      const obs::ScopedTimer timer{optimize_hist};
      solved = broker::optimize(region_groups, bids, optimizer);
    }
    region_solves.add();
    result.largest_instance_options =
        std::max(result.largest_instance_options, bids.size());

    for (const broker::Allocation& allocation : solved.allocations) {
      const broker::BidView& bid = bids[allocation.bid_index];
      sim::Placement placement;
      placement.group = group_of_share[bid.share.value()];
      placement.cluster = bid.cluster;
      placement.clients = allocation.clients;
      placement.price = bid.price;
      placement.score =
          mapping.score(groups[placement.group].city, bid.cluster.value());
      combined.cluster_loads[bid.cluster.value()] +=
          allocation.clients * groups[placement.group].bitrate_mbps;
      combined.placements.push_back(placement);
    }
  }

  // Read back from the registry: the histogram is the source of truth.
  result.optimize_seconds = optimize_hist.sum() - optimize_sum_before;
  fallback_clients.add(result.fallback_clients);

  result.metrics = sim::compute_metrics(scenario, combined);
  return result;
}

}  // namespace vdx::market
