#include "market/federation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "cdn/menu_cache.hpp"
#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "sim/designs.hpp"

namespace vdx::market {

std::vector<geo::CityId> pick_region_seeds(const geo::World& world,
                                           std::size_t count) {
  if (world.cities().empty()) {
    throw std::invalid_argument{"pick_region_seeds: world has no cities"};
  }
  // Seeds must be distinct cities; asking for more regions than cities would
  // otherwise duplicate the farthest city forever.
  count = std::min(count, world.cities().size());

  std::vector<geo::CityId> seeds;
  std::vector<char> chosen(world.cities().size(), 0);
  geo::CityId best = world.cities().front().id;
  double best_weight = -1.0;
  for (const geo::City& city : world.cities()) {
    if (city.demand_weight > best_weight) {
      best_weight = city.demand_weight;
      best = city.id;
    }
  }
  seeds.push_back(best);
  chosen[best.value()] = 1;
  while (seeds.size() < count) {
    geo::CityId farthest = seeds.front();
    double farthest_distance = -1.0;
    for (const geo::City& city : world.cities()) {
      if (chosen[city.id.value()] != 0) continue;
      double nearest = std::numeric_limits<double>::infinity();
      for (const geo::CityId seed : seeds) {
        nearest = std::min(nearest, world.distance_km(city.id, seed));
      }
      if (nearest > farthest_distance) {
        farthest_distance = nearest;
        farthest = city.id;
      }
    }
    seeds.push_back(farthest);
    chosen[farthest.value()] = 1;
  }
  return seeds;
}

namespace {

/// Appends `group`'s bids built from the shared menu cache. With a region
/// filter, only clusters whose city belongs to `region` participate (the
/// regional exchange); without one, every cluster does (the global fallback).
/// Both the in-region and fallback paths flow through this single helper so
/// bid construction cannot drift between them. Returns the appended count.
std::size_t append_group_bids(std::vector<broker::BidView>& bids,
                              const cdn::CdnCatalog& catalog,
                              const cdn::CandidateMenuCache& menus,
                              std::span<const double> background,
                              const broker::ClientGroup& group,
                              const std::vector<std::size_t>* region_of_city,
                              std::size_t region) {
  std::size_t appended = 0;
  cdn::SweepBuffer sweep;
  for (const cdn::Cdn& cdn_entry : catalog.cdns()) {
    const cdn::MenuLanes lanes = menus.lanes(cdn_entry.id, group.city);
    cdn::score_sweep(lanes, cdn_entry.markup, background, sweep);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const cdn::ClusterId cluster{lanes.cluster[i]};
      if (region_of_city != nullptr &&
          (*region_of_city)[catalog.cluster(cluster).city.value()] != region) {
        continue;
      }
      broker::BidView bid;
      bid.share = group.id;
      bid.cdn = cdn_entry.id;
      bid.cluster = cluster;
      bid.score = lanes.score[i];
      bid.price = sweep.price[i];
      bid.capacity = sweep.spare[i];
      bids.push_back(bid);
      ++appended;
    }
  }
  return appended;
}

/// Everything one region solve produces; merged by the coordinator in region
/// order so the combined outcome is identical at any thread count.
struct RegionOutcome {
  std::vector<sim::Placement> placements;
  double fallback_clients = 0.0;
  std::size_t fallback_bids = 0;
  std::size_t instance_options = 0;
};

}  // namespace

FederationResult run_federated_marketplace(const sim::Scenario& scenario,
                                           const FederationConfig& config) {
  if (config.region_count == 0) {
    throw std::invalid_argument{"FederationConfig: region_count must be > 0"};
  }
  const auto& world = scenario.world();
  const auto& catalog = scenario.catalog();
  const auto& mapping = scenario.mapping();

  FederationResult result;

  // Optimize wall time flows through the registry (satellite: no hand-rolled
  // steady_clock blocks). Without an external registry, a local one keeps the
  // ScopedTimer/readback path identical.
  obs::MetricsRegistry local_metrics;
  obs::Observer obs = config.obs;
  if (obs.metrics == nullptr) obs.metrics = &local_metrics;
  const obs::Histogram optimize_hist =
      obs.metrics->histogram("federation.optimize_seconds");
  const obs::Counter region_solves = obs.metrics->counter("federation.region_solves");
  const obs::Counter fallback_clients =
      obs.metrics->counter("federation.fallback_clients");
  const obs::Counter fallback_bids = obs.metrics->counter("federation.fallback_bids");
  const double optimize_sum_before = optimize_hist.sum();

  // ---- Partition cities across regional exchanges. ----
  const auto seeds = pick_region_seeds(world, config.region_count);
  const std::size_t regions = seeds.size();  // requested count, clamped
  result.region_count = regions;
  std::vector<std::size_t> region_of_city(world.cities().size());
  result.region_city_counts.assign(regions, 0);
  for (const geo::City& city : world.cities()) {
    std::size_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < regions; ++r) {
      const double d = world.distance_km(city.id, seeds[r]);
      if (d < best_distance) {
        best_distance = d;
        best = r;
      }
    }
    region_of_city[city.id.value()] = best;
    ++result.region_city_counts[best];
  }

  const auto background = sim::place_background(scenario);
  const auto groups = scenario.broker_groups();
  std::vector<std::size_t> group_of_share(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of_share[groups[g].id.value()] = g;
  }

  cdn::MatchingConfig matching;
  matching.max_candidates = config.run.bid_count;
  matching.score_tolerance = config.run.menu_tolerance;

  core::ThreadPool pool{core::ThreadPool::resolve(config.threads)};

  // Every region asks every CDN for menus over the same config: build them
  // once, share read-only across region solves.
  const cdn::CandidateMenuCache menus{catalog, mapping, world.cities().size(),
                                      matching, &pool};

  sim::DesignOutcome combined;
  combined.design = sim::Design::kMarketplace;
  combined.background_loads = background;
  combined.cluster_loads = background;

  // ---- One Marketplace optimization per region (parallel across regions).
  // Worker threads observe only into the thread-safe metrics registry; the
  // journal and tracer are fed by this (coordinating) thread after the join,
  // in region order, so those exports stay byte-stable at any thread count.
  obs::Observer worker_obs;
  worker_obs.metrics = obs.metrics;

  const auto solve_region = [&](std::size_t region) -> RegionOutcome {
    RegionOutcome out;
    std::vector<broker::ClientGroup> region_groups;
    for (const broker::ClientGroup& g : groups) {
      if (region_of_city[g.city.value()] == region) region_groups.push_back(g);
    }
    if (region_groups.empty()) return out;

    std::vector<broker::BidView> bids;
    for (const broker::ClientGroup& group : region_groups) {
      const std::size_t in_region = append_group_bids(
          bids, catalog, menus, background, group, &region_of_city, region);
      if (in_region == 0) {
        // No in-region menu for this group: global fallback (the client is
        // handed to the global exchange rather than dropped).
        out.fallback_clients += group.client_count;
        out.fallback_bids +=
            append_group_bids(bids, catalog, menus, background, group, nullptr, 0);
      }
    }
    out.instance_options = bids.size();

    broker::OptimizerConfig optimizer;
    optimizer.weights = config.run.weights;
    optimizer.solve = config.run.solve;
    optimizer.obs = worker_obs;
    broker::OptimizeResult solved;
    {
      const obs::ScopedTimer timer{optimize_hist};
      solved = broker::optimize(region_groups, bids, optimizer);
    }
    region_solves.add();

    for (const broker::Allocation& allocation : solved.allocations) {
      const broker::BidView& bid = bids[allocation.bid_index];
      sim::Placement placement;
      placement.group = group_of_share[bid.share.value()];
      placement.cluster = bid.cluster;
      placement.clients = allocation.clients;
      placement.price = bid.price;
      placement.score =
          mapping.score(groups[placement.group].city, bid.cluster.value());
      out.placements.push_back(placement);
    }
    return out;
  };

  const auto outcomes = core::parallel_map(pool, regions, solve_region);

  for (std::size_t region = 0; region < outcomes.size(); ++region) {
    const RegionOutcome& out = outcomes[region];
    if (obs.tracer != nullptr) obs.tracer->instant("federation.region");
    obs.record(obs::EventKind::kSolve, static_cast<std::uint32_t>(region),
               static_cast<double>(out.instance_options));
    result.fallback_clients += out.fallback_clients;
    result.fallback_bids += out.fallback_bids;
    result.largest_instance_options =
        std::max(result.largest_instance_options, out.instance_options);
    for (const sim::Placement& placement : out.placements) {
      combined.cluster_loads[placement.cluster.value()] +=
          placement.clients * groups[placement.group].bitrate_mbps;
      combined.placements.push_back(placement);
    }
  }

  // Read back from the registry: the histogram is the source of truth.
  result.optimize_seconds = optimize_hist.sum() - optimize_sum_before;
  fallback_clients.add(result.fallback_clients);
  fallback_bids.add(static_cast<double>(result.fallback_bids));

  result.metrics = sim::compute_metrics(scenario, combined);
  return result;
}

}  // namespace vdx::market
