// Concrete VDX marketplace participants (paper §6).
//
// VdxCdnAgent implements the CDN side of the Decision Protocol: it consumes
// Shares, runs Matching over its clusters, applies its bidding strategy's
// shading, and learns from Accepts. VdxBrokerAgent implements the broker
// side: Gather from the scenario's client groups, Optimize via the Fig.-9
// solver, Accept feedback for every bid — and doubles as the Delivery
// Protocol directory. Fraud and failure switches implement §6.3's threat
// model for the reputation system to react to.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "broker/optimizer.hpp"
#include "broker/reputation.hpp"
#include "cdn/matching.hpp"
#include "cdn/strategy.hpp"
#include "proto/engine.hpp"
#include "sim/designs.hpp"

namespace vdx::market {

struct CdnAgentConfig {
  /// Bids per share (menu size).
  std::size_t bid_count = 8;
  /// Menu score tolerance (see sim::RunConfig::menu_tolerance).
  double menu_tolerance = 1.35;
};

class VdxCdnAgent final : public proto::CdnParticipant {
 public:
  VdxCdnAgent(const sim::Scenario& scenario, cdn::CdnId cdn,
              cdn::BiddingStrategy& strategy, std::span<const double> background_loads,
              CdnAgentConfig config = {});

  // proto::CdnParticipant
  void handle_share(std::span<const proto::ShareMessage> shares) override;
  [[nodiscard]] std::vector<proto::BidMessage> announce() override;
  void handle_accept(std::span<const proto::AcceptMessage> accepts) override;

  /// §6.3 switches.
  void set_failed(bool failed) noexcept { failed_ = failed; }
  void set_fraudulent(bool fraudulent) noexcept { fraudulent_ = fraudulent; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] bool fraudulent() const noexcept { return fraudulent_; }

  /// Traffic-predictability bookkeeping for the last completed round.
  [[nodiscard]] double expected_win_mbps() const noexcept { return expected_mbps_; }
  [[nodiscard]] double awarded_mbps() const noexcept { return awarded_mbps_; }
  [[nodiscard]] double bid_mbps() const noexcept { return bid_mbps_; }

  [[nodiscard]] cdn::CdnId id() const noexcept { return cdn_; }

 private:
  const sim::Scenario& scenario_;
  cdn::CdnId cdn_;
  cdn::BiddingStrategy& strategy_;
  std::vector<double> background_loads_;
  CdnAgentConfig config_;

  std::vector<proto::ShareMessage> shares_;
  /// share_id -> city for Accept attribution.
  std::unordered_map<std::uint32_t, geo::CityId> city_of_share_;
  /// (share_id, cluster_id) -> committed capacity of the announced bid.
  std::unordered_map<std::uint64_t, double> committed_;

  bool failed_ = false;
  bool fraudulent_ = false;
  double expected_mbps_ = 0.0;
  double awarded_mbps_ = 0.0;
  double bid_mbps_ = 0.0;
};

struct BrokerAgentConfig {
  broker::OptimizeWeights weights{1.0, 2.0};
  solver::SolveOptions solve;
  bool enable_reputation = true;
};

class VdxBrokerAgent final : public proto::BrokerParticipant,
                             public proto::DeliveryDirectory {
 public:
  explicit VdxBrokerAgent(const sim::Scenario& scenario, BrokerAgentConfig config = {});

  // proto::BrokerParticipant
  [[nodiscard]] std::vector<proto::ShareMessage> gather() override;
  [[nodiscard]] std::vector<proto::AcceptMessage> optimize(
      std::span<const proto::BidMessage> bids) override;

  // proto::DeliveryDirectory
  [[nodiscard]] proto::ResultMessage resolve(const proto::QueryMessage& query) override;

  [[nodiscard]] const broker::ReputationSystem& reputation() const noexcept {
    return reputation_;
  }

  /// Winning allocations of the last Optimize (for metric computation):
  /// (group index, cluster, clients, price, true score).
  [[nodiscard]] std::span<const sim::Placement> placements() const noexcept {
    return placements_;
  }

 private:
  const sim::Scenario& scenario_;
  BrokerAgentConfig config_;
  broker::ReputationSystem reputation_;
  std::vector<sim::Placement> placements_;
  /// Per city: winning clusters with cumulative client weights, for
  /// Delivery-Protocol resolution.
  struct CityChoice {
    std::vector<std::pair<cdn::ClusterId, double>> weighted_clusters;
    double total = 0.0;
    double cursor = 0.0;
  };
  std::vector<CityChoice> city_choices_;
};

/// Delivery-Protocol cluster frontend: serves at the requested bitrate,
/// degraded proportionally when the cluster is overloaded.
class ClusterService final : public proto::ClusterFrontend {
 public:
  ClusterService(const sim::Scenario& scenario, std::span<const double> cluster_loads);

  [[nodiscard]] proto::DeliveryMessage serve(const proto::RequestMessage& request) override;

  /// Bitrate requested per session must be registered before serve().
  void register_session(std::uint32_t session_id, double bitrate_mbps);

 private:
  const sim::Scenario& scenario_;
  std::vector<double> loads_;
  std::unordered_map<std::uint32_t, double> session_bitrate_;
};

}  // namespace vdx::market
