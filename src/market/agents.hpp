// Concrete VDX marketplace participants (paper §6).
//
// VdxCdnAgent implements the CDN side of the Decision Protocol: it consumes
// Shares, runs Matching over its clusters, applies its bidding strategy's
// shading, and learns from Accepts. VdxBrokerAgent implements the broker
// side: Gather from the scenario's client groups, Optimize via the Fig.-9
// solver, Accept feedback for every bid — and doubles as the Delivery
// Protocol directory. Fraud and failure switches implement §6.3's threat
// model for the reputation system to react to.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "broker/optimizer.hpp"
#include "broker/reputation.hpp"
#include "cdn/matching.hpp"
#include "cdn/strategy.hpp"
#include "proto/engine.hpp"
#include "sim/designs.hpp"

namespace vdx::cdn {
class CandidateMenuCache;
}

namespace vdx::market {

struct CdnAgentConfig {
  /// Bids per share (menu size).
  std::size_t bid_count = 8;
  /// Menu score tolerance (see sim::RunConfig::menu_tolerance).
  double menu_tolerance = 1.35;
  /// Optional shared menu cache (non-owning; typically owned by the
  /// VdxExchange). Used only when its MatchingConfig matches this agent's
  /// (bid_count, menu_tolerance); otherwise menus are built per announce().
  const cdn::CandidateMenuCache* menus = nullptr;
};

class VdxCdnAgent final : public proto::CdnParticipant {
 public:
  VdxCdnAgent(const sim::Scenario& scenario, cdn::CdnId cdn,
              cdn::BiddingStrategy& strategy, std::span<const double> background_loads,
              CdnAgentConfig config = {});

  // proto::CdnParticipant
  void handle_share(std::span<const proto::ShareMessage> shares) override;
  [[nodiscard]] std::vector<proto::BidMessage> announce() override;
  void handle_accept(std::span<const proto::AcceptMessage> accepts) override;

  /// §6.3 switches.
  void set_failed(bool failed) noexcept { failed_ = failed; }
  void set_fraudulent(bool fraudulent) noexcept { fraudulent_ = fraudulent; }

  /// Replaces the background load vector (Mbps per cluster), effective from
  /// the next announce(). Incremental feeds — a streaming timeline moving
  /// the exchange between epochs — update this as ambient traffic shifts.
  void set_background_loads(std::span<const double> background_loads);
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] bool fraudulent() const noexcept { return fraudulent_; }

  /// Traffic-predictability bookkeeping for the last completed round.
  [[nodiscard]] double expected_win_mbps() const noexcept { return expected_mbps_; }
  [[nodiscard]] double awarded_mbps() const noexcept { return awarded_mbps_; }
  [[nodiscard]] double bid_mbps() const noexcept { return bid_mbps_; }

  [[nodiscard]] cdn::CdnId id() const noexcept { return cdn_; }

  /// Cross-round agent state for checkpoint/restore. awarded_mbps_ matters:
  /// it is reset only by handle_accept, which a chaos transport can skip
  /// (dropped Accepts), so it genuinely carries across rounds. The
  /// per-round share/commitment maps are rebuilt by the next handle_share
  /// and need no serialization.
  struct Saved {
    bool failed = false;
    bool fraudulent = false;
    double expected_mbps = 0.0;
    double awarded_mbps = 0.0;
    double bid_mbps = 0.0;

    friend bool operator==(const Saved&, const Saved&) = default;
  };
  [[nodiscard]] Saved save_state() const {
    return Saved{failed_, fraudulent_, expected_mbps_, awarded_mbps_, bid_mbps_};
  }
  void restore_state(const Saved& saved) {
    failed_ = saved.failed;
    fraudulent_ = saved.fraudulent;
    expected_mbps_ = saved.expected_mbps;
    awarded_mbps_ = saved.awarded_mbps;
    bid_mbps_ = saved.bid_mbps;
  }

 private:
  const sim::Scenario& scenario_;
  cdn::CdnId cdn_;
  cdn::BiddingStrategy& strategy_;
  std::vector<double> background_loads_;
  CdnAgentConfig config_;

  std::vector<proto::ShareMessage> shares_;
  /// share_id -> city for Accept attribution.
  std::unordered_map<std::uint32_t, geo::CityId> city_of_share_;
  /// (share_id, cluster_id) -> committed capacity of the announced bid.
  std::unordered_map<std::uint64_t, double> committed_;

  bool failed_ = false;
  bool fraudulent_ = false;
  double expected_mbps_ = 0.0;
  double awarded_mbps_ = 0.0;
  double bid_mbps_ = 0.0;
};

struct BrokerAgentConfig {
  broker::OptimizeWeights weights{1.0, 2.0};
  solver::SolveOptions solve;
  bool enable_reputation = true;
  /// Degraded-round fallback (chaos transport, §6.3): when a CDN bid on a
  /// (share, cluster) pair last round but no fresh bid arrived this round,
  /// substitute the cached bid at a reputation-discounted weight instead of
  /// letting the pair go dark. Off for the perfect transport.
  bool enable_stale_bids = false;
  /// Cached bids older than this many rounds are evicted, not substituted.
  std::size_t stale_ttl_rounds = 2;
  /// Tolerate demand groups no CDN bid on (see
  /// broker::OptimizerConfig::allow_unbid_groups). Incremental demand can
  /// momentarily present groups every CDN is too loaded to bid for.
  bool allow_unbid_groups = false;
  /// Capacity haircut on substituted stale bids (the CDN's spare capacity
  /// may have moved since it was announced).
  double stale_capacity_fraction = 0.5;
  /// Observability sinks (no-op by default); forwarded into the Optimize
  /// pipeline (broker::optimize -> solver::solve).
  obs::Observer obs;
};

class VdxBrokerAgent final : public proto::BrokerParticipant,
                             public proto::DeliveryDirectory {
 public:
  explicit VdxBrokerAgent(const sim::Scenario& scenario, BrokerAgentConfig config = {});

  // proto::BrokerParticipant
  [[nodiscard]] std::vector<proto::ShareMessage> gather() override;
  [[nodiscard]] std::vector<proto::AcceptMessage> optimize(
      std::span<const proto::BidMessage> bids) override;

  // proto::DeliveryDirectory
  [[nodiscard]] proto::ResultMessage resolve(const proto::QueryMessage& query) override;
  [[nodiscard]] proto::ResultMessage resolve_excluding(
      const proto::QueryMessage& query, std::uint32_t dark_cluster) override;

  [[nodiscard]] const broker::ReputationSystem& reputation() const noexcept {
    return reputation_;
  }

  /// Overrides the demand Gathered each round (default: the scenario's
  /// static broker groups). Group ids must be dense and equal to the group's
  /// index, exactly as broker::group_sessions produces them. An empty vector
  /// is a valid override (nobody watching right now).
  void set_demand(std::vector<broker::ClientGroup> groups);

  /// The demand the next gather()/optimize() round will see: the
  /// set_demand override when present, the scenario's groups otherwise.
  [[nodiscard]] std::span<const broker::ClientGroup> demand() const noexcept {
    return demand_ ? std::span<const broker::ClientGroup>{*demand_}
                   : scenario_.broker_groups();
  }

  /// Winning allocations of the last Optimize (for metric computation):
  /// (group index, cluster, clients, price, true score).
  [[nodiscard]] std::span<const sim::Placement> placements() const noexcept {
    return placements_;
  }

  /// Broker-side award accounting for the last Optimize, indexed by CDN id.
  /// Unlike the agents' own view, this stays correct when Accept messages
  /// are lost on a faulty transport.
  [[nodiscard]] std::span<const double> awarded_by_cdn() const noexcept {
    return awarded_by_cdn_;
  }

  /// Degraded-round telemetry for the last Optimize.
  [[nodiscard]] std::size_t stale_bids_substituted() const noexcept {
    return stale_substituted_;
  }
  [[nodiscard]] std::size_t stale_cdn_count() const noexcept { return stale_cdns_; }
  [[nodiscard]] std::size_t fresh_cdn_count() const noexcept { return fresh_cdns_; }
  [[nodiscard]] double stale_awarded_mbps() const noexcept { return stale_awarded_; }
  [[nodiscard]] double total_awarded_mbps() const noexcept { return total_awarded_; }

  /// Cross-round broker state for checkpoint/restore: the reputation
  /// ledger, the Optimize round counter (drives stale-bid TTLs), the
  /// demand override, and the stale-bid cache (key-ascending). Per-round
  /// telemetry and the delivery directory are rebuilt by the next round.
  struct SavedStale {
    std::uint32_t cdn = 0;
    std::uint32_t share = 0;
    std::uint32_t cluster = 0;
    proto::BidMessage bid;
    std::uint64_t round = 0;
  };
  struct Saved {
    std::vector<broker::ReputationSystem::State> reputation;
    std::uint64_t optimize_round = 0;
    bool has_demand_override = false;
    std::vector<broker::ClientGroup> demand;
    std::vector<SavedStale> stale_bids;
  };
  [[nodiscard]] Saved save_state() const;
  /// Rejects (kInvalidArgument) a snapshot whose reputation vector does not
  /// match this scenario's CDN count.
  [[nodiscard]] core::Status restore_state(Saved saved);

 private:
  /// (cdn, share, cluster) — the identity of a bid across rounds.
  using StaleKey = std::array<std::uint32_t, 3>;
  struct StaleEntry {
    proto::BidMessage bid;
    std::size_t round = 0;
  };

  const sim::Scenario& scenario_;
  BrokerAgentConfig config_;
  broker::ReputationSystem reputation_;
  std::optional<std::vector<broker::ClientGroup>> demand_;
  std::vector<sim::Placement> placements_;
  std::vector<double> awarded_by_cdn_;
  /// Stale-bid cache (ordered so degraded-round substitution is
  /// deterministic), plus per-round telemetry.
  std::map<StaleKey, StaleEntry> stale_cache_;
  std::size_t optimize_round_ = 0;
  std::size_t stale_substituted_ = 0;
  std::size_t stale_cdns_ = 0;
  std::size_t fresh_cdns_ = 0;
  double stale_awarded_ = 0.0;
  double total_awarded_ = 0.0;
  /// Per city: winning clusters with cumulative client weights, for
  /// Delivery-Protocol resolution.
  struct CityChoice {
    std::vector<std::pair<cdn::ClusterId, double>> weighted_clusters;
    double total = 0.0;
    double cursor = 0.0;
  };
  std::vector<CityChoice> city_choices_;
};

/// Delivery-Protocol cluster frontend: serves at the requested bitrate,
/// degraded proportionally when the cluster is overloaded, and not at all
/// from clusters marked dark (their CDN failed mid-stream).
class ClusterService final : public proto::ClusterFrontend {
 public:
  ClusterService(const sim::Scenario& scenario, std::span<const double> cluster_loads);

  [[nodiscard]] proto::DeliveryMessage serve(const proto::RequestMessage& request) override;

  /// Bitrate requested per session must be registered before serve().
  void register_session(std::uint32_t session_id, double bitrate_mbps);

  /// Marks a cluster dark: serve() delivers 0 Mbps from it, which triggers
  /// the Delivery-Protocol failover (§6.3).
  void set_dark(cdn::ClusterId cluster, bool dark = true);

 private:
  const sim::Scenario& scenario_;
  std::vector<double> loads_;
  std::vector<bool> dark_;
  std::unordered_map<std::uint32_t, double> session_bitrate_;
};

}  // namespace vdx::market
