// Regional marketplace federation (paper §6.3, "Scalability limitations").
//
// "For scalability, instances of VDX's marketplace would most likely need to
//  focus on specific geographic regions ... However, this division comes at
//  a cost: limiting the broker's view limits the quality of the
//  optimization. Federating these different marketplaces remains an open
//  question."
//
// This module quantifies that trade-off: the world is partitioned into R
// regions (cities assigned to the nearest of R high-demand seed cities);
// each region runs an independent Marketplace round over its own clients
// and the clusters located inside it. Fewer clients and clusters per
// optimization means smaller (faster) solves — at the price of losing
// cross-region placements (e.g. serving an expensive country's clients from
// a cheap neighbour).
//
// Region solves are embarrassingly parallel and run on a core::ThreadPool
// when `threads > 1`; results merge in region order, so output is
// byte-identical to the serial path at any thread count (DESIGN.md §8).
#pragma once

#include <cstddef>
#include <vector>

#include "obs/observe.hpp"
#include "sim/metrics.hpp"

namespace vdx::market {

struct FederationConfig {
  std::size_t region_count = 4;
  sim::RunConfig run;
  /// Region solves run on this many threads (0 = hardware_concurrency,
  /// 1 = the legacy serial path). Same-seed output is byte-identical at any
  /// value.
  std::size_t threads = 1;
  /// Observability sinks. Per-region optimize wall time lands in the
  /// `federation.optimize_seconds` histogram (one sample per region solve);
  /// FederationResult::optimize_seconds is read back from the registry. A
  /// local registry is used when none is supplied. Worker threads touch only
  /// the (thread-safe) metrics registry; span and journal events are
  /// recorded by the coordinating thread in region order, so trace/journal
  /// exports stay byte-stable under concurrency.
  obs::Observer obs;
};

struct FederationResult {
  /// Effective region count: the requested count clamped to the number of
  /// cities (each region needs a distinct seed city).
  std::size_t region_count = 0;
  /// Cities per region (diagnostics), sized `region_count`.
  std::vector<std::size_t> region_city_counts;
  /// Combined metrics over all regions' placements.
  sim::DesignMetrics metrics;
  /// Clients whose region contained no usable cluster menu (served by the
  /// global fallback: any CDN, any cluster).
  double fallback_clients = 0.0;
  /// Bids contributed by the global fallback path, counted separately from
  /// the in-region bids so `largest_instance_options` (which includes them —
  /// they are part of that region's solve) can be decomposed.
  std::size_t fallback_bids = 0;
  /// Total wall time spent in the per-region optimizations (seconds).
  double optimize_seconds = 0.0;
  /// Largest single optimization instance (options count, in-region +
  /// fallback bids) — the scalability win: max instance size shrinks with
  /// region count.
  std::size_t largest_instance_options = 0;
};

/// Greedy farthest-point seeding: the top-demand city first, then cities
/// maximizing the minimum distance to the chosen seeds. Gives well-spread
/// regional exchanges. `count` is clamped to the city count (seeds are
/// distinct cities); throws std::invalid_argument on an empty world.
/// Exposed for tests.
[[nodiscard]] std::vector<geo::CityId> pick_region_seeds(const geo::World& world,
                                                         std::size_t count);

/// Runs the federated Marketplace. region_count == 1 reproduces the global
/// marketplace (up to partition bookkeeping).
[[nodiscard]] FederationResult run_federated_marketplace(
    const sim::Scenario& scenario, const FederationConfig& config = {});

}  // namespace vdx::market
