// Regional marketplace federation (paper §6.3, "Scalability limitations").
//
// "For scalability, instances of VDX's marketplace would most likely need to
//  focus on specific geographic regions ... However, this division comes at
//  a cost: limiting the broker's view limits the quality of the
//  optimization. Federating these different marketplaces remains an open
//  question."
//
// This module quantifies that trade-off: the world is partitioned into R
// regions (cities assigned to the nearest of R high-demand seed cities);
// each region runs an independent Marketplace round over its own clients
// and the clusters located inside it. Fewer clients and clusters per
// optimization means smaller (faster) solves — at the price of losing
// cross-region placements (e.g. serving an expensive country's clients from
// a cheap neighbour).
#pragma once

#include <vector>

#include "obs/observe.hpp"
#include "sim/metrics.hpp"

namespace vdx::market {

struct FederationConfig {
  std::size_t region_count = 4;
  sim::RunConfig run;
  /// Observability sinks. Per-region optimize wall time lands in the
  /// `federation.optimize_seconds` histogram (one sample per region solve);
  /// FederationResult::optimize_seconds is read back from the registry. A
  /// local registry is used when none is supplied.
  obs::Observer obs;
};

struct FederationResult {
  std::size_t region_count = 0;
  /// Cities per region (diagnostics).
  std::vector<std::size_t> region_city_counts;
  /// Combined metrics over all regions' placements.
  sim::DesignMetrics metrics;
  /// Clients whose region contained no usable cluster menu (served by the
  /// global fallback: any CDN, any cluster).
  double fallback_clients = 0.0;
  /// Total wall time spent in the per-region optimizations (seconds).
  double optimize_seconds = 0.0;
  /// Largest single optimization instance (options count) — the scalability
  /// win: max instance size shrinks with region count.
  std::size_t largest_instance_options = 0;
};

/// Runs the federated Marketplace. region_count == 1 reproduces the global
/// marketplace (up to partition bookkeeping).
[[nodiscard]] FederationResult run_federated_marketplace(
    const sim::Scenario& scenario, const FederationConfig& config = {});

}  // namespace vdx::market
