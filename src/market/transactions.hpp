// The Transactions design (paper §4.2, Table 2's last row).
//
// "After Optimize, the broker requests CDNs to commit the resources for the
//  chosen client-to-cluster mapping. If any CDN disapproves the mapping, the
//  mapping is withdrawn from all CDNs and a new mapping is computed. This
//  provides stronger Traffic Predictability guarantees than Marketplace by
//  making the process transaction-like; however, it is unrealistic, as CDNs
//  may never all approve the mapping. Thus, we do not consider it further."
//
// We implement it anyway, to quantify *why* the paper drops it: strategic
// CDNs veto mappings that award them less than a minimum utilization, each
// veto forces a full recompute with the vetoing CDN withdrawn, and the
// committed mapping (if any) is strictly worse than the single-round
// Marketplace result it started from.
#pragma once

#include <vector>

#include "market/agents.hpp"

namespace vdx::market {

struct TransactionConfig {
  CdnAgentConfig agent;
  BrokerAgentConfig broker;
  /// A CDN vetoes if it submitted bids but was awarded less than this
  /// fraction of its *fair share* of the client demand (total demand divided
  /// by the number of participating CDNs) — "I will not commit to a mapping
  /// that starves me". 0 disables strategic vetoes and the transaction
  /// commits in one round.
  double veto_threshold = 0.2;
  /// Give up after this many recompute rounds.
  std::size_t max_rounds = 12;
  /// Crash drill (§6.3): this CDN goes dark *between its Bid and the commit
  /// phase* of round `crash_round` — it bid, won traffic, then never
  /// answered the commit request. The in-flight transaction is aborted
  /// cleanly (mapping withdrawn from every CDN), the crashed CDN is
  /// withdrawn, and its clients are re-assigned in the recompute.
  /// UINT32_MAX disables the drill.
  std::uint32_t crash_cdn = UINT32_MAX;
  std::size_t crash_round = 0;
};

struct TransactionRound {
  std::size_t round = 0;
  std::vector<cdn::CdnId> vetoes;    // CDNs that rejected the mapping
  double mean_score = 0.0;           // quality of this round's mapping
  double mean_cost = 0.0;
  /// True when this round's mapping was aborted by a mid-protocol crash
  /// (no commit was even attempted).
  bool aborted = false;
};

struct TransactionResult {
  bool committed = false;
  std::size_t rounds_used = 0;
  std::vector<TransactionRound> rounds;
  /// Metrics of the final mapping (the committed one, or the last attempt).
  double final_mean_score = 0.0;
  double final_mean_cost = 0.0;
  /// CDNs that walked away before commit.
  std::size_t withdrawn_cdns = 0;
  /// Transactions aborted by mid-protocol crashes, and who crashed.
  std::size_t aborts = 0;
  std::vector<cdn::CdnId> crashed;
};

/// Runs the multi-round commit protocol.
[[nodiscard]] TransactionResult run_transactions(const sim::Scenario& scenario,
                                                 const TransactionConfig& config = {});

}  // namespace vdx::market
