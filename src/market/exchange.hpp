// The Video Delivery eXchange: repeated Decision-Protocol rounds between one
// broker and the catalog's CDNs (paper §6).
//
// The snapshot evaluation (sim::run_design) answers "what does one round
// decide"; the exchange answers the *dynamic* questions: do risk-averse
// bidding strategies learn traffic predictability over rounds (§6.3's
// "weak TP" argument), does the reputation system squeeze out fraudulent
// CDNs, and does the market keep functioning through CDN failures.
#pragma once

#include <memory>
#include <vector>

#include "market/agents.hpp"

namespace vdx::market {

enum class StrategyKind : std::uint8_t { kStatic, kRiskAverse };

struct ExchangeConfig {
  CdnAgentConfig agent;
  BrokerAgentConfig broker;
  StrategyKind strategy = StrategyKind::kRiskAverse;
};

/// Per-round outcome report.
struct RoundReport {
  std::size_t round = 0;
  proto::RoundStats wire;
  /// Broker-side quality (true scores) and delivery cost, client-weighted.
  double mean_score = 0.0;
  double mean_cost = 0.0;
  /// Fraction of broker clients on clusters loaded above capacity.
  double congested_fraction = 0.0;
  /// Traffic predictability: mean over CDNs of
  /// |expected win - actual win| / max(bid traffic, 1). Lower = more
  /// predictable. Static bidders expect to win everything, so they start
  /// (and stay) high; risk-averse bidders learn.
  double mean_prediction_error = 0.0;
  /// Per-CDN awarded traffic (Mbps).
  std::vector<double> awarded_mbps;
};

class VdxExchange {
 public:
  VdxExchange(const sim::Scenario& scenario, ExchangeConfig config = {});
  ~VdxExchange();
  VdxExchange(const VdxExchange&) = delete;
  VdxExchange& operator=(const VdxExchange&) = delete;

  /// Runs one Decision-Protocol round end to end over the wire codec.
  RoundReport run_round();
  /// Runs `rounds` rounds and returns all reports.
  std::vector<RoundReport> run(std::size_t rounds);

  /// §6.3 switches, effective from the next round.
  void set_failed(cdn::CdnId cdn, bool failed);
  void set_fraudulent(cdn::CdnId cdn, bool fraudulent);

  [[nodiscard]] const broker::ReputationSystem& reputation() const;
  [[nodiscard]] const sim::Scenario& scenario() const noexcept { return scenario_; }

  /// Runs the Delivery Protocol for one client against the latest round's
  /// decisions (throws if no round has been run).
  [[nodiscard]] proto::DeliveryOutcome deliver(std::uint32_t session_id,
                                               geo::CityId city, double bitrate_mbps);

 private:
  const sim::Scenario& scenario_;
  ExchangeConfig config_;
  std::vector<double> background_loads_;
  std::vector<std::unique_ptr<cdn::BiddingStrategy>> strategies_;
  std::vector<std::unique_ptr<VdxCdnAgent>> cdn_agents_;
  std::unique_ptr<VdxBrokerAgent> broker_agent_;
  std::size_t rounds_completed_ = 0;
  std::vector<double> last_cluster_loads_;
};

}  // namespace vdx::market
