// The Video Delivery eXchange: repeated Decision-Protocol rounds between one
// broker and the catalog's CDNs (paper §6).
//
// The snapshot evaluation (sim::run_design) answers "what does one round
// decide"; the exchange answers the *dynamic* questions: do risk-averse
// bidding strategies learn traffic predictability over rounds (§6.3's
// "weak TP" argument), does the reputation system squeeze out fraudulent
// CDNs, and does the market keep functioning through CDN failures.
#pragma once

#include <memory>
#include <vector>

#include "core/result.hpp"
#include "market/agents.hpp"
#include "obs/observe.hpp"

namespace vdx::market {

enum class StrategyKind : std::uint8_t { kStatic, kRiskAverse };

/// Chaos-transport knobs (§6.3). A profile with any non-zero fault rate
/// switches the exchange onto the logical-clock chaos transport with
/// deadlines, retries, and the broker's stale-bid degraded-round fallback.
struct ChaosConfig {
  proto::FaultProfile faults;
  proto::DeadlineConfig deadlines;
  /// A round is quorate when at least this fraction of live (non-failed)
  /// CDNs delivered fresh bids within their deadlines.
  double quorum_fraction = 0.67;
};

/// Overload-graceful exchange policy (DESIGN.md §11): per-round admission
/// control on the broker's Gathered demand, plus the Pathan/Buyya-style
/// QoS-driven peering response in the Delivery Protocol.
struct OverloadConfig {
  /// Demand budget per round, Mbps; when the broker's total demand exceeds
  /// it, the overflow is shed lowest-bitrate-groups-first before the
  /// decision round ever prices it. 0 disables admission control.
  double demand_budget_mbps = 0.0;
  /// Delivery-side saturation threshold as a fraction of cluster capacity:
  /// clusters whose post-round load exceeds threshold x capacity are
  /// treated as dark in deliver(), re-homing sessions to healthy clusters
  /// (QoS peering). A session no healthy cluster can take fails with
  /// Errc::kOverloaded instead of landing on a saturated one. 0 disables.
  double saturation_threshold = 0.0;
};

/// What one shed_to_budget() pass removed.
struct AdmissionReport {
  double shed_mbps = 0.0;
  double shed_clients = 0.0;
  /// Groups fully drained (and removed) by the trim.
  std::size_t groups_dropped = 0;
};

/// Trims `groups` in place to `budget_mbps` total demand, shedding the
/// lowest-value demand first (ascending bitrate, group id as the
/// deterministic tiebreak; the marginal group is shrunk, not dropped).
/// Emptied groups are removed and ids renumbered densely, so the result is
/// a valid broker demand set. Fails with Errc::kInvalidArgument on a
/// non-finite or negative budget; budget 0 sheds everything.
[[nodiscard]] core::Result<AdmissionReport> shed_to_budget(
    std::vector<broker::ClientGroup>& groups, double budget_mbps);

struct ExchangeConfig {
  CdnAgentConfig agent;
  BrokerAgentConfig broker;
  StrategyKind strategy = StrategyKind::kRiskAverse;
  ChaosConfig chaos;
  OverloadConfig overload;
  /// Observability sinks, threaded through the protocol engine, broker
  /// optimize pipeline, and solver. The exchange always maintains an
  /// `exchange.*` metrics registry (an internal one when none is supplied);
  /// RoundReport's fault telemetry is *read back* from those counters, so
  /// the report, the registry, and the journal cannot drift apart.
  obs::Observer obs;
};

/// Per-round outcome report.
struct RoundReport {
  std::size_t round = 0;
  proto::RoundStats wire;
  /// Broker-side quality (true scores) and delivery cost, client-weighted.
  double mean_score = 0.0;
  double mean_cost = 0.0;
  /// Fraction of broker clients on clusters loaded above capacity.
  double congested_fraction = 0.0;
  /// Demand shed by admission control before this round (0 with the policy
  /// off or under budget).
  double shed_mbps = 0.0;
  double shed_clients = 0.0;
  /// Groups fully drained by admission control this round.
  std::size_t shed_groups = 0;
  /// Traffic predictability: mean over CDNs of
  /// |expected win - actual win| / max(bid traffic, 1). Lower = more
  /// predictable. Static bidders expect to win everything, so they start
  /// (and stay) high; risk-averse bidders learn.
  double mean_prediction_error = 0.0;
  /// Per-CDN awarded traffic (Mbps). Under chaos this is the broker-side
  /// ledger, which stays correct when Accept messages are lost.
  std::vector<double> awarded_mbps;

  /// Fault telemetry (all zero / false / quorate on a perfect transport).
  /// A round is degraded when any message timed out, any stale cached bid
  /// was substituted, or the fresh-bidder quorum was missed.
  bool degraded = false;
  bool quorum_met = true;
  std::size_t stale_bids_used = 0;
  /// Fraction of awarded traffic that went to stale (cached) bids.
  double stale_bid_share = 0.0;
  /// Timed-out messages / attempted messages.
  double timeout_rate = 0.0;
};

/// The exchange surface the serving daemon (and any other driver) programs
/// against: one logical marketplace that answers rounds, takes live demand,
/// and checkpoints itself. Two implementations exist — the monolithic
/// VdxExchange below and market::ShardedExchange (shard.hpp), which spreads
/// the same marketplace across N worker shards behind a coordinator. The
/// differential shard test layer proves the two produce byte-identical
/// settlement, so drivers can treat the choice as a deployment knob.
class ExchangeFrontend {
 public:
  virtual ~ExchangeFrontend() = default;

  /// Runs one Decision-Protocol round end to end.
  virtual RoundReport run_round() = 0;
  /// Feeds an incremental load snapshot, effective from the next round (see
  /// VdxExchange::set_active_load for the contract).
  virtual void set_active_load(std::span<const broker::ClientGroup> groups,
                               std::span<const double> background_loads) = 0;
  /// Retunes the per-round admission budget (Mbps); 0 disables.
  virtual void set_demand_budget(double budget_mbps) = 0;
  [[nodiscard]] virtual double demand_budget() const = 0;
  [[nodiscard]] virtual std::size_t rounds_completed() const = 0;
  /// Checkpointable state; restore on a freshly built peer continues
  /// byte-identically.
  [[nodiscard]] virtual std::vector<std::uint8_t> save_state() const = 0;
  /// Non-throwing save_state. A frontend whose state gathering can fail
  /// (e.g. a sharded topology with an unrecoverable worker) returns the
  /// typed error instead of throwing — checkpoint paths that must survive a
  /// degraded exchange call this one. The monolith's save never fails, so
  /// the default just wraps save_state().
  [[nodiscard]] virtual core::Result<std::vector<std::uint8_t>> try_save_state()
      const {
    return save_state();
  }
  [[nodiscard]] virtual core::Status restore_state(
      std::span<const std::uint8_t> bytes) = 0;
  /// Runs the Delivery Protocol for one client against the latest round.
  [[nodiscard]] virtual core::Result<proto::DeliveryOutcome> deliver(
      std::uint32_t session_id, geo::CityId city, double bitrate_mbps) = 0;
  /// The registry backing round telemetry.
  [[nodiscard]] virtual const obs::MetricsRegistry& metrics() const = 0;
  /// Internal links currently quarantined by an open circuit breaker. The
  /// monolith has no internal links, so the default is 0; the sharded
  /// frontend reports open shard-link breakers (the daemon folds this into
  /// its brownout signals).
  [[nodiscard]] virtual std::size_t open_breakers() const { return 0; }
};

class VdxExchange final : public ExchangeFrontend {
 public:
  VdxExchange(const sim::Scenario& scenario, ExchangeConfig config = {});
  ~VdxExchange() override;
  VdxExchange(const VdxExchange&) = delete;
  VdxExchange& operator=(const VdxExchange&) = delete;

  /// Runs one Decision-Protocol round end to end over the wire codec.
  RoundReport run_round() override;
  /// Runs `rounds` rounds and returns all reports.
  std::vector<RoundReport> run(std::size_t rounds);

  /// §6.3 switches, effective from the next round.
  void set_failed(cdn::CdnId cdn, bool failed);
  void set_fraudulent(cdn::CdnId cdn, bool fraudulent);

  /// Feeds the exchange an incremental load snapshot, effective from the
  /// next round: `groups` replaces the broker's Gathered demand (ids dense,
  /// equal to index — what broker::group_sessions emits) and
  /// `background_loads` (Mbps per cluster) replaces the ambient traffic the
  /// CDN agents net out of their spare capacity. A streaming timeline calls
  /// this between epochs so each decision round prices the *current*
  /// audience, not the whole-trace snapshot.
  void set_active_load(std::span<const broker::ClientGroup> groups,
                       std::span<const double> background_loads) override;

  /// Retunes the per-round admission budget (Mbps), effective from the next
  /// round; 0 disables admission control. The serving daemon uses this to
  /// adjust backpressure on a live exchange without rebuilding it. Throws
  /// std::invalid_argument on a non-finite or negative budget.
  void set_demand_budget(double budget_mbps) override;
  [[nodiscard]] double demand_budget() const noexcept override {
    return config_.overload.demand_budget_mbps;
  }

  /// Decision rounds completed since construction (restored by
  /// restore_state, so a resumed exchange keeps counting where it left off).
  [[nodiscard]] std::size_t rounds_completed() const noexcept override {
    return rounds_completed_;
  }

  [[nodiscard]] const broker::ReputationSystem& reputation() const;
  [[nodiscard]] const sim::Scenario& scenario() const noexcept { return scenario_; }

  /// Runs the Delivery Protocol for one client against the latest round's
  /// decisions. Fails with Errc::kNotReady if no round has been run yet.
  /// Clusters of CDNs currently marked failed are dark: sessions resolved to
  /// them are re-homed via the directory failover (outcome records it).
  [[nodiscard]] core::Result<proto::DeliveryOutcome> deliver(
      std::uint32_t session_id, geo::CityId city, double bitrate_mbps) override;

  /// Winning allocations of the last Optimize — (group index into the
  /// current demand, cluster, clients, price, true score). The shard
  /// equivalence layer byte-compares this surface against the coordinator's
  /// settlement.
  [[nodiscard]] std::span<const sim::Placement> placements() const noexcept {
    return broker_agent_->placements();
  }

  /// The demand the next round will price (set_active_load override when
  /// present, post-admission-shed if a budgeted round trimmed it). Placement
  /// group indices refer into this span — the shard coordinator uses it to
  /// route the settled allocation back to the owning shards.
  [[nodiscard]] std::span<const broker::ClientGroup> active_demand() const noexcept {
    return broker_agent_->demand();
  }

  /// Chaos-transport counters accumulated since construction (empty profile:
  /// all zero).
  [[nodiscard]] const proto::FaultCounters& fault_counters() const;

  /// The registry backing RoundReport telemetry: the external one from
  /// ExchangeConfig::obs when provided, the exchange's own otherwise.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept override {
    return *obs_.metrics;
  }

  /// Serializes every piece of cross-round exchange state — the broker's
  /// reputation ledger / stale-bid cache / demand override, each strategy's
  /// learned market state, the CDN agents' fault switches and award
  /// bookkeeping, the chaos injector's RNG positions, the round counter, and
  /// the logical clock — into a checksummed state::Snapshot envelope. A
  /// fresh exchange built from the same Scenario + ExchangeConfig that
  /// restore_state()s these bytes produces byte-identical RoundReports from
  /// the next round onward.
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override;
  /// Rejects corrupt bytes (Errc::kCorruptSnapshot / kVersionMismatch via
  /// the envelope) and snapshots from an incompatible configuration —
  /// different CDN count, cluster count, or transport kind
  /// (Errc::kInvalidArgument). On failure the exchange is unchanged.
  [[nodiscard]] core::Status restore_state(
      std::span<const std::uint8_t> bytes) override;

 private:
  const sim::Scenario& scenario_;
  ExchangeConfig config_;
  std::vector<double> background_loads_;
  /// Menus are identical every round (the catalog and mapping are fixed for
  /// the exchange's lifetime): built once here, shared read-only by all CDN
  /// agents instead of each agent re-matching per announce().
  std::unique_ptr<cdn::CandidateMenuCache> menu_cache_;
  std::vector<std::unique_ptr<cdn::BiddingStrategy>> strategies_;
  std::vector<std::unique_ptr<VdxCdnAgent>> cdn_agents_;
  std::unique_ptr<VdxBrokerAgent> broker_agent_;
  std::unique_ptr<proto::FaultInjector> injector_;
  std::size_t rounds_completed_ = 0;
  std::vector<double> last_cluster_loads_;

  /// Fallback registry when ExchangeConfig::obs brings none.
  obs::MetricsRegistry owned_metrics_;
  /// Effective observer handed to every layer (metrics always non-null).
  obs::Observer obs_;
  /// Pre-interned `exchange.*` handles (hot path: one atomic op each).
  struct ExchangeCounters {
    obs::Counter rounds, messages, timeouts, retries, bids, stale_bids,
        degraded_rounds, quorum_misses, awarded_mbps, stale_awarded_mbps,
        failovers, shed_mbps, shed_clients, shed_rounds, peering_rehomed,
        peering_rejected;
    obs::Gauge mean_score, mean_cost, prediction_error;
  } counters_;
};

}  // namespace vdx::market
