#include "market/shard.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "market/federation.hpp"
#include "proto/wire.hpp"
#include "sim/designs.hpp"
#include "sim/scenario.hpp"

namespace vdx::market {
namespace {

using core::Errc;
using core::Result;
using core::Status;
using proto::ShardDemandMode;
using proto::ShardFrame;
using proto::ShardFrameType;

// Worker snapshot sections (its own envelope, ids disjoint from the
// monolith exchange's 10-14 purely for greppability).
constexpr std::uint32_t kWorkerCoreSection = 20;
constexpr std::uint32_t kWorkerJournalSection = 21;
constexpr std::uint32_t kWorkerCountersSection = 22;
// Coordinator snapshot sections.
constexpr std::uint32_t kCoordCoreSection = 30;
constexpr std::uint32_t kCoordSettlementSection = 31;
constexpr std::uint32_t kCoordSlicesSection = 32;
constexpr std::uint32_t kCoordWorkersSection = 33;

[[nodiscard]] Status invalid(std::string message) {
  return Status::failure(Errc::kInvalidArgument, std::move(message));
}

[[nodiscard]] bool finite_nonneg(double v) noexcept {
  return std::isfinite(v) && v >= 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardBackend
// ---------------------------------------------------------------------------

std::string_view to_string(ShardBackend backend) noexcept {
  switch (backend) {
    case ShardBackend::kInproc: return "inproc";
    case ShardBackend::kProcess: return "process";
  }
  return "inproc";
}

std::optional<ShardBackend> shard_backend_from(std::string_view name) noexcept {
  if (name == "inproc") return ShardBackend::kInproc;
  if (name == "process") return ShardBackend::kProcess;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// ShardPlan
// ---------------------------------------------------------------------------

ShardPlan ShardPlan::build(const geo::World& world, std::size_t shards) {
  ShardPlan plan;
  const auto cities = world.cities();
  plan.shard_count = std::clamp<std::size_t>(shards, 1, std::max<std::size_t>(
                                                           cities.size(), 1));
  const auto seeds = pick_region_seeds(world, plan.shard_count);
  plan.shard_count = seeds.size();
  plan.shard_of_city.resize(cities.size(), 0);
  plan.city_counts.assign(plan.shard_count, 0);
  for (const geo::City& city : cities) {
    std::uint32_t best = 0;
    double best_km = world.distance_km(city.id, seeds[0]);
    for (std::size_t s = 1; s < seeds.size(); ++s) {
      const double km = world.distance_km(city.id, seeds[s]);
      if (km < best_km) {  // strict: the lower-index seed wins ties
        best_km = km;
        best = static_cast<std::uint32_t>(s);
      }
    }
    plan.shard_of_city[city.id.value()] = best;
    ++plan.city_counts[best];
  }
  return plan;
}

std::uint64_t ShardPlan::hash() const noexcept {
  proto::ByteWriter w;
  w.write_u64(static_cast<std::uint64_t>(shard_count));
  for (const std::uint32_t s : shard_of_city) w.write_u32(s);
  return state::fnv1a(w.data());
}

// ---------------------------------------------------------------------------
// SessionLedger
// ---------------------------------------------------------------------------

core::Status SessionLedger::apply(std::span<const proto::ShardSessionAdd> adds,
                                  std::span<const std::uint32_t> removes) {
  // Validate the whole batch first: a rejected batch must mutate nothing.
  // (Within a batch, adds are applied before removes.)
  std::map<std::uint32_t, std::pair<std::uint32_t, double>> batch;
  for (const proto::ShardSessionAdd& add : adds) {
    if (!std::isfinite(add.bitrate_mbps) || add.bitrate_mbps <= 0.0) {
      return invalid("session ledger: bitrate must be finite and > 0");
    }
    const std::pair<std::uint32_t, double> data{add.city, add.bitrate_mbps};
    if (const auto it = sessions_.find(add.id); it != sessions_.end()) {
      if (it->second != data) {
        return invalid("session ledger: session " + std::to_string(add.id) +
                       " re-added with different city/bitrate");
      }
      continue;  // idempotent re-add
    }
    if (const auto it = batch.find(add.id); it != batch.end()) {
      if (it->second != data) {
        return invalid("session ledger: session " + std::to_string(add.id) +
                       " added twice with different city/bitrate");
      }
      continue;
    }
    batch.emplace(add.id, data);
  }
  // Commit.
  for (const auto& [id, data] : batch) {
    sessions_.emplace(id, data);
    counts_[data] += 1.0;
  }
  for (const std::uint32_t id : removes) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;  // idempotent re-remove
    const auto cit = counts_.find(it->second);
    if (cit != counts_.end()) {
      cit->second -= 1.0;
      if (cit->second <= 0.5) counts_.erase(cit);
    }
    sessions_.erase(it);
  }
  return core::ok_status();
}

std::vector<broker::ClientGroup> SessionLedger::groups() const {
  std::vector<broker::ClientGroup> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    broker::ClientGroup group;
    group.id = broker::ShareId{static_cast<std::uint32_t>(out.size())};
    group.city = geo::CityId{key.first};
    group.isp = 0;
    group.bitrate_mbps = key.second;
    group.client_count = count;
    out.push_back(group);
  }
  return out;
}

void SessionLedger::clear() noexcept {
  sessions_.clear();
  counts_.clear();
}

std::vector<proto::ShardSessionAdd> SessionLedger::sessions() const {
  std::vector<proto::ShardSessionAdd> out;
  out.reserve(sessions_.size());
  for (const auto& [id, data] : sessions_) {
    out.push_back(proto::ShardSessionAdd{id, data.first, data.second});
  }
  return out;
}

// ---------------------------------------------------------------------------
// ShardWorker
// ---------------------------------------------------------------------------

ShardWorker::ShardWorker(std::uint32_t shard) : shard_(shard), journal_(4096) {
  counters_.frames = metrics_.counter("shard.frames");
  counters_.errors = metrics_.counter("shard.errors");
  counters_.rounds = metrics_.counter("shard.rounds");
  counters_.groups_announced = metrics_.counter("shard.groups_announced");
  counters_.placements = metrics_.counter("shard.placements");
  counters_.awarded_mbps = metrics_.counter("shard.awarded_mbps");
  counters_.demand_mbps = metrics_.gauge("shard.demand_mbps");
  counters_.sessions_active = metrics_.gauge("shard.sessions_active");
}

proto::ShardFrame ShardWorker::ack(const proto::ShardFrame& request,
                                   std::uint64_t value) const {
  ShardFrame out;
  out.type = ShardFrameType::kAck;
  out.shard = shard_;
  out.round = request.round;
  out.payload = proto::encode_shard_ack(value);
  return out;
}

proto::ShardFrame ShardWorker::fail(const proto::ShardFrame& request,
                                    core::Errc code, std::string message) {
  counters_.errors.add();
  ShardFrame out;
  out.type = ShardFrameType::kError;
  out.shard = shard_;
  out.round = request.round;
  out.payload = proto::encode_shard_error(code, message);
  return out;
}

void ShardWorker::refresh_gauges() {
  double demand = 0.0;
  if (mode_ == ShardDemandMode::kDemand) {
    for (const proto::ShardGroup& g : demand_) demand += g.group.demand_mbps();
  } else if (mode_ == ShardDemandMode::kSessions) {
    for (const broker::ClientGroup& g : ledger_.groups()) demand += g.demand_mbps();
  }
  counters_.demand_mbps.set(demand);
  counters_.sessions_active.set(static_cast<double>(ledger_.size()));
}

proto::ShardFrame ShardWorker::on_hello(const proto::ShardFrame& request) {
  auto decoded = proto::decode_shard_hello(request.payload);
  if (!decoded.ok()) {
    return fail(request, decoded.error().code, decoded.error().message);
  }
  const proto::ShardHello& hello = decoded.value();
  if (hello.shard != shard_) {
    return fail(request, Errc::kInvalidArgument,
                "hello addressed to shard " + std::to_string(hello.shard));
  }
  if (configured_) {
    if (hello == context_) return ack(request, 0);  // idempotent re-hello
    return fail(request, Errc::kInvalidArgument,
                "worker already configured with a different topology");
  }
  context_ = hello;
  journal_ = obs::RunJournal{static_cast<std::size_t>(
      std::max<std::uint64_t>(hello.journal_capacity, 1))};
  if (!hello.checkpoint_dir.empty()) {
    store_.emplace(std::filesystem::path{hello.checkpoint_dir},
                   std::max<std::size_t>(hello.checkpoint_keep, 1));
  }
  configured_ = true;
  return ack(request, 0);
}

proto::ShardFrame ShardWorker::on_set_demand(const proto::ShardFrame& request) {
  auto decoded = proto::decode_shard_groups(request.payload);
  if (!decoded.ok()) {
    return fail(request, decoded.error().code, decoded.error().message);
  }
  if (ledger_.size() > 0) {
    return fail(request, Errc::kInvalidArgument,
                "worker is session-fed; explicit demand slices are exclusive");
  }
  for (const proto::ShardGroup& g : decoded.value()) {
    if (g.global_id == proto::kDerivedGroupId) {
      return fail(request, Errc::kInvalidArgument,
                  "demand slice group without a global id");
    }
    if (g.group.city.value() >= context_.city_count) {
      return fail(request, Errc::kInvalidArgument,
                  "demand slice references unknown city " +
                      std::to_string(g.group.city.value()));
    }
    if (!std::isfinite(g.group.bitrate_mbps) || g.group.bitrate_mbps <= 0.0 ||
        !finite_nonneg(g.group.client_count)) {
      return fail(request, Errc::kInvalidArgument,
                  "demand slice group with non-finite bitrate/clients");
    }
  }
  demand_ = std::move(decoded).value();  // replace: trivially idempotent
  mode_ = ShardDemandMode::kDemand;
  refresh_gauges();
  return ack(request, static_cast<std::uint64_t>(demand_.size()));
}

proto::ShardFrame ShardWorker::on_session_delta(const proto::ShardFrame& request) {
  auto decoded = proto::decode_session_delta(request.payload);
  if (!decoded.ok()) {
    return fail(request, decoded.error().code, decoded.error().message);
  }
  if (mode_ == ShardDemandMode::kDemand) {
    return fail(request, Errc::kInvalidArgument,
                "worker holds an explicit demand slice; session deltas are exclusive");
  }
  for (const proto::ShardSessionAdd& add : decoded.value().adds) {
    if (add.city >= context_.city_count) {
      return fail(request, Errc::kInvalidArgument,
                  "session references unknown city " + std::to_string(add.city));
    }
  }
  if (auto status = ledger_.apply(decoded.value().adds, decoded.value().removes);
      !status.ok()) {
    return fail(request, status.error().code, status.error().message);
  }
  mode_ = ShardDemandMode::kSessions;
  refresh_gauges();
  return ack(request, static_cast<std::uint64_t>(ledger_.size()));
}

proto::ShardFrame ShardWorker::on_collect(const proto::ShardFrame& request) {
  proto::ShardCandidates candidates;
  candidates.mode = mode_;
  if (mode_ == ShardDemandMode::kDemand) {
    candidates.groups = demand_;
  } else if (mode_ == ShardDemandMode::kSessions) {
    for (const broker::ClientGroup& g : ledger_.groups()) {
      candidates.groups.push_back(proto::ShardGroup{proto::kDerivedGroupId, g});
    }
  }
  // Round-guarded bookkeeping: a chaos retry of the same collect must not
  // double-record (the journal/counters are part of the deterministic
  // surface the equivalence suite byte-compares).
  if (last_collect_logged_round_ == kNoRound ||
      request.round > last_collect_logged_round_) {
    journal_.begin_round(static_cast<std::uint32_t>(request.round));
    journal_.record(obs::EventKind::kRoundStart, shard_,
                    static_cast<double>(candidates.groups.size()), request.round);
    counters_.rounds.add();
    counters_.groups_announced.add(static_cast<double>(candidates.groups.size()));
    last_collect_logged_round_ = request.round;
  }
  ShardFrame out;
  out.type = ShardFrameType::kBidCandidates;
  out.shard = shard_;
  out.round = request.round;
  out.payload = proto::encode_candidates(candidates);
  return out;
}

proto::ShardFrame ShardWorker::on_allocation(const proto::ShardFrame& request) {
  auto decoded = proto::decode_allocation(request.payload);
  if (!decoded.ok()) {
    return fail(request, decoded.error().code, decoded.error().message);
  }
  // Idempotent per round: a chaos retry of an already-applied allocation is
  // re-acked without touching state.
  if (last_allocation_round_ != kNoRound && request.round <= last_allocation_round_) {
    return ack(request, request.round);
  }
  const auto cluster_count =
      static_cast<std::uint32_t>(context_.cdn_of_cluster.size());
  for (const proto::ShardPlacement& p : decoded.value()) {
    if (p.cluster >= cluster_count) {
      return fail(request, Errc::kInvalidArgument,
                  "allocation references unknown cluster " + std::to_string(p.cluster));
    }
    if (!finite_nonneg(p.clients) || !std::isfinite(p.bitrate_mbps)) {
      return fail(request, Errc::kInvalidArgument,
                  "allocation with non-finite clients/bitrate");
    }
  }
  // Validated: commit (never before this point — a rejected allocation must
  // not partially apply).
  journal_.begin_round(static_cast<std::uint32_t>(request.round));
  double awarded = 0.0;
  for (const proto::ShardPlacement& p : decoded.value()) {
    journal_.record(obs::EventKind::kBid, context_.cdn_of_cluster[p.cluster],
                    p.clients, request.round);
    awarded += p.clients * p.bitrate_mbps;
  }
  journal_.record(obs::EventKind::kRoundEnd, shard_, awarded, request.round);
  counters_.placements.add(static_cast<double>(decoded.value().size()));
  counters_.awarded_mbps.add(awarded);
  rounds_applied_ = request.round + 1;
  last_allocation_round_ = request.round;
  return ack(request, request.round);
}

proto::ShardFrame ShardWorker::on_checkpoint(const proto::ShardFrame& request) {
  if (!store_.has_value()) {
    return fail(request, Errc::kInvalidArgument,
                "worker has no checkpoint store configured");
  }
  const auto bytes = save_state();
  if (auto status = store_->write(request.round, bytes); !status.ok()) {
    return fail(request, status.error().code, status.error().message);
  }
  return ack(request, request.round);
}

proto::ShardFrame ShardWorker::on_resume_from_store(const proto::ShardFrame& request) {
  if (!store_.has_value()) {
    return fail(request, Errc::kInvalidArgument,
                "worker has no checkpoint store configured");
  }
  auto loaded = store_->load_latest([this](std::span<const std::uint8_t> bytes) {
    // Probe on a sibling so a corrupt newest checkpoint falls back to the
    // next-oldest instead of wedging this worker half-restored.
    ShardWorker probe{shard_};
    probe.configured_ = true;
    probe.context_ = context_;
    probe.journal_ = obs::RunJournal{journal_.capacity()};
    return probe.restore_state(bytes);
  });
  if (!loaded.ok()) {
    return fail(request, loaded.error().code, loaded.error().message);
  }
  if (auto status = restore_state(loaded.value().bytes); !status.ok()) {
    return fail(request, status.error().code, status.error().message);
  }
  return ack(request, rounds_applied_);
}

proto::ShardFrame ShardWorker::handle(const proto::ShardFrame& request) {
  counters_.frames.add();
  if (request.type == ShardFrameType::kHello) return on_hello(request);
  if (!configured_) {
    return fail(request, Errc::kNotReady, "worker awaits hello");
  }
  if (request.shard != shard_) {
    return fail(request, Errc::kInvalidArgument,
                "frame addressed to shard " + std::to_string(request.shard));
  }
  switch (request.type) {
    case ShardFrameType::kSetDemand: return on_set_demand(request);
    case ShardFrameType::kSessionDelta: return on_session_delta(request);
    case ShardFrameType::kCollect: return on_collect(request);
    case ShardFrameType::kAllocation: return on_allocation(request);
    case ShardFrameType::kStateRequest: {
      ShardFrame out;
      out.type = ShardFrameType::kStateResponse;
      out.shard = shard_;
      out.round = request.round;
      out.payload = save_state();
      return out;
    }
    case ShardFrameType::kRestoreState: {
      if (auto status = restore_state(request.payload); !status.ok()) {
        return fail(request, status.error().code, status.error().message);
      }
      return ack(request, rounds_applied_);
    }
    case ShardFrameType::kCheckpoint: return on_checkpoint(request);
    case ShardFrameType::kResumeFromStore: return on_resume_from_store(request);
    case ShardFrameType::kJournalRequest: {
      proto::ShardJournalSlice slice;
      slice.total_recorded = journal_.total_recorded();
      slice.round = journal_.current_round();
      slice.events = journal_.events();
      ShardFrame out;
      out.type = ShardFrameType::kJournalSlice;
      out.shard = shard_;
      out.round = request.round;
      out.payload = proto::encode_journal_slice(slice);
      return out;
    }
    case ShardFrameType::kShutdown: return ack(request, rounds_applied_);
    default:
      return fail(request, Errc::kInvalidArgument, "unexpected frame type");
  }
}

std::vector<std::uint8_t> ShardWorker::handle_bytes(
    std::span<const std::uint8_t> bytes, bool* shutdown) {
  auto decoded = proto::try_decode_shard_frame(bytes);
  if (!decoded.ok()) {
    counters_.frames.add();
    counters_.errors.add();
    ShardFrame out;
    out.type = ShardFrameType::kError;
    out.shard = shard_;
    out.payload =
        proto::encode_shard_error(decoded.error().code, decoded.error().message);
    return proto::encode_shard_frame(out);
  }
  const ShardFrame response = handle(decoded.value());
  if (shutdown != nullptr && decoded.value().type == ShardFrameType::kShutdown &&
      response.type == ShardFrameType::kAck) {
    *shutdown = true;
  }
  return proto::encode_shard_frame(response);
}

int ShardWorker::serve_fd(std::uint32_t shard, int fd) {
  ShardWorker worker{shard};
  for (;;) {
    auto request = net::read_frame_fd(fd);
    if (!request.ok()) {
      // EOF (coordinator gone) is a clean exit; a framing-level length lie
      // leaves the stream unsynchronized, so bail out.
      return request.error().code == Errc::kUnavailable ? 0 : 1;
    }
    bool shutdown = false;
    const auto response = worker.handle_bytes(request.value(), &shutdown);
    if (auto status = net::write_frame_fd(fd, response); !status.ok()) return 1;
    if (shutdown) return 0;
  }
}

std::vector<std::uint8_t> ShardWorker::save_state() const {
  state::SnapshotWriter writer;
  {
    proto::ByteWriter w;
    w.write_u32(shard_);
    w.write_u32(context_.shard_count);
    w.write_u32(context_.city_count);
    w.write_u64(context_.plan_hash);
    w.write_u64(rounds_applied_);
    w.write_u64(last_allocation_round_);
    w.write_u64(last_collect_logged_round_);
    w.write_u8(static_cast<std::uint8_t>(mode_));
    const auto demand_bytes = proto::encode_shard_groups(demand_);
    w.write_u32(static_cast<std::uint32_t>(demand_bytes.size()));
    w.write_bytes(demand_bytes);
    const auto sessions = ledger_.sessions();
    w.write_u32(static_cast<std::uint32_t>(sessions.size()));
    for (const proto::ShardSessionAdd& s : sessions) {
      w.write_u32(s.id);
      w.write_u32(s.city);
      w.write_f64(s.bitrate_mbps);
    }
    writer.add_section(kWorkerCoreSection, w.take());
  }
  {
    proto::ShardJournalSlice slice;
    slice.total_recorded = journal_.total_recorded();
    slice.round = journal_.current_round();
    slice.events = journal_.events();
    writer.add_section(kWorkerJournalSection, proto::encode_journal_slice(slice));
  }
  {
    // Deterministic counters only: shard.frames/shard.errors depend on link
    // chaos and retry luck, so a restored worker must NOT inherit them — the
    // deterministic surfaces are what the kill-and-resume drill compares.
    proto::ByteWriter w;
    const std::pair<const char*, double> saved[] = {
        {"shard.rounds", counters_.rounds.value()},
        {"shard.groups_announced", counters_.groups_announced.value()},
        {"shard.placements", counters_.placements.value()},
        {"shard.awarded_mbps", counters_.awarded_mbps.value()},
    };
    w.write_u32(static_cast<std::uint32_t>(std::size(saved)));
    for (const auto& [name, value] : saved) {
      w.write_string(name);
      w.write_f64(value);
    }
    writer.add_section(kWorkerCountersSection, w.take());
  }
  return writer.finish();
}

core::Status ShardWorker::restore_state(std::span<const std::uint8_t> bytes) {
  if (!configured_) {
    return Status::failure(Errc::kNotReady, "worker awaits hello before restore");
  }
  auto parsed = state::SnapshotView::parse(bytes);
  if (!parsed.ok()) return Status{parsed.error()};
  const state::SnapshotView& view = parsed.value();
  const state::Section* core_section = view.find(kWorkerCoreSection);
  const state::Section* journal_section = view.find(kWorkerJournalSection);
  const state::Section* counters_section = view.find(kWorkerCountersSection);
  if (core_section == nullptr || journal_section == nullptr ||
      counters_section == nullptr) {
    return Status::failure(Errc::kCorruptSnapshot, "worker snapshot: missing section");
  }

  // Decode EVERYTHING into locals before touching any member: a corrupt
  // snapshot must leave the worker exactly as it was.
  std::uint64_t rounds_applied = 0;
  std::uint64_t last_allocation = 0;
  std::uint64_t last_collect = 0;
  ShardDemandMode mode = ShardDemandMode::kNone;
  std::vector<proto::ShardGroup> demand;
  std::vector<proto::ShardSessionAdd> sessions;
  try {
    proto::ByteReader r{core_section->bytes};
    const std::uint32_t shard = r.read_u32();
    const std::uint32_t shard_count = r.read_u32();
    const std::uint32_t city_count = r.read_u32();
    const std::uint64_t plan_hash = r.read_u64();
    if (shard != shard_ || shard_count != context_.shard_count ||
        city_count != context_.city_count || plan_hash != context_.plan_hash) {
      return invalid("worker snapshot: taken under a different shard topology");
    }
    rounds_applied = r.read_u64();
    last_allocation = r.read_u64();
    last_collect = r.read_u64();
    const std::uint8_t mode_raw = r.read_u8();
    if (mode_raw > static_cast<std::uint8_t>(ShardDemandMode::kSessions)) {
      return Status::failure(Errc::kCorruptSnapshot, "worker snapshot: bad mode");
    }
    mode = static_cast<ShardDemandMode>(mode_raw);
    const std::uint32_t demand_len = r.read_u32();
    auto decoded = proto::decode_shard_groups(r.read_bytes(demand_len));
    if (!decoded.ok()) return Status{decoded.error()};
    demand = std::move(decoded).value();
    const std::uint32_t session_count = r.read_u32();
    if (session_count > r.remaining() / 16) {
      return Status::failure(Errc::kCorruptSnapshot,
                             "worker snapshot: session count lie");
    }
    sessions.reserve(session_count);
    for (std::uint32_t i = 0; i < session_count; ++i) {
      proto::ShardSessionAdd s;
      s.id = r.read_u32();
      s.city = r.read_u32();
      s.bitrate_mbps = r.read_f64();
      sessions.push_back(s);
    }
    if (!r.exhausted()) {
      return Status::failure(Errc::kCorruptSnapshot,
                             "worker snapshot: trailing core bytes");
    }
  } catch (const proto::WireError& e) {
    return Status::failure(Errc::kCorruptSnapshot,
                           std::string{"worker snapshot: "} + e.what());
  }

  // Validate the sessions on a scratch ledger in the decode phase: a
  // checksum-valid snapshot can still carry an unappliable session set
  // (non-finite/<=0 bitrate, conflicting duplicate ids), and finding that
  // out after the commit started would leave the worker half-mutated.
  SessionLedger ledger;
  if (!sessions.empty()) {
    if (auto status = ledger.apply(sessions, {}); !status.ok()) return status;
  }

  auto journal_slice = proto::decode_journal_slice(journal_section->bytes);
  if (!journal_slice.ok()) return Status{journal_slice.error()};

  std::vector<std::pair<std::string, double>> counter_values;
  try {
    proto::ByteReader r{counters_section->bytes};
    const std::uint32_t count = r.read_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string name = r.read_string();
      const double value = r.read_f64();
      counter_values.emplace_back(std::move(name), value);
    }
    if (!r.exhausted()) {
      return Status::failure(Errc::kCorruptSnapshot,
                             "worker snapshot: trailing counter bytes");
    }
  } catch (const proto::WireError& e) {
    return Status::failure(Errc::kCorruptSnapshot,
                           std::string{"worker snapshot: "} + e.what());
  }

  // Rebuild the journal on a scratch instance so a restore() rejection
  // (window inconsistent with total) leaves the live journal untouched.
  obs::RunJournal journal{static_cast<std::size_t>(
      std::max<std::uint64_t>(context_.journal_capacity, 1))};
  if (auto status = journal.restore(journal_slice.value().events,
                                    journal_slice.value().total_recorded,
                                    journal_slice.value().round);
      !status.ok()) {
    return status;
  }

  // Commit.
  rounds_applied_ = rounds_applied;
  last_allocation_round_ = last_allocation;
  last_collect_logged_round_ = last_collect;
  mode_ = mode;
  demand_ = std::move(demand);
  ledger_ = std::move(ledger);
  journal_ = std::move(journal);
  const std::pair<const char*, obs::Counter*> handles[] = {
      {"shard.rounds", &counters_.rounds},
      {"shard.groups_announced", &counters_.groups_announced},
      {"shard.placements", &counters_.placements},
      {"shard.awarded_mbps", &counters_.awarded_mbps},
  };
  for (const auto& [name, value] : counter_values) {
    for (const auto& [known, handle] : handles) {
      // Delta-add: counters have no set(), and restore may land on a worker
      // that already accumulated (idempotent re-restore).
      if (name == known) handle->add(value - handle->value());
    }
  }
  refresh_gauges();
  return core::ok_status();
}

// ---------------------------------------------------------------------------
// ShardedExchange
// ---------------------------------------------------------------------------

ShardedExchange::ShardedExchange(const sim::Scenario& scenario, ShardedConfig config)
    : scenario_(scenario), config_(std::move(config)) {
  plan_ = ShardPlan::build(scenario_.world(), config_.shards);
  config_.shards = plan_.shard_count;
  settlement_ = std::make_unique<VdxExchange>(scenario_, config_.exchange);
  background_loads_ = sim::place_background(scenario_);
  last_slices_.resize(plan_.shard_count);
  if (config_.link_faults.any()) {
    link_injector_ = std::make_unique<proto::FaultInjector>(config_.link_faults);
  }
  if (!config_.checkpoint_dir.empty()) {
    coordinator_store_.emplace(config_.checkpoint_dir / "coordinator",
                               std::max<std::size_t>(config_.checkpoint_keep, 1));
    worker_store_dirs_.reserve(plan_.shard_count);
    for (std::size_t s = 0; s < plan_.shard_count; ++s) {
      worker_store_dirs_.push_back(config_.checkpoint_dir /
                                   ("shard-" + std::to_string(s)));
    }
  }
  if (config_.backend == ShardBackend::kProcess) {
    // The WorkerMain runs post-fork: it must capture nothing and touch no
    // coordinator state (the child shares nothing but the socket).
    transport_ = std::make_unique<net::ProcessShardTransport>(
        plan_.shard_count, [](std::size_t shard, int fd) {
          return ShardWorker::serve_fd(static_cast<std::uint32_t>(shard), fd);
        });
  } else {
    if (config_.collect_threads != 1 && link_injector_ == nullptr) {
      pool_ = std::make_unique<core::ThreadPool>(config_.collect_threads);
    }
    transport_ = std::make_unique<net::InprocShardTransport>(
        plan_.shard_count,
        [](std::size_t shard) {
          auto worker =
              std::make_shared<ShardWorker>(static_cast<std::uint32_t>(shard));
          return [worker](std::span<const std::uint8_t> bytes) {
            return worker->handle_bytes(bytes);
          };
        },
        pool_.get());
  }

  counters_.rounds = shard_metrics_.counter("exchange.shard.rounds");
  counters_.frames = shard_metrics_.counter("exchange.shard.frames");
  counters_.retries = shard_metrics_.counter("exchange.shard.retries");
  counters_.rejects = shard_metrics_.counter("exchange.shard.rejects");
  counters_.restarts = shard_metrics_.counter("exchange.shard.restarts");
  counters_.checkpoints = shard_metrics_.counter("exchange.shard.checkpoints");
  counters_.stale_collects = shard_metrics_.counter("exchange.shard.stale_collects");
  counters_.skipped_pushes = shard_metrics_.counter("exchange.shard.skipped_pushes");
  counters_.shards = shard_metrics_.gauge("exchange.shard.shards");
  counters_.merged_groups = shard_metrics_.gauge("exchange.shard.merged_groups");
  counters_.shards.set(static_cast<double>(plan_.shard_count));

  supervisor_ = resilience::Supervisor{config_.worker_restart, resilience_obs()};
  needs_resync_.assign(plan_.shard_count, 0);
  if (config_.link_breaker.enabled()) {
    link_breakers_.reserve(plan_.shard_count);
    for (std::size_t s = 0; s < plan_.shard_count; ++s) {
      link_breakers_.emplace_back(config_.link_breaker, resilience_obs(),
                                  static_cast<std::uint32_t>(s));
    }
  }

  for (std::size_t s = 0; s < plan_.shard_count; ++s) {
    if (auto status = send_hello(s); !status.ok()) {
      throw std::runtime_error{"ShardedExchange: hello to shard " +
                               std::to_string(s) + " failed: " +
                               status.error().message};
    }
  }
}

ShardedExchange::~ShardedExchange() = default;

obs::Observer ShardedExchange::resilience_obs() const noexcept {
  obs::Observer obs;
  obs.metrics = &shard_metrics_;
  obs.tracer = config_.exchange.obs.tracer;
  obs.journal = config_.exchange.obs.journal;
  return obs;
}

std::size_t ShardedExchange::open_breakers() const {
  std::size_t open = 0;
  for (const resilience::CircuitBreaker& breaker : link_breakers_) {
    if (breaker.open()) ++open;
  }
  return open;
}

bool ShardedExchange::shard_quarantined(std::size_t shard) const noexcept {
  if (link_breakers_.empty() || shard >= plan_.shard_count) return false;
  return link_breakers_[shard].open() || needs_resync_[shard] != 0;
}

proto::ShardHello ShardedExchange::hello_for(std::size_t shard) const {
  proto::ShardHello hello;
  hello.shard = static_cast<std::uint32_t>(shard);
  hello.shard_count = static_cast<std::uint32_t>(plan_.shard_count);
  hello.city_count = static_cast<std::uint32_t>(scenario_.world().cities().size());
  hello.plan_hash = plan_.hash();
  const auto clusters = scenario_.catalog().clusters();
  hello.cdn_of_cluster.reserve(clusters.size());
  for (const cdn::Cluster& cluster : clusters) {
    hello.cdn_of_cluster.push_back(cluster.cdn.value());
  }
  hello.journal_capacity = config_.worker_journal_capacity;
  hello.checkpoint_dir = worker_store_dirs_.empty()
                             ? std::string{}
                             : worker_store_dirs_[shard].string();
  hello.checkpoint_keep = static_cast<std::uint32_t>(
      std::max<std::size_t>(config_.checkpoint_keep, 1));
  return hello;
}

core::Status ShardedExchange::send_hello(std::size_t shard) const {
  ShardFrame frame;
  frame.type = ShardFrameType::kHello;
  frame.shard = static_cast<std::uint32_t>(shard);
  frame.payload = proto::encode_shard_hello(hello_for(shard));
  auto response = direct_call(shard, frame, /*recover=*/false);
  if (!response.ok()) return Status{response.error()};
  if (response.value().type != ShardFrameType::kAck) {
    return Status::failure(Errc::kCorruptFrame, "hello: unexpected response type");
  }
  return core::ok_status();
}

ShardedExchange::FrameResult ShardedExchange::direct_call(
    std::size_t shard, const proto::ShardFrame& request, bool recover) const {
  const auto bytes = proto::encode_shard_frame(request);
  counters_.frames.add();
  auto raw = transport_->roundtrip(shard, bytes);
  if (!raw.ok() && raw.error().code == Errc::kUnavailable && recover) {
    if (auto status = recover_worker(shard); !status.ok()) {
      return FrameResult{status.error()};
    }
    raw = transport_->roundtrip(shard, bytes);
  }
  if (!raw.ok()) return FrameResult{raw.error()};
  auto decoded = proto::try_decode_shard_frame(raw.value());
  if (!decoded.ok()) return FrameResult{decoded.error()};
  if (decoded.value().type == ShardFrameType::kError) {
    auto err = proto::decode_shard_error(decoded.value().payload);
    if (!err.ok()) return FrameResult{err.error()};
    return FrameResult::failure(
        err.value().code, "shard " + std::to_string(shard) + ": " +
                              err.value().message);
  }
  return decoded;
}

ShardedExchange::FrameResult ShardedExchange::chaotic_call(
    std::size_t shard, const proto::ShardFrame& request) const {
  const auto request_bytes = proto::encode_shard_frame(request);
  // Link streams: shard s transmits on link s, receives on link N + s, so
  // the two legs draw from independent deterministic fault sequences.
  const std::size_t tx_link = shard;
  const std::size_t rx_link = plan_.shard_count + shard;
  for (std::size_t attempt = 0; attempt <= config_.max_link_retries; ++attempt) {
    if (attempt > 0) counters_.retries.add();
    auto tx_copies = link_injector_->apply(tx_link, request_bytes);
    if (tx_copies.empty()) continue;  // dropped on the wire
    counters_.frames.add(static_cast<double>(tx_copies.size()));
    // Deliver EVERY copy the injector emitted: a duplicated frame really
    // reaches the worker twice, exercising per-round idempotency end to end.
    // The coordinator acts on the response to the LAST copy delivered;
    // earlier copies' responses are stale and discarded unread, so the rx
    // fault stream still advances exactly once per attempt.
    core::Result<std::vector<std::uint8_t>> raw =
        transport_->roundtrip(shard, tx_copies.front().bytes);
    for (std::size_t c = 1; c < tx_copies.size() && raw.ok(); ++c) {
      raw = transport_->roundtrip(shard, tx_copies[c].bytes);
    }
    if (!raw.ok()) {
      if (raw.error().code == Errc::kUnavailable) {
        if (auto status = recover_worker(shard); !status.ok()) {
          return FrameResult{status.error()};
        }
        continue;
      }
      return FrameResult{raw.error()};
    }
    auto rx_copies = link_injector_->apply(rx_link, raw.value());
    if (rx_copies.empty()) continue;  // response dropped
    // A duplicated response doesn't re-execute anything — the receiving end
    // simply consumes the last copy delivered.
    auto decoded = proto::try_decode_shard_frame(rx_copies.back().bytes);
    if (!decoded.ok()) {
      counters_.rejects.add();  // response mutated in flight
      continue;
    }
    if (decoded.value().type == ShardFrameType::kError) {
      auto err = proto::decode_shard_error(decoded.value().payload);
      if (!err.ok() || err.value().code == Errc::kCorruptFrame) {
        counters_.rejects.add();  // our request arrived mutated: retry intact
        continue;
      }
      return FrameResult::failure(
          err.value().code, "shard " + std::to_string(shard) + ": " +
                                err.value().message);
    }
    return decoded;
  }
  return FrameResult::failure(
      Errc::kTimeout, "shard " + std::to_string(shard) +
                          ": link retry budget exhausted under chaos");
}

ShardedExchange::FrameResult ShardedExchange::data_call(
    std::size_t shard, const proto::ShardFrame& request) const {
  return link_injector_ != nullptr ? chaotic_call(shard, request)
                                   : direct_call(shard, request, /*recover=*/true);
}

core::Result<std::vector<proto::ShardFrame>> ShardedExchange::data_broadcast(
    const std::vector<proto::ShardFrame>& requests) const {
  using R = core::Result<std::vector<proto::ShardFrame>>;
  std::vector<proto::ShardFrame> out;
  out.reserve(requests.size());
  if (link_injector_ != nullptr) {
    // Chaos keeps the coordinator serial and in shard order: the injector's
    // per-link RNG streams are ordered state, and determinism wins over
    // overlap here.
    for (std::size_t s = 0; s < requests.size(); ++s) {
      auto response = chaotic_call(s, requests[s]);
      if (!response.ok()) return R{response.error()};
      out.push_back(std::move(response).value());
    }
    return out;
  }
  std::vector<std::vector<std::uint8_t>> encoded;
  encoded.reserve(requests.size());
  for (const ShardFrame& frame : requests) {
    encoded.push_back(proto::encode_shard_frame(frame));
  }
  counters_.frames.add(static_cast<double>(requests.size()));
  auto raw = transport_->broadcast(encoded);
  for (std::size_t s = 0; s < raw.size(); ++s) {
    if (!raw[s].ok() && raw[s].error().code == Errc::kUnavailable) {
      if (auto status = recover_worker(s); !status.ok()) {
        return R{status.error()};
      }
      raw[s] = transport_->roundtrip(s, encoded[s]);
    }
    if (!raw[s].ok()) return R{raw[s].error()};
    auto decoded = proto::try_decode_shard_frame(raw[s].value());
    if (!decoded.ok()) return R{decoded.error()};
    if (decoded.value().type == ShardFrameType::kError) {
      auto err = proto::decode_shard_error(decoded.value().payload);
      if (!err.ok()) return R{err.error()};
      return R::failure(err.value().code, "shard " + std::to_string(s) + ": " +
                                              err.value().message);
    }
    out.push_back(std::move(decoded).value());
  }
  return out;
}

core::Status ShardedExchange::recover_worker(std::size_t shard) const {
  auto status = try_recover_worker(shard);
  if (!status.ok()) {
    // A worker that failed recovery must not linger half-initialized: a
    // respawned-but-empty worker would happily accept the next session
    // delta against an empty ledger and silently lose every session it held
    // before. Keep it dead so every subsequent call fails typed instead.
    transport_->kill(shard);
  }
  return status;
}

core::Status ShardedExchange::try_recover_worker(std::size_t shard) const {
  // The supervisor owns the restart budget: a denied respawn fails typed so
  // the caller (breaker-aware paths quarantine; legacy paths fail closed)
  // sees kUnavailable instead of a free respawn loop. The default policy is
  // unbounded and immediate, matching the pre-supervisor behavior.
  switch (supervisor_.on_failure(static_cast<std::uint32_t>(shard),
                                 settlement_->rounds_completed())) {
    case resilience::RestartDecision::kRestart:
      break;
    case resilience::RestartDecision::kBackoff:
      return Status::failure(
          Errc::kUnavailable,
          "shard " + std::to_string(shard) + ": restart backoff until round " +
              std::to_string(supervisor_.retry_at(static_cast<std::uint32_t>(shard))));
    case resilience::RestartDecision::kGiveUp:
      return Status::failure(Errc::kUnavailable,
                             "shard " + std::to_string(shard) +
                                 ": restart budget exhausted for this window");
  }
  if (auto status = transport_->respawn(shard); !status.ok()) return status;
  ++worker_restarts_;
  counters_.restarts.add();
  if (auto status = send_hello(shard); !status.ok()) return status;

  bool restored = false;
  if (!worker_store_dirs_.empty()) {
    ShardFrame resume;
    resume.type = ShardFrameType::kResumeFromStore;
    resume.shard = static_cast<std::uint32_t>(shard);
    auto response = direct_call(shard, resume, /*recover=*/false);
    if (response.ok() && response.value().type == ShardFrameType::kAck) {
      auto rounds = proto::decode_shard_ack(response.value().payload);
      if (!rounds.ok()) return Status{rounds.error()};
      if (mode_ == ShardDemandMode::kSessions &&
          rounds.value() != settlement_->rounds_completed()) {
        return Status::failure(
            Errc::kNotReady,
            "shard " + std::to_string(shard) + ": checkpoint is " +
                std::to_string(rounds.value()) + " rounds but the marketplace is at " +
                std::to_string(settlement_->rounds_completed()) +
                " — session state cannot be replayed");
      }
      restored = true;
    } else if (mode_ == ShardDemandMode::kSessions) {
      return response.ok()
                 ? Status::failure(Errc::kUnavailable,
                                   "shard " + std::to_string(shard) +
                                       ": session-fed worker lost its checkpoint")
                 : Status{response.error()};
    }
  } else if (mode_ == ShardDemandMode::kSessions) {
    return Status::failure(Errc::kUnavailable,
                           "shard " + std::to_string(shard) +
                               ": session-fed worker died without a checkpoint "
                               "store (configure checkpoint_dir)");
  }

  if (mode_ == ShardDemandMode::kDemand) {
    // The cached slice is authoritative and replace-semantics make the push
    // idempotent, so re-push even over a store-restored worker: a stale
    // checkpoint then costs journal history, never settlement bytes.
    (void)restored;
    ShardFrame push;
    push.type = ShardFrameType::kSetDemand;
    push.shard = static_cast<std::uint32_t>(shard);
    push.payload = proto::encode_shard_groups(last_slices_[shard]);
    auto response = direct_call(shard, push, /*recover=*/false);
    if (!response.ok()) return Status{response.error()};
  }
  supervisor_.on_success(static_cast<std::uint32_t>(shard));
  return core::ok_status();
}

std::vector<std::vector<proto::ShardGroup>> ShardedExchange::slice_demand(
    std::span<const broker::ClientGroup> groups) const {
  std::vector<std::vector<proto::ShardGroup>> slices(plan_.shard_count);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const broker::ClientGroup& group = groups[i];
    if (group.id.value() != i) {
      throw std::invalid_argument{
          "ShardedExchange: demand group ids must be dense (== index)"};
    }
    if (group.city.value() >= plan_.shard_of_city.size()) {
      throw std::invalid_argument{"ShardedExchange: demand references unknown city"};
    }
    slices[plan_.shard_of(group.city)].push_back(
        proto::ShardGroup{static_cast<std::uint32_t>(i), group});
  }
  return slices;
}

core::Status ShardedExchange::push_slice_to(std::size_t shard) const {
  ShardFrame frame;
  frame.type = ShardFrameType::kSetDemand;
  frame.shard = static_cast<std::uint32_t>(shard);
  frame.payload = proto::encode_shard_groups(last_slices_[shard]);
  auto response = data_call(shard, frame);
  if (!response.ok()) return Status{response.error()};
  if (response.value().type != ShardFrameType::kAck) {
    return Status::failure(Errc::kCorruptFrame,
                           "set_demand: unexpected response type");
  }
  return core::ok_status();
}

core::Status ShardedExchange::push_demand_slices() const {
  const bool breakers = !link_breakers_.empty();
  const std::uint64_t now = settlement_->rounds_completed();
  for (std::size_t s = 0; s < plan_.shard_count; ++s) {
    if (breakers && !link_breakers_[s].allow(now)) {
      // Quarantined: leave the shard alone instead of burning the link
      // retry budget. It settles from the coordinator's cached slice (the
      // authoritative copy in demand mode) until a half-open probe lands a
      // fresh push.
      needs_resync_[s] = 1;
      counters_.skipped_pushes.add();
      continue;
    }
    auto pushed = push_slice_to(s);
    if (pushed.ok()) {
      if (breakers) {
        link_breakers_[s].on_success(now);
        needs_resync_[s] = 0;
      }
      continue;
    }
    if (!breakers) return pushed;
    link_breakers_[s].on_failure(now);
    needs_resync_[s] = 1;
  }
  return core::ok_status();
}

/// Half-open probes for flagged shards: a successful re-push of the current
/// slice is the only thing that clears needs_resync_, because only a push
/// proves the worker's demand matches the coordinator cache again.
void ShardedExchange::resync_quarantined(std::uint64_t round) const {
  for (std::size_t s = 0; s < plan_.shard_count; ++s) {
    if (needs_resync_[s] == 0) continue;
    if (!link_breakers_[s].allow(round)) continue;
    auto pushed = push_slice_to(s);
    if (pushed.ok()) {
      link_breakers_[s].on_success(round);
      needs_resync_[s] = 0;
    } else {
      link_breakers_[s].on_failure(round);
    }
  }
}

void ShardedExchange::set_active_load(std::span<const broker::ClientGroup> groups,
                                      std::span<const double> background_loads) {
  if (background_loads.size() != scenario_.catalog().clusters().size()) {
    throw std::invalid_argument{
        "ShardedExchange::set_active_load: loads arity mismatch"};
  }
  if (mode_ == ShardDemandMode::kSessions) {
    throw std::logic_error{
        "ShardedExchange: exchange is session-fed; set_active_load is exclusive"};
  }
  auto slices = slice_demand(groups);
  last_slices_ = std::move(slices);
  background_loads_.assign(background_loads.begin(), background_loads.end());
  mode_ = ShardDemandMode::kDemand;
  fed_ = true;
  demand_dirty_ = true;
  if (auto status = push_demand_slices(); !status.ok()) {
    throw std::runtime_error{"ShardedExchange::set_active_load: " +
                             status.error().message};
  }
}

std::uint64_t ShardedExchange::delta_hash(
    std::span<const proto::ShardSessionAdd> adds,
    std::span<const std::uint32_t> removes) {
  proto::ByteWriter w;
  w.write_u32(static_cast<std::uint32_t>(adds.size()));
  for (const proto::ShardSessionAdd& add : adds) {
    w.write_u32(add.id);
    w.write_u32(add.city);
    w.write_f64(add.bitrate_mbps);
  }
  w.write_u32(static_cast<std::uint32_t>(removes.size()));
  for (const std::uint32_t id : removes) w.write_u32(id);
  return state::fnv1a(w.data());
}

core::Status ShardedExchange::push_session_delta(
    std::span<const proto::ShardSessionAdd> adds,
    std::span<const std::uint32_t> removes) {
  if (mode_ == ShardDemandMode::kDemand) {
    return invalid(
        "ShardedExchange: exchange holds explicit demand; session deltas are "
        "exclusive");
  }
  const std::uint64_t batch_hash = delta_hash(adds, removes);
  if (delta_pending_ && batch_hash != pending_delta_hash_) {
    return Status::failure(
        Errc::kNotReady,
        "push_session_delta: a previous delta failed mid-push and may be "
        "applied on some shards; retry the identical batch first");
  }
  std::vector<proto::ShardSessionDelta> deltas(plan_.shard_count);
  // Same-batch ids are remembered so a remove in the SAME batch follows its
  // add to the owning shard (SessionLedger::apply applies adds before removes
  // within one batch); routing it via session_shard_ — committed batches only
  // — would skip the remove and leak a phantom session into the worker ledger.
  std::unordered_map<std::uint32_t, std::uint32_t> batch_shard;
  batch_shard.reserve(adds.size());
  for (const proto::ShardSessionAdd& add : adds) {
    if (add.city >= plan_.shard_of_city.size()) {
      return invalid("push_session_delta: unknown city " + std::to_string(add.city));
    }
    const std::uint32_t shard = plan_.shard_of_city[add.city];
    if (const auto [it, inserted] = batch_shard.emplace(add.id, shard);
        !inserted && it->second != shard) {
      // A conflicting duplicate on ONE shard is rejected by its ledger, but
      // copies routed to different shards would each be accepted — refuse
      // here, where both are visible, exactly like the global ledger would.
      return invalid("push_session_delta: session " + std::to_string(add.id) +
                     " added twice with cities on different shards");
    }
    if (const auto owner = session_shard_.find(add.id);
        owner != session_shard_.end() && owner->second != shard) {
      // A re-add whose new city routes to a different shard would be accepted
      // there as a brand-new session while the old shard keeps its copy. The
      // global ledger rejects a re-add with different data — mirror that here,
      // where both owners are visible.
      return invalid("push_session_delta: session " + std::to_string(add.id) +
                     " re-added with a city on a different shard");
    }
    deltas[shard].adds.push_back(add);
  }
  for (const std::uint32_t id : removes) {
    if (const auto bit = batch_shard.find(id); bit != batch_shard.end()) {
      deltas[bit->second].removes.push_back(id);
      continue;
    }
    const auto it = session_shard_.find(id);
    if (it == session_shard_.end()) continue;  // idempotent re-remove
    deltas[it->second].removes.push_back(id);
  }
  // The per-shard sends are NOT atomic as a set: a failure at shard k leaves
  // shards < k applied. Mark the batch outstanding before the first send —
  // settlement refuses to run and only a verbatim retry (idempotent on the
  // already-applied shards) may follow until the whole batch lands.
  delta_pending_ = true;
  pending_delta_hash_ = batch_hash;
  for (std::size_t s = 0; s < plan_.shard_count; ++s) {
    if (deltas[s].adds.empty() && deltas[s].removes.empty()) continue;
    ShardFrame frame;
    frame.type = ShardFrameType::kSessionDelta;
    frame.shard = static_cast<std::uint32_t>(s);
    frame.payload = proto::encode_session_delta(deltas[s]);
    auto response = data_call(s, frame);
    if (!response.ok()) return Status{response.error()};
  }
  delta_pending_ = false;
  // Commit routing only after every shard accepted its delta. Adds first,
  // then removes — the same order the workers applied them in.
  for (const proto::ShardSessionAdd& add : adds) {
    session_shard_[add.id] = plan_.shard_of_city[add.city];
  }
  for (const std::uint32_t id : removes) session_shard_.erase(id);
  mode_ = ShardDemandMode::kSessions;
  fed_ = true;
  demand_dirty_ = true;
  return core::ok_status();
}

core::Status ShardedExchange::ensure_fed() {
  if (fed_) return core::ok_status();
  // Default demand, exactly like the monolith: the scenario's broker groups
  // against the placed background load.
  last_slices_ = slice_demand(scenario_.broker_groups());
  mode_ = ShardDemandMode::kDemand;
  fed_ = true;
  demand_dirty_ = true;
  return push_demand_slices();
}

core::Result<std::vector<broker::ClientGroup>> ShardedExchange::collect_and_merge(
    std::uint64_t round) {
  using R = core::Result<std::vector<broker::ClientGroup>>;
  std::vector<ShardFrame> requests(plan_.shard_count);
  for (std::size_t s = 0; s < plan_.shard_count; ++s) {
    requests[s].type = ShardFrameType::kCollect;
    requests[s].shard = static_cast<std::uint32_t>(s);
    requests[s].round = round;
  }

  if (breaker_active()) {
    // Demand mode under the breaker: a quarantined shard's groups are
    // synthesized from the coordinator's cached slice — byte-identical to
    // a live answer, because workers only echo the slice the coordinator
    // pushed. Live shards that fail here trip their breaker and fall back
    // to the cache in the same round, so collect cannot fail.
    std::vector<proto::ShardGroup> all;
    bool any_stale = false;
    for (std::size_t s = 0; s < plan_.shard_count; ++s) {
      bool stale = needs_resync_[s] != 0;
      if (!stale && !link_breakers_[s].allow(round)) stale = true;
      if (!stale) {
        auto live = collect_live(s, requests[s], round);
        if (live.ok()) {
          link_breakers_[s].on_success(round);
          for (proto::ShardGroup& g : live.value()) all.push_back(std::move(g));
          continue;
        }
        link_breakers_[s].on_failure(round);
        needs_resync_[s] = 1;
      }
      counters_.stale_collects.add();
      any_stale = true;
      resilience_obs().record(obs::EventKind::kStaleBid,
                              static_cast<std::uint32_t>(s),
                              static_cast<double>(last_slices_[s].size()));
      for (const proto::ShardGroup& g : last_slices_[s]) all.push_back(g);
    }
    if (any_stale) ++stale_rounds_;
    return merge_demand_groups(std::move(all));
  }

  auto responses = data_broadcast(requests);
  if (!responses.ok()) return R{responses.error()};

  // Shards the routing table says hold live sessions MUST answer in session
  // mode with exactly as many clients as the table routed to them. A worker
  // that lost its ledger (respawned after a failed recovery) reports kNone;
  // one restored from a stale checkpoint reports kSessions with the wrong
  // population. Merging either slice would silently settle without those
  // sessions, so the round fails closed instead. Every session contributes
  // exactly 1.0 to its group's client_count, so the sums are exact doubles.
  std::vector<double> expected_clients(plan_.shard_count, 0.0);
  if (mode_ == ShardDemandMode::kSessions) {
    for (const auto& [id, owner] : session_shard_) expected_clients[owner] += 1.0;
  }

  std::vector<proto::ShardGroup> all;
  for (std::size_t s = 0; s < responses.value().size(); ++s) {
    const ShardFrame& frame = responses.value()[s];
    if (frame.type != ShardFrameType::kBidCandidates || frame.round != round) {
      return R::failure(Errc::kCorruptFrame,
                        "collect: unexpected response from shard " +
                            std::to_string(s));
    }
    auto candidates = proto::decode_candidates(frame.payload);
    if (!candidates.ok()) return R{candidates.error()};
    if (expected_clients[s] > 0.0 &&
        candidates.value().mode != ShardDemandMode::kSessions) {
      return R::failure(Errc::kUnavailable,
                        "collect: shard " + std::to_string(s) +
                            " lost its session ledger (reported mode " +
                            std::to_string(static_cast<int>(candidates.value().mode)) +
                            ")");
    }
    if (mode_ == ShardDemandMode::kSessions &&
        candidates.value().mode == ShardDemandMode::kSessions) {
      double held = 0.0;
      for (const proto::ShardGroup& g : candidates.value().groups) {
        held += g.group.client_count;
      }
      if (held != expected_clients[s]) {
        return R::failure(
            Errc::kUnavailable,
            "collect: shard " + std::to_string(s) + " holds " +
                std::to_string(held) + " session clients but routing expects " +
                std::to_string(expected_clients[s]));
      }
    }
    for (proto::ShardGroup& g : candidates.value().groups) {
      all.push_back(std::move(g));
    }
  }

  std::vector<broker::ClientGroup> merged;
  merged.reserve(all.size());
  if (mode_ == ShardDemandMode::kSessions) {
    // Derived groups: cities are disjoint across shards, so ordering the
    // concatenation by (city, bitrate) with dense ids reproduces exactly
    // what one global SessionLedger would emit.
    std::stable_sort(all.begin(), all.end(),
                     [](const proto::ShardGroup& a, const proto::ShardGroup& b) {
                       if (a.group.city.value() != b.group.city.value()) {
                         return a.group.city.value() < b.group.city.value();
                       }
                       return a.group.bitrate_mbps < b.group.bitrate_mbps;
                     });
    for (std::size_t i = 0; i < all.size(); ++i) {
      broker::ClientGroup group = all[i].group;
      group.id = broker::ShareId{static_cast<std::uint32_t>(i)};
      merged.push_back(group);
    }
  } else {
    return merge_demand_groups(std::move(all));
  }
  counters_.merged_groups.set(static_cast<double>(merged.size()));
  return merged;
}

core::Result<std::vector<broker::ClientGroup>> ShardedExchange::merge_demand_groups(
    std::vector<proto::ShardGroup> all) const {
  using R = core::Result<std::vector<broker::ClientGroup>>;
  // Explicit slices: global ids restore the original vector losslessly —
  // the merge must be a bijection onto 0..n-1 or a worker lied.
  std::sort(all.begin(), all.end(),
            [](const proto::ShardGroup& a, const proto::ShardGroup& b) {
              return a.global_id < b.global_id;
            });
  std::vector<broker::ClientGroup> merged;
  merged.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].global_id != i || all[i].group.id.value() != i) {
      return R::failure(Errc::kCorruptFrame,
                        "collect: merged demand ids are not dense — shard "
                        "slices overlap or lost groups");
    }
    merged.push_back(all[i].group);
  }
  counters_.merged_groups.set(static_cast<double>(merged.size()));
  return merged;
}

core::Result<std::vector<proto::ShardGroup>> ShardedExchange::collect_live(
    std::size_t shard, const proto::ShardFrame& request, std::uint64_t round) const {
  using R = core::Result<std::vector<proto::ShardGroup>>;
  auto response = data_call(shard, request);
  if (!response.ok()) return R{response.error()};
  const ShardFrame& frame = response.value();
  if (frame.type != ShardFrameType::kBidCandidates || frame.round != round) {
    return R::failure(Errc::kCorruptFrame,
                      "collect: unexpected response from shard " +
                          std::to_string(shard));
  }
  auto candidates = proto::decode_candidates(frame.payload);
  if (!candidates.ok()) return R{candidates.error()};
  if (candidates.value().mode != ShardDemandMode::kDemand) {
    return R::failure(Errc::kUnavailable,
                      "collect: shard " + std::to_string(shard) +
                          " answered in the wrong demand mode");
  }
  return std::move(candidates.value().groups);
}

core::Status ShardedExchange::broadcast_allocation(std::uint64_t round) {
  const auto placements = settlement_->placements();
  const auto demand = settlement_->active_demand();
  std::vector<std::vector<proto::ShardPlacement>> slices(plan_.shard_count);
  for (const sim::Placement& p : placements) {
    const broker::ClientGroup& group = demand[p.group];
    proto::ShardPlacement out;
    out.global_group = static_cast<std::uint32_t>(p.group);
    out.cluster = p.cluster.value();
    out.clients = p.clients;
    out.price = p.price;
    out.score = p.score;
    out.bitrate_mbps = group.bitrate_mbps;
    slices[plan_.shard_of(group.city)].push_back(out);
  }
  std::vector<ShardFrame> requests(plan_.shard_count);
  for (std::size_t s = 0; s < plan_.shard_count; ++s) {
    requests[s].type = ShardFrameType::kAllocation;
    requests[s].shard = static_cast<std::uint32_t>(s);
    requests[s].round = round;
    requests[s].payload = proto::encode_allocation(slices[s]);
  }

  if (breaker_active()) {
    // A quarantined shard misses its allocation slice (it re-syncs later);
    // a live shard that fails here trips its breaker. Either way the round
    // closes — allocation fan-out is worker-side bookkeeping, settlement
    // bytes are already committed.
    for (std::size_t s = 0; s < plan_.shard_count; ++s) {
      if (needs_resync_[s] != 0 || link_breakers_[s].open()) continue;
      auto response = data_call(s, requests[s]);
      bool acked = false;
      if (response.ok() && response.value().type == ShardFrameType::kAck) {
        auto value = proto::decode_shard_ack(response.value().payload);
        acked = value.ok() && value.value() == round;
      }
      if (acked) {
        link_breakers_[s].on_success(round);
      } else {
        link_breakers_[s].on_failure(round);
        needs_resync_[s] = 1;
      }
    }
    return core::ok_status();
  }

  auto responses = data_broadcast(requests);
  if (!responses.ok()) return Status{responses.error()};
  for (std::size_t s = 0; s < responses.value().size(); ++s) {
    const ShardFrame& frame = responses.value()[s];
    if (frame.type != ShardFrameType::kAck) {
      return Status::failure(Errc::kCorruptFrame,
                             "allocation: unexpected response type from shard " +
                                 std::to_string(s));
    }
    auto acked = proto::decode_shard_ack(frame.payload);
    if (!acked.ok()) return Status{acked.error()};
    if (acked.value() != round) {
      return Status::failure(Errc::kCorruptFrame,
                             "allocation: shard " + std::to_string(s) +
                                 " acked round " + std::to_string(acked.value()) +
                                 " instead of " + std::to_string(round));
    }
  }
  return core::ok_status();
}

core::Result<RoundReport> ShardedExchange::try_run_round() {
  using R = core::Result<RoundReport>;
  if (delta_pending_) {
    return R::failure(Errc::kNotReady,
                      "run_round: an uncommitted session delta is outstanding; "
                      "retry push_session_delta with the identical batch");
  }
  if (auto status = ensure_fed(); !status.ok()) return R{status.error()};
  const std::uint64_t round = settlement_->rounds_completed();

  // Half-open probes first: a quarantined shard that accepts a fresh slice
  // push rejoins the live collect below in the same round.
  if (breaker_active()) resync_quarantined(round);

  auto merged = collect_and_merge(round);
  if (!merged.ok()) return R{merged.error()};
  if (demand_dirty_) {
    settlement_->set_active_load(merged.value(), background_loads_);
    demand_dirty_ = false;
  }

  RoundReport report = settlement_->run_round();

  if (auto status = broadcast_allocation(round); !status.ok()) {
    return R{status.error()};
  }
  counters_.rounds.add();

  if (config_.checkpoint_every_rounds > 0 && coordinator_store_.has_value() &&
      (round + 1) % config_.checkpoint_every_rounds == 0) {
    if (auto status = checkpoint_now(); !status.ok()) return R{status.error()};
  }
  return report;
}

RoundReport ShardedExchange::run_round() {
  auto report = try_run_round();
  if (!report.ok()) {
    throw std::runtime_error{"ShardedExchange::run_round: " +
                             report.error().message};
  }
  return std::move(report).value();
}

std::vector<RoundReport> ShardedExchange::run(std::size_t rounds) {
  std::vector<RoundReport> reports;
  reports.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) reports.push_back(run_round());
  return reports;
}

void ShardedExchange::set_demand_budget(double budget_mbps) {
  settlement_->set_demand_budget(budget_mbps);
}

double ShardedExchange::demand_budget() const {
  return settlement_->demand_budget();
}

std::size_t ShardedExchange::rounds_completed() const {
  return settlement_->rounds_completed();
}

core::Result<proto::DeliveryOutcome> ShardedExchange::deliver(
    std::uint32_t session_id, geo::CityId city, double bitrate_mbps) {
  return settlement_->deliver(session_id, city, bitrate_mbps);
}

const obs::MetricsRegistry& ShardedExchange::metrics() const {
  return settlement_->metrics();
}

void ShardedExchange::set_failed(cdn::CdnId cdn, bool failed) {
  settlement_->set_failed(cdn, failed);
}

void ShardedExchange::set_fraudulent(cdn::CdnId cdn, bool fraudulent) {
  settlement_->set_fraudulent(cdn, fraudulent);
}

void ShardedExchange::kill_worker(std::size_t shard) {
  transport_->kill(shard);
}

bool ShardedExchange::worker_alive(std::size_t shard) const noexcept {
  return transport_->alive(shard);
}

proto::FaultCounters ShardedExchange::link_fault_counters() const noexcept {
  return link_injector_ != nullptr ? link_injector_->counters()
                                   : proto::FaultCounters{};
}

core::Result<std::vector<obs::Event>> ShardedExchange::merged_worker_journal()
    const {
  using R = core::Result<std::vector<obs::Event>>;
  std::vector<obs::JournalSlice> slices;
  slices.reserve(plan_.shard_count);
  for (std::size_t s = 0; s < plan_.shard_count; ++s) {
    ShardFrame frame;
    frame.type = ShardFrameType::kJournalRequest;
    frame.shard = static_cast<std::uint32_t>(s);
    auto response = direct_call(s, frame, /*recover=*/true);
    if (!response.ok()) return R{response.error()};
    if (response.value().type != ShardFrameType::kJournalSlice) {
      return R::failure(Errc::kCorruptFrame,
                        "journal request: unexpected response type");
    }
    auto slice = proto::decode_journal_slice(response.value().payload);
    if (!slice.ok()) return R{slice.error()};
    slices.push_back(obs::JournalSlice{static_cast<std::uint32_t>(s),
                                       slice.value().total_recorded,
                                       std::move(slice.value().events)});
  }
  return obs::merge_journal_slices(slices);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> ShardedExchange::encode_coordinator_core() const {
  proto::ByteWriter w;
  w.write_u64(static_cast<std::uint64_t>(settlement_->rounds_completed()));
  w.write_u32(static_cast<std::uint32_t>(plan_.shard_count));
  w.write_u64(plan_.hash());
  w.write_u8(static_cast<std::uint8_t>(mode_));
  w.write_u8(fed_ ? 1 : 0);
  w.write_u8(demand_dirty_ ? 1 : 0);
  w.write_u32(static_cast<std::uint32_t>(background_loads_.size()));
  for (const double load : background_loads_) w.write_f64(load);
  // unordered_map: serialize in sorted order so the bytes are deterministic.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> routing{
      session_shard_.begin(), session_shard_.end()};
  std::sort(routing.begin(), routing.end());
  w.write_u32(static_cast<std::uint32_t>(routing.size()));
  for (const auto& [id, shard] : routing) {
    w.write_u32(id);
    w.write_u32(shard);
  }
  return w.take();
}

std::vector<std::uint8_t> ShardedExchange::encode_slices() const {
  proto::ByteWriter w;
  w.write_u32(static_cast<std::uint32_t>(last_slices_.size()));
  for (const auto& slice : last_slices_) {
    const auto bytes = proto::encode_shard_groups(slice);
    w.write_u32(static_cast<std::uint32_t>(bytes.size()));
    w.write_bytes(bytes);
  }
  return w.take();
}

struct ShardedExchange::CoordinatorCore {
  std::uint64_t rounds = 0;
  ShardDemandMode mode = ShardDemandMode::kNone;
  bool fed = false;
  bool dirty = false;
  std::vector<double> background_loads;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> session_shard;
};

core::Status ShardedExchange::restore_from_snapshot(const state::SnapshotView& view,
                                                    bool embedded_workers) {
  const state::Section* core_section = view.find(kCoordCoreSection);
  const state::Section* settlement_section = view.find(kCoordSettlementSection);
  const state::Section* slices_section = view.find(kCoordSlicesSection);
  const state::Section* workers_section = view.find(kCoordWorkersSection);
  if (core_section == nullptr || settlement_section == nullptr ||
      slices_section == nullptr ||
      (embedded_workers && workers_section == nullptr)) {
    return Status::failure(Errc::kCorruptSnapshot,
                           "coordinator snapshot: missing section");
  }

  // Decode everything into locals before mutating anything.
  CoordinatorCore core;
  try {
    proto::ByteReader r{core_section->bytes};
    core.rounds = r.read_u64();
    const std::uint32_t shard_count = r.read_u32();
    const std::uint64_t plan_hash = r.read_u64();
    if (shard_count != plan_.shard_count || plan_hash != plan_.hash()) {
      return invalid("coordinator snapshot: taken under a different shard plan");
    }
    const std::uint8_t mode_raw = r.read_u8();
    if (mode_raw > static_cast<std::uint8_t>(ShardDemandMode::kSessions)) {
      return Status::failure(Errc::kCorruptSnapshot,
                             "coordinator snapshot: bad mode");
    }
    core.mode = static_cast<ShardDemandMode>(mode_raw);
    core.fed = r.read_u8() != 0;
    core.dirty = r.read_u8() != 0;
    const std::uint32_t load_count = r.read_u32();
    if (load_count != scenario_.catalog().clusters().size()) {
      return invalid("coordinator snapshot: cluster arity mismatch");
    }
    core.background_loads.reserve(load_count);
    for (std::uint32_t i = 0; i < load_count; ++i) {
      core.background_loads.push_back(r.read_f64());
    }
    const std::uint32_t routing_count = r.read_u32();
    if (routing_count > r.remaining() / 8) {
      return Status::failure(Errc::kCorruptSnapshot,
                             "coordinator snapshot: routing count lie");
    }
    core.session_shard.reserve(routing_count);
    for (std::uint32_t i = 0; i < routing_count; ++i) {
      const std::uint32_t id = r.read_u32();
      const std::uint32_t shard = r.read_u32();
      if (shard >= plan_.shard_count) {
        return Status::failure(Errc::kCorruptSnapshot,
                               "coordinator snapshot: routing to unknown shard");
      }
      core.session_shard.emplace_back(id, shard);
    }
    if (!r.exhausted()) {
      return Status::failure(Errc::kCorruptSnapshot,
                             "coordinator snapshot: trailing core bytes");
    }
  } catch (const proto::WireError& e) {
    return Status::failure(Errc::kCorruptSnapshot,
                           std::string{"coordinator snapshot: "} + e.what());
  }

  std::vector<std::vector<proto::ShardGroup>> slices;
  try {
    proto::ByteReader r{slices_section->bytes};
    const std::uint32_t count = r.read_u32();
    if (count != plan_.shard_count) {
      return invalid("coordinator snapshot: slice arity mismatch");
    }
    slices.resize(count);
    for (std::uint32_t s = 0; s < count; ++s) {
      const std::uint32_t len = r.read_u32();
      auto decoded = proto::decode_shard_groups(r.read_bytes(len));
      if (!decoded.ok()) return Status{decoded.error()};
      slices[s] = std::move(decoded).value();
    }
    if (!r.exhausted()) {
      return Status::failure(Errc::kCorruptSnapshot,
                             "coordinator snapshot: trailing slice bytes");
    }
  } catch (const proto::WireError& e) {
    return Status::failure(Errc::kCorruptSnapshot,
                           std::string{"coordinator snapshot: "} + e.what());
  }

  std::vector<std::vector<std::uint8_t>> worker_states;
  if (embedded_workers) {
    try {
      proto::ByteReader r{workers_section->bytes};
      const std::uint32_t count = r.read_u32();
      if (count != plan_.shard_count) {
        return invalid("coordinator snapshot: worker state arity mismatch");
      }
      worker_states.reserve(count);
      for (std::uint32_t s = 0; s < count; ++s) {
        const std::uint32_t len = r.read_u32();
        const auto bytes = r.read_bytes(len);
        worker_states.emplace_back(bytes.begin(), bytes.end());
      }
      if (!r.exhausted()) {
        return Status::failure(Errc::kCorruptSnapshot,
                               "coordinator snapshot: trailing worker bytes");
      }
    } catch (const proto::WireError& e) {
      return Status::failure(Errc::kCorruptSnapshot,
                             std::string{"coordinator snapshot: "} + e.what());
    }
  }

  // The settlement exchange restores atomically (its own contract); commit
  // the coordinator state only after it succeeded.
  if (auto status = settlement_->restore_state(settlement_section->bytes);
      !status.ok()) {
    return status;
  }
  mode_ = core.mode;
  fed_ = core.fed;
  demand_dirty_ = core.dirty;
  // The snapshot captured a consistent routing/worker pair, so any delta
  // that was outstanding at save time is moot after restore.
  delta_pending_ = false;
  pending_delta_hash_ = 0;
  background_loads_ = std::move(core.background_loads);
  session_shard_.clear();
  for (const auto& [id, shard] : core.session_shard) session_shard_[id] = shard;
  last_slices_ = std::move(slices);

  if (embedded_workers) {
    for (std::size_t s = 0; s < worker_states.size(); ++s) {
      ShardFrame frame;
      frame.type = ShardFrameType::kRestoreState;
      frame.shard = static_cast<std::uint32_t>(s);
      frame.payload = std::move(worker_states[s]);
      auto response = direct_call(s, frame, /*recover=*/true);
      if (!response.ok()) return Status{response.error()};
    }
  }
  return core::ok_status();
}

core::Result<std::vector<std::uint8_t>> ShardedExchange::try_save_state() const {
  using R = core::Result<std::vector<std::uint8_t>>;
  if (delta_pending_) {
    // Routing and worker ledgers disagree mid-push; a snapshot taken now
    // would restore into that inconsistency.
    return R::failure(Errc::kNotReady,
                      "save_state: an uncommitted session delta is outstanding");
  }
  state::SnapshotWriter writer;
  writer.add_section(kCoordCoreSection, encode_coordinator_core());
  writer.add_section(kCoordSettlementSection, settlement_->save_state());
  writer.add_section(kCoordSlicesSection, encode_slices());
  {
    proto::ByteWriter w;
    w.write_u32(static_cast<std::uint32_t>(plan_.shard_count));
    for (std::size_t s = 0; s < plan_.shard_count; ++s) {
      ShardFrame frame;
      frame.type = ShardFrameType::kStateRequest;
      frame.shard = static_cast<std::uint32_t>(s);
      auto response = direct_call(s, frame, /*recover=*/true);
      if (!response.ok()) {
        return R::failure(response.error().code,
                          "save_state: shard " + std::to_string(s) +
                              " state unavailable: " + response.error().message);
      }
      if (response.value().type != ShardFrameType::kStateResponse) {
        return R::failure(Errc::kCorruptFrame,
                          "save_state: shard " + std::to_string(s) +
                              " returned an unexpected frame type");
      }
      w.write_u32(static_cast<std::uint32_t>(response.value().payload.size()));
      w.write_bytes(response.value().payload);
    }
    writer.add_section(kCoordWorkersSection, w.take());
  }
  return writer.finish();
}

std::vector<std::uint8_t> ShardedExchange::save_state() const {
  auto state = try_save_state();
  if (!state.ok()) {
    throw std::runtime_error{"ShardedExchange::save_state: " +
                             state.error().message};
  }
  return std::move(state).value();
}

core::Status ShardedExchange::restore_state(std::span<const std::uint8_t> bytes) {
  auto parsed = state::SnapshotView::parse(bytes);
  if (!parsed.ok()) return Status{parsed.error()};
  return restore_from_snapshot(parsed.value(), /*embedded_workers=*/true);
}

core::Status ShardedExchange::checkpoint_now() {
  if (!coordinator_store_.has_value()) {
    return invalid("ShardedExchange::checkpoint_now: no checkpoint_dir configured");
  }
  if (delta_pending_) {
    return Status::failure(
        Errc::kNotReady,
        "checkpoint_now: an uncommitted session delta is outstanding");
  }
  const std::uint64_t epoch = settlement_->rounds_completed();
  state::SnapshotWriter writer;
  writer.add_section(kCoordCoreSection, encode_coordinator_core());
  writer.add_section(kCoordSettlementSection, settlement_->save_state());
  writer.add_section(kCoordSlicesSection, encode_slices());
  if (auto status = coordinator_store_->write(epoch, writer.finish());
      !status.ok()) {
    return status;
  }
  for (std::size_t s = 0; s < plan_.shard_count; ++s) {
    ShardFrame frame;
    frame.type = ShardFrameType::kCheckpoint;
    frame.shard = static_cast<std::uint32_t>(s);
    frame.round = epoch;
    auto response = direct_call(s, frame, /*recover=*/true);
    if (!response.ok()) return Status{response.error()};
    if (response.value().type != ShardFrameType::kAck) {
      return Status::failure(Errc::kCorruptFrame,
                             "checkpoint: unexpected response type");
    }
  }
  counters_.checkpoints.add();
  return core::ok_status();
}

core::Status ShardedExchange::resume_from_stores() {
  if (!coordinator_store_.has_value()) {
    return invalid(
        "ShardedExchange::resume_from_stores: no checkpoint_dir configured");
  }
  auto loaded =
      coordinator_store_->load_latest([](std::span<const std::uint8_t> bytes) {
        auto parsed = state::SnapshotView::parse(bytes);
        return parsed.ok() ? core::ok_status() : Status{parsed.error()};
      });
  if (!loaded.ok()) return Status{loaded.error()};
  auto parsed = state::SnapshotView::parse(loaded.value().bytes);
  if (!parsed.ok()) return Status{parsed.error()};
  if (auto status =
          restore_from_snapshot(parsed.value(), /*embedded_workers=*/false);
      !status.ok()) {
    return status;
  }
  // Workers reload from their own per-shard stores.
  for (std::size_t s = 0; s < plan_.shard_count; ++s) {
    ShardFrame frame;
    frame.type = ShardFrameType::kResumeFromStore;
    frame.shard = static_cast<std::uint32_t>(s);
    auto response = direct_call(s, frame, /*recover=*/true);
    if (!response.ok()) return Status{response.error()};
    auto rounds = proto::decode_shard_ack(response.value().payload);
    if (!rounds.ok()) return Status{rounds.error()};
    if (mode_ == ShardDemandMode::kSessions &&
        rounds.value() != settlement_->rounds_completed()) {
      return Status::failure(Errc::kNotReady,
                             "resume: shard " + std::to_string(s) +
                                 " checkpoint lags the coordinator");
    }
  }
  if (mode_ == ShardDemandMode::kDemand) {
    // The coordinator's cached slices are authoritative over whatever age of
    // checkpoint each worker found.
    if (auto status = push_demand_slices(); !status.ok()) return status;
  }
  return core::ok_status();
}

}  // namespace vdx::market
