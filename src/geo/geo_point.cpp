#include "geo/geo_point.hpp"

#include <algorithm>

namespace vdx::geo {

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.latitude_deg);
  const double lat2 = deg_to_rad(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.longitude_deg - a.longitude_deg);

  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h =
      sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double haversine_miles(const GeoPoint& a, const GeoPoint& b) noexcept {
  return haversine_km(a, b) / kKmPerMile;
}

GeoPoint normalized(GeoPoint p) noexcept {
  p.latitude_deg = std::clamp(p.latitude_deg, -90.0, 90.0);
  double lon = std::fmod(p.longitude_deg + 180.0, 360.0);
  if (lon < 0.0) lon += 360.0;
  p.longitude_deg = lon - 180.0;
  return p;
}

}  // namespace vdx::geo
