#include "geo/world.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vdx::geo {

World::World(std::vector<Country> countries, std::vector<City> cities)
    : countries_(std::move(countries)), cities_(std::move(cities)) {
  if (countries_.empty() || cities_.empty()) {
    throw std::invalid_argument{"World: need at least one country and city"};
  }
  for (std::size_t i = 0; i < countries_.size(); ++i) {
    if (countries_[i].id.value() != i) {
      throw std::invalid_argument{"World: country ids must be dense and ordered"};
    }
  }
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    if (cities_[i].id.value() != i) {
      throw std::invalid_argument{"World: city ids must be dense and ordered"};
    }
    if (cities_[i].country.value() >= countries_.size()) {
      throw std::invalid_argument{"World: city references unknown country"};
    }
  }
}

World World::generate(const WorldConfig& config) {
  if (config.country_count == 0 || config.city_count < 2 * config.country_count) {
    throw std::invalid_argument{
        "WorldConfig: need >= 1 country and >= 2 cities per country"};
  }
  if (!(config.cost_spread >= 1.0)) {
    throw std::invalid_argument{"WorldConfig: cost_spread must be >= 1"};
  }

  core::Rng rng{config.seed};
  core::Rng place_rng = rng.fork("placement");
  core::Rng cost_rng = rng.fork("cost");
  core::Rng demand_rng = rng.fork("demand");

  const std::size_t nc = config.country_count;

  // Continent anchors: four synthetic landmasses roughly at the longitudes
  // of the Americas, Europe/Africa, Asia and Oceania.
  constexpr GeoPoint kContinents[] = {
      {40.0, -95.0}, {48.0, 12.0}, {28.0, 105.0}, {-28.0, 140.0}};

  std::vector<Country> countries(nc);
  for (std::size_t i = 0; i < nc; ++i) {
    Country& c = countries[i];
    c.id = CountryId{static_cast<std::uint32_t>(i)};
    c.name = std::string(1, static_cast<char>('A' + (i % 26)));
    if (i >= 26) c.name += std::to_string(i / 26);

    // Geometric ladder from most expensive ("A", factor = spread) down to the
    // cheapest (factor = 1), with mild multiplicative jitter so adjacent
    // countries are not perfectly spaced.
    const double t = nc == 1 ? 0.0
                             : static_cast<double>(nc - 1 - i) /
                                   static_cast<double>(nc - 1);
    const double jitter = std::exp(cost_rng.normal(0.0, 0.08));
    c.bandwidth_cost_factor = std::pow(config.cost_spread, t) * jitter;
    // Co-location cost tracks bandwidth cost sub-linearly (rich regions have
    // expensive racks but economies of scale).
    c.colo_cost_factor =
        std::pow(c.bandwidth_cost_factor, 0.6) * std::exp(cost_rng.normal(0.0, 0.15));
  }
  // Keep the "A is most expensive" labelling exact despite jitter.
  std::sort(countries.begin(), countries.end(), [](const Country& a, const Country& b) {
    return a.bandwidth_cost_factor > b.bandwidth_cost_factor;
  });
  for (std::size_t i = 0; i < nc; ++i) {
    countries[i].id = CountryId{static_cast<std::uint32_t>(i)};
    countries[i].name = std::string(1, static_cast<char>('A' + (i % 26)));
    if (i >= 26) countries[i].name += std::to_string(i / 26);
  }

  // Country anchor points, clamped into the configured latitude band.
  std::vector<GeoPoint> anchors(nc);
  for (std::size_t i = 0; i < nc; ++i) {
    const GeoPoint& base = kContinents[i % std::size(kContinents)];
    GeoPoint p{base.latitude_deg + place_rng.uniform(-14.0, 14.0),
               base.longitude_deg + place_rng.uniform(-28.0, 28.0)};
    p.latitude_deg = std::clamp(p.latitude_deg, config.min_latitude, config.max_latitude);
    anchors[i] = normalized(p);
  }

  // Distribute cities: two per country guaranteed, remainder weighted toward
  // cheap (high-demand) countries, mirroring where infrastructure clusters.
  std::vector<std::size_t> cities_per_country(nc, 2);
  std::size_t remaining = config.city_count - 2 * nc;
  while (remaining > 0) {
    // Bias toward the cheap end of the ladder: index drawn as max of two
    // uniforms leans late (cheap countries have higher indices).
    const std::size_t a = static_cast<std::size_t>(place_rng.below(nc));
    const std::size_t b = static_cast<std::size_t>(place_rng.below(nc));
    ++cities_per_country[std::max(a, b)];
    --remaining;
  }

  std::vector<City> cities;
  cities.reserve(config.city_count);
  for (std::size_t ci = 0; ci < nc; ++ci) {
    for (std::size_t k = 0; k < cities_per_country[ci]; ++k) {
      City city;
      city.id = CityId{static_cast<std::uint32_t>(cities.size())};
      city.name = countries[ci].name + std::to_string(k + 1);
      city.country = countries[ci].id;
      GeoPoint p{anchors[ci].latitude_deg + place_rng.uniform(-6.0, 6.0),
                 anchors[ci].longitude_deg + place_rng.uniform(-9.0, 9.0)};
      p.latitude_deg = std::clamp(p.latitude_deg, -80.0, 80.0);
      city.location = normalized(p);
      cities.push_back(std::move(city));
    }
  }

  // Power-law demand: rank the cities in a random order, weight by
  // (rank+1)^-alpha, normalize. (Paper §3.1: client-city distribution is a
  // power law.)
  std::vector<std::size_t> order(cities.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[demand_rng.below(i)]);
  }
  double total_weight = 0.0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const double w =
        std::pow(static_cast<double>(rank + 1), -config.city_demand_alpha);
    cities[order[rank]].demand_weight = w;
    total_weight += w;
  }
  for (auto& city : cities) city.demand_weight /= total_weight;

  for (auto& country : countries) country.demand_share = 0.0;
  for (const auto& city : cities) {
    countries[city.country.value()].demand_share += city.demand_weight;
  }

  return World{std::move(countries), std::move(cities)};
}

const Country& World::country(CountryId id) const {
  if (!id.valid() || id.value() >= countries_.size()) {
    throw std::out_of_range{"World::country: bad id"};
  }
  return countries_[id.value()];
}

const City& World::city(CityId id) const {
  if (!id.valid() || id.value() >= cities_.size()) {
    throw std::out_of_range{"World::city: bad id"};
  }
  return cities_[id.value()];
}

const Country& World::country_of(CityId id) const { return country(city(id).country); }

std::vector<CityId> World::cities_in(CountryId country) const {
  std::vector<CityId> out;
  for (const auto& city : cities_) {
    if (city.country == country) out.push_back(city.id);
  }
  return out;
}

double World::distance_km(CityId a, CityId b) const {
  return haversine_km(city(a).location, city(b).location);
}

double World::demand_weighted_cost_factor() const {
  double acc = 0.0;
  for (const auto& city : cities_) {
    acc += city.demand_weight * country_of(city.id).bandwidth_cost_factor;
  }
  return acc;
}

}  // namespace vdx::geo
