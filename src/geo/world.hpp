// Synthetic world model: countries with cost tiers and cities with
// power-law request weights.
//
// Substitution note (see DESIGN.md §2): the paper uses a proprietary CDN's
// per-country cost data (Figure 3, ~30x spread) and real city geolocation
// from the broker trace. We synthesize a world whose marginals match what
// the paper reports: 19 countries (labelled "A".."S" to mirror Figures
// 13-15) whose bandwidth cost factors span ~30x, and ~60 cities whose
// request-volume weights follow a power law (paper §3.1: "the distribution
// of client cities follows a power-law").
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/rng.hpp"
#include "geo/geo_point.hpp"

namespace vdx::geo {

using core::CityId;
using core::CountryId;

struct Country {
  CountryId id;
  std::string name;  // "A".."S", most expensive first (paper Fig. 13 ordering)
  /// Bandwidth cost per GB delivered from this country relative to the
  /// global *cheapest* country (>= 1.0). Spans ~30x (paper Fig. 3 / [20]).
  double bandwidth_cost_factor = 1.0;
  /// Co-location (energy/rack) base cost factor; correlates with bandwidth
  /// cost but with an independent spread.
  double colo_cost_factor = 1.0;
  /// Share of global requests originating here (sums to 1 over countries).
  double demand_share = 0.0;
};

struct City {
  CityId id;
  std::string name;
  CountryId country;
  GeoPoint location;
  /// Power-law request weight within the whole world (sums to 1 over cities).
  double demand_weight = 0.0;
};

struct WorldConfig {
  std::size_t country_count = 19;
  std::size_t city_count = 60;
  /// max/min spread of per-country bandwidth cost factors (paper: ~30x).
  double cost_spread = 30.0;
  /// Power-law exponent for city demand weights.
  double city_demand_alpha = 1.3;
  /// Latitude band for synthetic placement.
  double min_latitude = -45.0;
  double max_latitude = 62.0;
  std::uint64_t seed = 2017;
};

/// Immutable container for countries and cities plus lookup helpers.
class World {
 public:
  World(std::vector<Country> countries, std::vector<City> cities);

  /// Deterministically synthesizes a world per the config (see file comment).
  [[nodiscard]] static World generate(const WorldConfig& config);

  [[nodiscard]] std::span<const Country> countries() const noexcept { return countries_; }
  [[nodiscard]] std::span<const City> cities() const noexcept { return cities_; }

  [[nodiscard]] const Country& country(CountryId id) const;
  [[nodiscard]] const City& city(CityId id) const;
  [[nodiscard]] const Country& country_of(CityId id) const;

  /// Cities belonging to `country`, in id order.
  [[nodiscard]] std::vector<CityId> cities_in(CountryId country) const;

  /// Great-circle distance between two cities in km.
  [[nodiscard]] double distance_km(CityId a, CityId b) const;

  /// Traffic-weighted average bandwidth cost factor; the "Avg." baseline of
  /// the paper's Figure 3.
  [[nodiscard]] double demand_weighted_cost_factor() const;

 private:
  std::vector<Country> countries_;
  std::vector<City> cities_;
};

}  // namespace vdx::geo
