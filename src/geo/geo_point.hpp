// Spherical geometry primitives.
//
// Data-path distance (a headline metric of the paper: VDX cuts median
// client-to-cluster distance by up to ~74%) is great-circle distance between
// the client's city and the serving cluster's city.
#pragma once

#include <cmath>

namespace vdx::geo {

inline constexpr double kEarthRadiusKm = 6371.0;
inline constexpr double kKmPerMile = 1.609344;

/// Geographic coordinate in degrees. Latitude in [-90, 90], longitude in
/// [-180, 180).
struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;

  friend constexpr bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept {
  return deg * (M_PI / 180.0);
}

/// Great-circle (haversine) distance in kilometres.
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Great-circle distance in miles (paper reports miles in Figure 17).
[[nodiscard]] double haversine_miles(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Normalizes longitude into [-180, 180) and clamps latitude to [-90, 90].
[[nodiscard]] GeoPoint normalized(GeoPoint p) noexcept;

}  // namespace vdx::geo
