// Fraud handling (paper §6.3): "CDNs that consistently send fraudulent bids
// (or fail often) can be marked as 'bad' using a reputation system. Their
// bids can be handled at lower priority in the brokers' decision process."
//
// We track, per CDN, an EWMA of the relative error between the announced
// performance/price and what deliveries actually measured. CDNs whose error
// exceeds a threshold get a growing penalty multiplier applied to their bids
// in the optimizer; persistent offenders are blacklisted outright.
#pragma once

#include <cstddef>
#include <vector>

#include "core/ids.hpp"
#include "core/result.hpp"

namespace vdx::broker {

struct ReputationConfig {
  /// EWMA smoothing for the misreport-error estimate.
  double error_alpha = 0.25;
  /// Relative misreport treated as honest noise (mapping estimates are not
  /// exact even in good faith).
  double tolerated_error = 0.30;
  /// Penalty slope: multiplier = 1 + slope * max(0, error - tolerated).
  double penalty_slope = 4.0;
  /// Blacklist when the error EWMA exceeds this for `strikes` updates.
  double blacklist_error = 1.5;
  std::size_t blacklist_strikes = 3;
  /// Base handicap on a stale (cached, last-round) bid reused in a degraded
  /// round: its announced score is inflated by this factor on top of the
  /// CDN's regular penalty multiplier, so fresh bids always outrank equally
  /// good stale ones and bad-reputation CDNs degrade fastest.
  double stale_bid_discount = 1.5;
};

class ReputationSystem {
 public:
  explicit ReputationSystem(std::size_t cdn_count, ReputationConfig config = {});

  /// Records one delivery outcome: announced vs measured performance score.
  /// (Price misreports are folded the same way by callers that settle.)
  void record(core::CdnId cdn, double announced_score, double measured_score);

  /// Multiplier (>= 1) the optimizer applies to this CDN's bid price/score.
  [[nodiscard]] double penalty_multiplier(core::CdnId cdn) const;

  /// Weight multiplier for a stale cached bid from this CDN (degraded-round
  /// fallback): the regular penalty compounded with the staleness handicap.
  [[nodiscard]] double stale_multiplier(core::CdnId cdn) const;

  /// True once the CDN's bids should be ignored entirely.
  [[nodiscard]] bool is_blacklisted(core::CdnId cdn) const;

  /// Current misreport-error estimate (for inspection/tests).
  [[nodiscard]] double error_estimate(core::CdnId cdn) const;

  /// Number of tracked CDNs; record() on ids beyond this throws.
  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }

  [[nodiscard]] const ReputationConfig& config() const noexcept { return config_; }

  /// Per-CDN reputation state, exposed for checkpoint/restore.
  struct State {
    double error = 0.0;
    std::size_t strikes = 0;
    bool blacklisted = false;

    friend bool operator==(const State&, const State&) = default;
  };

  /// Checkpoint support: the complete per-CDN state vector (indexed by CDN
  /// id). restore() rejects a vector of the wrong size — a snapshot from a
  /// different catalog must not be grafted on.
  [[nodiscard]] const std::vector<State>& save() const noexcept { return states_; }
  [[nodiscard]] core::Status restore(std::vector<State> states);

 private:
  [[nodiscard]] const State& state_of(core::CdnId cdn) const;

  ReputationConfig config_;
  std::vector<State> states_;
};

}  // namespace vdx::broker
