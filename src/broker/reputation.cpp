#include "broker/reputation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace vdx::broker {

ReputationSystem::ReputationSystem(std::size_t cdn_count, ReputationConfig config)
    : config_(config), states_(cdn_count) {}

const ReputationSystem::State& ReputationSystem::state_of(core::CdnId cdn) const {
  if (!cdn.valid() || cdn.value() >= states_.size()) {
    throw std::out_of_range{"ReputationSystem: unknown CDN"};
  }
  return states_[cdn.value()];
}

void ReputationSystem::record(core::CdnId cdn, double announced_score,
                              double measured_score) {
  State& s = const_cast<State&>(state_of(cdn));
  const double base = std::max(1e-9, std::abs(announced_score));
  const double rel_error = std::abs(measured_score - announced_score) / base;
  s.error = (1.0 - config_.error_alpha) * s.error + config_.error_alpha * rel_error;
  if (s.error > config_.blacklist_error) {
    if (++s.strikes >= config_.blacklist_strikes) s.blacklisted = true;
  } else {
    s.strikes = 0;
  }
}

double ReputationSystem::penalty_multiplier(core::CdnId cdn) const {
  const State& s = state_of(cdn);
  return 1.0 + config_.penalty_slope *
                   std::max(0.0, s.error - config_.tolerated_error);
}

double ReputationSystem::stale_multiplier(core::CdnId cdn) const {
  return penalty_multiplier(cdn) * config_.stale_bid_discount;
}

bool ReputationSystem::is_blacklisted(core::CdnId cdn) const {
  return state_of(cdn).blacklisted;
}

double ReputationSystem::error_estimate(core::CdnId cdn) const {
  return state_of(cdn).error;
}

core::Status ReputationSystem::restore(std::vector<State> states) {
  if (states.size() != states_.size()) {
    return core::Status::failure(
        core::Errc::kInvalidArgument,
        "ReputationSystem::restore: snapshot tracks " +
            std::to_string(states.size()) + " CDNs, this system tracks " +
            std::to_string(states_.size()));
  }
  states_ = std::move(states);
  return core::ok_status();
}

}  // namespace vdx::broker
