// Broker-side Gather (Decision Protocol step 2): aggregate client sessions
// into Share-granularity groups.
//
// The Share format (§6.1) is [share_id, location, isp, content_id,
// data_size, client_count] — i.e. the broker ships *aggregates*, not raw
// clients. We group by (city, bitrate rung); ISP is carried for the wire
// format but not split on by default (configurable), matching the paper's
// optimization which keys on location and bitrate.
#pragma once

#include <span>
#include <vector>

#include "core/ids.hpp"
#include "trace/session.hpp"

namespace vdx::broker {

using core::CityId;
using core::ShareId;

/// One optimization group == one Share announcement.
struct ClientGroup {
  ShareId id;
  CityId city;
  std::uint32_t isp = 0;  // 0 = aggregated across ISPs
  double bitrate_mbps = 1.0;
  double client_count = 0.0;

  [[nodiscard]] double demand_mbps() const noexcept {
    return bitrate_mbps * client_count;
  }
};

struct GroupingConfig {
  /// Also split groups per client AS (finer shares, bigger problems).
  bool split_by_isp = false;
  /// Sessions with duration below this are dropped (abandoned clients do not
  /// consume meaningful capacity; set 0 to keep everything).
  double min_duration_s = 0.0;
};

/// Groups sessions into shares. Ids are dense in the returned order.
[[nodiscard]] std::vector<ClientGroup> group_sessions(
    std::span<const trace::Session> sessions, const GroupingConfig& config = {});

/// Total clients across groups.
[[nodiscard]] double total_clients(std::span<const ClientGroup> groups);

}  // namespace vdx::broker
