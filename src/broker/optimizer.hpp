// Broker-side Optimize (Decision Protocol step 6): the paper's Figure-9 ILP.
//
//   max  wp * sum Performance(m) * U  -  wc * sum Cost(m) * Bitrate(r) * U
//   s.t. each client uses exactly one matching; cluster capacities hold.
//
// Performance is a goodness value, but our mapping scores are
// lower-is-better; maximizing wp * (-score) is the same as minimizing
// wp * score, so the optimizer minimizes
//   wp * score + wc * price * bitrate          (per client)
// over the bids, with soft capacities (overload shows up as Congested, it is
// never silently forbidden — brokers can and do overload clusters today).
#pragma once

#include <span>
#include <vector>

#include "broker/grouping.hpp"
#include "broker/reputation.hpp"
#include "core/ids.hpp"
#include "obs/observe.hpp"
#include "solver/solver.hpp"

namespace vdx::broker {

using core::CdnId;
using core::ClusterId;

/// A bid as seen by the optimizer (one Announce row, §6.1:
/// [cluster_id, share_id, performance_estimate, capacity, price]).
struct BidView {
  ShareId share;
  CdnId cdn;
  ClusterId cluster;
  double score = 0.0;     // performance estimate, lower better
  double price = 0.0;     // $/unit announced
  double capacity = 0.0;  // Mbps the CDN commits on this cluster
};

struct OptimizeWeights {
  double performance = 1.0;  // wp
  double cost = 1.0;         // wc
};

/// One accepted allocation: `clients` clients of the bid's share go to the
/// bid's cluster.
struct Allocation {
  std::size_t bid_index = 0;
  double clients = 0.0;
};

struct OptimizeResult {
  std::vector<Allocation> allocations;
  /// Objective value (paper formulation, minimized form) excluding penalty.
  double objective = 0.0;
  /// Demand placed above committed capacity (Mbps).
  double overflow_mbps = 0.0;
  solver::Backend backend_used = solver::Backend::kAuto;
};

struct OptimizerConfig {
  OptimizeWeights weights;
  solver::SolveOptions solve;
  /// Optional reputation system: bids from badly-reputed CDNs have their
  /// price/score inflated by the penalty multiplier before optimizing.
  const ReputationSystem* reputation = nullptr;
  /// Incremental feeds (streaming timelines, mid-round load updates) can
  /// momentarily present groups no CDN has bid on yet. With this set, such
  /// groups are left unserved — reported via broker.optimize.unbid_groups —
  /// instead of the call throwing.
  bool allow_unbid_groups = false;
  /// Observability sinks (no-op by default); forwarded into the solver.
  obs::Observer obs;
};

/// Solves the assignment of groups to bids. Every group must have at least
/// one bid; throws std::invalid_argument otherwise (unless
/// `allow_unbid_groups` is set, in which case unbid groups stay unserved).
/// Capacity is shared by bids naming the same cluster (committed capacity =
/// max over those bids).
[[nodiscard]] OptimizeResult optimize(std::span<const ClientGroup> groups,
                                      std::span<const BidView> bids,
                                      const OptimizerConfig& config = {});

}  // namespace vdx::broker
