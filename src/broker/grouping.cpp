#include "broker/grouping.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

namespace vdx::broker {

std::vector<ClientGroup> group_sessions(std::span<const trace::Session> sessions,
                                        const GroupingConfig& config) {
  // Key: (city, quantized bitrate, isp). Bitrates come from a discrete
  // ladder already; quantize to 1 kbps to be safe against fp noise.
  std::map<std::tuple<std::uint32_t, std::int64_t, std::uint32_t>, ClientGroup> groups;
  for (const trace::Session& s : sessions) {
    if (s.duration_s < config.min_duration_s) continue;
    const auto kbps = static_cast<std::int64_t>(std::llround(s.bitrate_mbps * 1000.0));
    const std::uint32_t isp = config.split_by_isp ? s.as_number : 0;
    auto [it, inserted] = groups.try_emplace(
        std::make_tuple(s.city.value(), kbps, isp), ClientGroup{});
    ClientGroup& g = it->second;
    if (inserted) {
      g.city = s.city;
      g.isp = isp;
      g.bitrate_mbps = static_cast<double>(kbps) / 1000.0;
    }
    g.client_count += 1.0;
  }

  std::vector<ClientGroup> out;
  out.reserve(groups.size());
  for (auto& [key, group] : groups) {
    group.id = ShareId{static_cast<std::uint32_t>(out.size())};
    out.push_back(group);
  }
  return out;
}

double total_clients(std::span<const ClientGroup> groups) {
  double total = 0.0;
  for (const ClientGroup& g : groups) total += g.client_count;
  return total;
}

}  // namespace vdx::broker
