#include "broker/optimizer.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace vdx::broker {

OptimizeResult optimize(std::span<const ClientGroup> groups,
                        std::span<const BidView> bids, const OptimizerConfig& config) {
  const obs::SpanTracer::Scoped span{config.obs.tracer, "broker.optimize"};

  // Dense share-id -> group index (ids are dense by construction but the
  // optimizer only assumes they are unique).
  std::unordered_map<std::uint32_t, std::uint32_t> group_of_share;
  group_of_share.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!group_of_share.emplace(groups[g].id.value(), static_cast<std::uint32_t>(g))
             .second) {
      throw std::invalid_argument{"optimize: duplicate share id"};
    }
  }

  // Cluster -> resource row; committed capacity is shared by all bids naming
  // the cluster (take the max commitment announced).
  std::unordered_map<std::uint32_t, std::uint32_t> resource_of_cluster;
  solver::AssignmentProblem problem;
  problem.group_counts.reserve(groups.size());
  for (const ClientGroup& g : groups) problem.group_counts.push_back(g.client_count);

  std::vector<std::size_t> usable_bid;  // problem option -> bids[] index
  usable_bid.reserve(bids.size());
  for (std::size_t b = 0; b < bids.size(); ++b) {
    const BidView& bid = bids[b];
    const auto group_it = group_of_share.find(bid.share.value());
    if (group_it == group_of_share.end()) {
      throw std::invalid_argument{"optimize: bid references unknown share"};
    }
    if (config.reputation && config.reputation->is_blacklisted(bid.cdn)) continue;

    const double penalty =
        config.reputation ? config.reputation->penalty_multiplier(bid.cdn) : 1.0;
    const ClientGroup& group = groups[group_it->second];

    auto [res_it, inserted] = resource_of_cluster.try_emplace(
        bid.cluster.value(), static_cast<std::uint32_t>(problem.capacities.size()));
    if (inserted) {
      problem.capacities.push_back(bid.capacity);
    } else {
      problem.capacities[res_it->second] =
          std::max(problem.capacities[res_it->second], bid.capacity);
    }

    solver::Option option;
    option.group = group_it->second;
    option.resource = res_it->second;
    option.unit_demand = group.bitrate_mbps;
    option.unit_cost = penalty * (config.weights.performance * bid.score +
                                  config.weights.cost * bid.price * group.bitrate_mbps);
    problem.options.push_back(option);
    usable_bid.push_back(b);
  }

  // Unbid groups: validate() rejects a populated group with no option. When
  // the caller opted in, zero those groups' counts instead — option indices
  // are untouched, the groups simply place nobody this round.
  std::size_t unbid_groups = 0;
  if (config.allow_unbid_groups) {
    std::vector<bool> has_bid(problem.group_counts.size(), false);
    for (const solver::Option& option : problem.options) has_bid[option.group] = true;
    for (std::size_t g = 0; g < problem.group_counts.size(); ++g) {
      if (problem.group_counts[g] > 0.0 && !has_bid[g]) {
        problem.group_counts[g] = 0.0;
        ++unbid_groups;
      }
    }
  }

  problem.validate();  // throws if a populated group ended up with no bids

  solver::SolveOptions solve = config.solve;
  solve.obs = config.obs;
  const solver::Assignment assignment = solver::solve(problem, solve);

  OptimizeResult result;
  result.backend_used = config.solve.backend;
  result.objective = assignment.objective;
  result.overflow_mbps = assignment.overflow_demand;
  for (std::size_t i = 0; i < assignment.amounts.size(); ++i) {
    if (assignment.amounts[i] > 1e-9) {
      result.allocations.push_back(Allocation{usable_bid[i], assignment.amounts[i]});
    }
  }
  if (config.obs.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *config.obs.metrics;
    metrics.counter("broker.optimize.calls").add();
    metrics.counter("broker.optimize.bids").add(static_cast<double>(bids.size()));
    metrics.counter("broker.optimize.allocations")
        .add(static_cast<double>(result.allocations.size()));
    metrics.counter("broker.optimize.overflow_mbps").add(result.overflow_mbps);
    if (unbid_groups > 0) {
      metrics.counter("broker.optimize.unbid_groups")
          .add(static_cast<double>(unbid_groups));
    }
  }
  return result;
}

}  // namespace vdx::broker
