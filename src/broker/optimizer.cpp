#include "broker/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdx::broker {

namespace {
constexpr std::uint32_t kUnmapped = UINT32_MAX;
}  // namespace

OptimizeResult optimize(std::span<const ClientGroup> groups,
                        std::span<const BidView> bids, const OptimizerConfig& config) {
  const obs::SpanTracer::Scoped span{config.obs.tracer, "broker.optimize"};

  // Share-id -> group index as a dense direct-index table (share and cluster
  // ids are dense by construction, so the tables stay small; the optimizer
  // still only assumes uniqueness and tolerates gaps via the sentinel).
  std::uint32_t max_share = 0;
  for (const ClientGroup& g : groups) max_share = std::max(max_share, g.id.value());
  std::vector<std::uint32_t> group_of_share(groups.empty() ? 0 : max_share + 1,
                                            kUnmapped);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::uint32_t& slot = group_of_share[groups[g].id.value()];
    if (slot != kUnmapped) {
      throw std::invalid_argument{"optimize: duplicate share id"};
    }
    slot = static_cast<std::uint32_t>(g);
  }

  // Cluster -> resource row, same dense-table scheme (rows are issued in
  // first-appearance order over the bid list); committed capacity is shared
  // by all bids naming the cluster (take the max commitment announced).
  std::uint32_t max_cluster = 0;
  for (const BidView& bid : bids) {
    max_cluster = std::max(max_cluster, bid.cluster.value());
  }
  std::vector<std::uint32_t> resource_of_cluster(bids.empty() ? 0 : max_cluster + 1,
                                                 kUnmapped);
  solver::AssignmentProblem problem;
  problem.group_counts.reserve(groups.size());
  for (const ClientGroup& g : groups) problem.group_counts.push_back(g.client_count);

  std::vector<std::size_t> usable_bid;  // problem option -> bids[] index
  usable_bid.reserve(bids.size());
  for (std::size_t b = 0; b < bids.size(); ++b) {
    const BidView& bid = bids[b];
    if (bid.share.value() >= group_of_share.size() ||
        group_of_share[bid.share.value()] == kUnmapped) {
      throw std::invalid_argument{"optimize: bid references unknown share"};
    }
    if (config.reputation && config.reputation->is_blacklisted(bid.cdn)) continue;

    const double penalty =
        config.reputation ? config.reputation->penalty_multiplier(bid.cdn) : 1.0;
    const ClientGroup& group = groups[group_of_share[bid.share.value()]];

    std::uint32_t& resource = resource_of_cluster[bid.cluster.value()];
    if (resource == kUnmapped) {
      resource = static_cast<std::uint32_t>(problem.capacities.size());
      problem.capacities.push_back(bid.capacity);
    } else {
      problem.capacities[resource] =
          std::max(problem.capacities[resource], bid.capacity);
    }

    solver::Option option;
    option.group = group_of_share[bid.share.value()];
    option.resource = resource;
    option.unit_demand = group.bitrate_mbps;
    option.unit_cost = penalty * (config.weights.performance * bid.score +
                                  config.weights.cost * bid.price * group.bitrate_mbps);
    problem.options.push_back(option);
    usable_bid.push_back(b);
  }

  // Unbid groups: validate() rejects a populated group with no option. When
  // the caller opted in, zero those groups' counts instead — option indices
  // are untouched, the groups simply place nobody this round.
  std::size_t unbid_groups = 0;
  if (config.allow_unbid_groups) {
    std::vector<bool> has_bid(problem.group_counts.size(), false);
    for (const solver::Option& option : problem.options) has_bid[option.group] = true;
    for (std::size_t g = 0; g < problem.group_counts.size(); ++g) {
      if (problem.group_counts[g] > 0.0 && !has_bid[g]) {
        problem.group_counts[g] = 0.0;
        ++unbid_groups;
      }
    }
  }

  problem.validate();  // throws if a populated group ended up with no bids

  solver::SolveOptions solve = config.solve;
  solve.obs = config.obs;
  const solver::Assignment assignment = solver::solve(problem, solve);

  OptimizeResult result;
  result.backend_used = config.solve.backend;
  result.objective = assignment.objective;
  result.overflow_mbps = assignment.overflow_demand;
  for (std::size_t i = 0; i < assignment.amounts.size(); ++i) {
    if (assignment.amounts[i] > 1e-9) {
      result.allocations.push_back(Allocation{usable_bid[i], assignment.amounts[i]});
    }
  }
  if (config.obs.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *config.obs.metrics;
    metrics.counter("broker.optimize.calls").add();
    metrics.counter("broker.optimize.bids").add(static_cast<double>(bids.size()));
    metrics.counter("broker.optimize.allocations")
        .add(static_cast<double>(result.allocations.size()));
    metrics.counter("broker.optimize.overflow_mbps").add(result.overflow_mbps);
    if (unbid_groups > 0) {
      metrics.counter("broker.optimize.unbid_groups")
          .add(static_cast<double>(unbid_groups));
    }
  }
  return result;
}

}  // namespace vdx::broker
