// Heavy-tailed and discrete samplers used by the workload synthesizers.
//
// The CoNEXT'17 broker trace (paper §3.1) exhibits Zipf video popularity, a
// power-law city distribution, a bimodal bitrate mix, and ~78% immediate
// abandonment. These samplers reproduce those marginals deterministically
// from a seeded Rng.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace vdx::core {

/// Zipf(s) sampler over ranks {0, .., n-1}: P(k) ∝ 1/(k+1)^s.
/// Precomputes the CDF; O(log n) per sample.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  [[nodiscard]] std::size_t operator()(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }
  /// Probability mass of rank k.
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

/// Continuous bounded Pareto (power-law) sampler on [lo, hi] with density
/// ∝ x^-alpha. Used for city populations / request volumes.
class BoundedParetoDistribution {
 public:
  BoundedParetoDistribution(double lo, double hi, double alpha);

  [[nodiscard]] double operator()(Rng& rng) const;
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double lo_;
  double hi_;
  double alpha_;
};

/// General discrete distribution over arbitrary non-negative weights.
/// Walker alias method: O(n) build, O(1) sample.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::span<const double> weights);

  [[nodiscard]] std::size_t operator()(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return probability_.size(); }
  /// Normalized probability of outcome i.
  [[nodiscard]] double probability_of(std::size_t i) const;

 private:
  std::vector<double> probability_;  // alias-table cell probability
  std::vector<std::uint32_t> alias_;
  std::vector<double> normalized_;  // original weights / sum
};

/// Bimodal mixture of two normals clamped to [lo, hi]; the paper's bitrate
/// distribution peaks at the lowest and highest bitrate.
class BimodalDistribution {
 public:
  struct Mode {
    double mean = 0.0;
    double stddev = 1.0;
    double weight = 0.5;
  };

  BimodalDistribution(Mode low, Mode high, double clamp_lo, double clamp_hi);

  [[nodiscard]] double operator()(Rng& rng) const;

 private:
  Mode low_;
  Mode high_;
  double clamp_lo_;
  double clamp_hi_;
};

}  // namespace vdx::core
