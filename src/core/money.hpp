// Fixed-point money for settlement accounting.
//
// Rates (cost per gigabyte, prices per bit) stay as doubles inside the
// optimizers, but once traffic is settled we accumulate exact totals in
// integer micro-dollars so profit/loss comparisons (Figures 10-16) are
// deterministic and free of floating-point drift.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace vdx::core {

/// Signed amount of money stored as integer micro-dollars (1e-6 USD).
class Money {
 public:
  constexpr Money() = default;

  [[nodiscard]] static constexpr Money from_micros(std::int64_t micros) noexcept {
    Money m;
    m.micros_ = micros;
    return m;
  }
  /// Rounds half-away-from-zero to the nearest micro-dollar.
  [[nodiscard]] static Money from_dollars(double dollars);

  [[nodiscard]] constexpr std::int64_t micros() const noexcept { return micros_; }
  [[nodiscard]] double dollars() const noexcept {
    return static_cast<double>(micros_) / 1e6;
  }

  constexpr Money& operator+=(Money rhs) noexcept {
    micros_ += rhs.micros_;
    return *this;
  }
  constexpr Money& operator-=(Money rhs) noexcept {
    micros_ -= rhs.micros_;
    return *this;
  }

  friend constexpr Money operator+(Money a, Money b) noexcept { return a += b; }
  friend constexpr Money operator-(Money a, Money b) noexcept { return a -= b; }
  friend constexpr Money operator-(Money a) noexcept {
    return Money::from_micros(-a.micros_);
  }
  /// Scales by a real factor, rounding half-away-from-zero.
  [[nodiscard]] Money scaled(double factor) const;

  friend constexpr auto operator<=>(Money, Money) noexcept = default;

  /// "$12.345678" / "-$0.000001"-style rendering.
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t micros_ = 0;
};

}  // namespace vdx::core
