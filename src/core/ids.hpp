// Strongly-typed integer identifiers.
//
// The simulator wires together many index spaces (CDNs, clusters, cities,
// countries, client groups, shares, sessions). A thin phantom-tagged wrapper
// keeps them from being mixed up at compile time at zero runtime cost.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace vdx::core {

template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type invalid_value =
      std::numeric_limits<underlying_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(underlying_type value) noexcept : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != invalid_value; }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;

 private:
  underlying_type value_ = invalid_value;
};

struct CdnTag {};
struct ClusterTag {};
struct CityTag {};
struct CountryTag {};
struct GroupTag {};
struct ShareTag {};
struct SessionTag {};
struct VideoTag {};

using CdnId = Id<CdnTag>;
using ClusterId = Id<ClusterTag>;
using CityId = Id<CityTag>;
using CountryId = Id<CountryTag>;
using GroupId = Id<GroupTag>;
using ShareId = Id<ShareTag>;
using SessionId = Id<SessionTag>;
using VideoId = Id<VideoTag>;

}  // namespace vdx::core

template <typename Tag>
struct std::hash<vdx::core::Id<Tag>> {
  std::size_t operator()(vdx::core::Id<Tag> id) const noexcept {
    return std::hash<typename vdx::core::Id<Tag>::underlying_type>{}(id.value());
  }
};
