#include "core/flags.hpp"

#include <cmath>
#include <filesystem>
#include <stdexcept>

namespace vdx::core {

namespace {

[[noreturn]] void fail(const std::string& key, const std::string& value,
                       const std::string& expected) {
  throw std::invalid_argument{"--" + key + " " + expected + " (got '" + value + "')"};
}

double parse_number(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    fail(key, value, "needs a number");
  }
  if (consumed != value.size() || !std::isfinite(parsed)) {
    fail(key, value, "needs a finite number");
  }
  return parsed;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument{"expected --flag, got '" + key + "'"};
    }
    key = key.substr(2);
    if (key.empty()) throw std::invalid_argument{"empty flag name '--'"};
    if (i + 1 >= argc || std::string{argv[i + 1]}.rfind("--", 0) == 0) {
      values_[key] = "";  // bare switch, e.g. --stream
    } else {
      values_[key] = argv[++i];
    }
  }
}

Flags::Flags(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  *this = Flags{static_cast<int>(argv.size()), argv.data(), 0};
}

const std::string* Flags::raw(const std::string& key) {
  const auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  used_.insert(key);
  return &it->second;
}

double Flags::number(const std::string& key, double fallback) {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a value"};
  return parse_number(key, *value);
}

double Flags::positive(const std::string& key, double fallback) {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a value"};
  const double parsed = parse_number(key, *value);
  if (parsed <= 0.0) fail(key, *value, "must be > 0");
  return parsed;
}

std::size_t Flags::count(const std::string& key, std::size_t fallback,
                         std::size_t minimum) {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a value"};
  std::size_t consumed = 0;
  long long parsed = 0;
  try {
    parsed = std::stoll(*value, &consumed);
  } catch (const std::exception&) {
    fail(key, *value, "needs an integer");
  }
  if (consumed != value->size()) fail(key, *value, "needs an integer");
  if (parsed < 0 || static_cast<std::size_t>(parsed) < minimum) {
    fail(key, *value, "must be an integer >= " + std::to_string(minimum));
  }
  return static_cast<std::size_t>(parsed);
}

bool Flags::boolean(const std::string& key) {
  const std::string* value = raw(key);
  if (value == nullptr) return false;
  return value->empty() || *value == "true" || *value == "1";
}

std::string Flags::text(const std::string& key, std::string fallback) {
  const std::string* value = raw(key);
  return value == nullptr ? std::move(fallback) : *value;
}

std::string Flags::one_of(const std::string& key, std::string fallback,
                          const std::vector<std::string>& allowed) {
  const std::string* value = raw(key);
  if (value == nullptr) return std::move(fallback);
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a value"};
  for (const std::string& candidate : allowed) {
    if (*value == candidate) return *value;
  }
  std::string expected = "must be one of ";
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (i > 0) expected += '|';
    expected += allowed[i];
  }
  fail(key, *value, expected);
}

std::string Flags::existing_path(const std::string& key) {
  const std::string* value = raw(key);
  if (value == nullptr) return "";
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a path"};
  if (!std::filesystem::exists(*value)) {
    throw std::invalid_argument{"--" + key + ": no such file or directory: '" +
                                *value + "'"};
  }
  return *value;
}

bool Flags::has(const std::string& key) const { return values_.contains(key); }

void Flags::check_all_used() const {
  for (const auto& [key, value] : values_) {
    if (!used_.contains(key)) {
      throw std::invalid_argument{"unknown flag --" + key};
    }
  }
}

}  // namespace vdx::core
