#include "core/flags.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vdx::core {

namespace {

[[noreturn]] void fail(const std::string& key, const std::string& value,
                       const std::string& expected) {
  throw std::invalid_argument{"--" + key + " " + expected + " (got '" + value + "')"};
}

double parse_number(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    fail(key, value, "needs a number");
  }
  if (consumed != value.size() || !std::isfinite(parsed)) {
    fail(key, value, "needs a finite number");
  }
  return parsed;
}

std::string repr(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

Flags::Flags(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument{"expected --flag, got '" + key + "'"};
    }
    key = key.substr(2);
    if (key.empty()) throw std::invalid_argument{"empty flag name '--'"};
    // `--key=value` carries its value inline; the value may itself start
    // with `--` or be empty (an empty value reads as a bare switch).
    if (const std::size_t eq = key.find('='); eq != std::string::npos) {
      if (eq == 0) {
        throw std::invalid_argument{"empty flag name '--" + key + "'"};
      }
      values_[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    if (i + 1 >= argc || std::string{argv[i + 1]}.rfind("--", 0) == 0) {
      values_[key] = "";  // bare switch, e.g. --stream
    } else {
      values_[key] = argv[++i];
    }
  }
}

Flags::Flags(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  *this = Flags{static_cast<int>(argv.size()), argv.data(), 0};
}

const std::string* Flags::raw(const std::string& key) {
  const auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  used_.insert(key);
  return &it->second;
}

void Flags::note(const std::string& key, std::string kind,
                 std::string fallback) {
  if (!help_keys_.insert(key).second) return;
  help_.push_back({key, std::move(kind), std::move(fallback)});
}

double Flags::number(const std::string& key, double fallback) {
  note(key, "<number>", repr(fallback));
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a value"};
  return parse_number(key, *value);
}

double Flags::positive(const std::string& key, double fallback) {
  note(key, "<number > 0>", repr(fallback));
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a value"};
  const double parsed = parse_number(key, *value);
  if (parsed <= 0.0) fail(key, *value, "must be > 0");
  return parsed;
}

std::size_t Flags::count(const std::string& key, std::size_t fallback,
                         std::size_t minimum) {
  note(key, "<integer >= " + std::to_string(minimum) + ">",
       std::to_string(fallback));
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a value"};
  std::size_t consumed = 0;
  long long parsed = 0;
  try {
    parsed = std::stoll(*value, &consumed);
  } catch (const std::exception&) {
    fail(key, *value, "needs an integer");
  }
  if (consumed != value->size()) fail(key, *value, "needs an integer");
  if (parsed < 0 || static_cast<std::size_t>(parsed) < minimum) {
    fail(key, *value, "must be an integer >= " + std::to_string(minimum));
  }
  return static_cast<std::size_t>(parsed);
}

bool Flags::boolean(const std::string& key) {
  note(key, "", "");
  const std::string* value = raw(key);
  if (value == nullptr) return false;
  return value->empty() || *value == "true" || *value == "1";
}

std::string Flags::text(const std::string& key, std::string fallback) {
  note(key, "<text>", fallback);
  const std::string* value = raw(key);
  return value == nullptr ? std::move(fallback) : *value;
}

std::string Flags::one_of(const std::string& key, std::string fallback,
                          const std::vector<std::string>& allowed) {
  std::string kind = "<";
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (i > 0) kind += '|';
    kind += allowed[i];
  }
  kind += '>';
  note(key, std::move(kind), fallback);
  const std::string* value = raw(key);
  if (value == nullptr) return std::move(fallback);
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a value"};
  for (const std::string& candidate : allowed) {
    if (*value == candidate) return *value;
  }
  std::string expected = "must be one of ";
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (i > 0) expected += '|';
    expected += allowed[i];
  }
  fail(key, *value, expected);
}

std::string Flags::existing_path(const std::string& key) {
  note(key, "<path>", "");
  const std::string* value = raw(key);
  if (value == nullptr) return "";
  if (value->empty()) throw std::invalid_argument{"--" + key + " needs a path"};
  if (!std::filesystem::exists(*value)) {
    throw std::invalid_argument{"--" + key + ": no such file or directory: '" +
                                *value + "'"};
  }
  return *value;
}

bool Flags::has(const std::string& key) const { return values_.contains(key); }

void Flags::check_all_used() const {
  for (const auto& [key, value] : values_) {
    if (!used_.contains(key)) {
      throw std::invalid_argument{"unknown flag --" + key};
    }
  }
}

void Flags::write_help(std::ostream& out) const {
  std::size_t width = 0;
  std::vector<std::string> heads;
  heads.reserve(help_.size());
  for (const HelpEntry& entry : help_) {
    std::string head = "--" + entry.key;
    if (!entry.kind.empty()) head += " " + entry.kind;
    width = std::max(width, head.size());
    heads.push_back(std::move(head));
  }
  for (std::size_t i = 0; i < help_.size(); ++i) {
    out << "  " << heads[i];
    if (!help_[i].fallback.empty()) {
      out << std::string(width - heads[i].size() + 2, ' ')
          << "default: " << help_[i].fallback;
    }
    out << '\n';
  }
}

}  // namespace vdx::core
