#include "core/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vdx::core {

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent)
    : exponent_(exponent) {
  if (n == 0) throw std::invalid_argument{"ZipfDistribution: n must be > 0"};
  if (exponent < 0.0) throw std::invalid_argument{"ZipfDistribution: exponent must be >= 0"};
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against fp round-off
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfDistribution::pmf(std::size_t k) const {
  if (k >= cdf_.size()) throw std::out_of_range{"ZipfDistribution::pmf"};
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

BoundedParetoDistribution::BoundedParetoDistribution(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument{"BoundedParetoDistribution: require 0 < lo < hi"};
  }
  if (!(alpha > 0.0)) {
    throw std::invalid_argument{"BoundedParetoDistribution: require alpha > 0"};
  }
}

double BoundedParetoDistribution::operator()(Rng& rng) const {
  // Inverse-CDF for the bounded Pareto. Handle the measure-zero alpha==1
  // case of the exponent formula explicitly.
  const double u = rng.uniform();
  if (std::abs(alpha_ - 1.0) < 1e-12) {
    return lo_ * std::pow(hi_ / lo_, u);
  }
  const double la = std::pow(lo_, 1.0 - alpha_);
  const double ha = std::pow(hi_, 1.0 - alpha_);
  return std::pow(la + u * (ha - la), 1.0 / (1.0 - alpha_));
}

DiscreteDistribution::DiscreteDistribution(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument{"DiscreteDistribution: empty weights"};
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(sum > 0.0)) throw std::invalid_argument{"DiscreteDistribution: weights must sum > 0"};
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"DiscreteDistribution: negative weight"};
  }

  const std::size_t n = weights.size();
  normalized_.resize(n);
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Walker alias construction.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / sum;
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) probability_[i] = 1.0;
  for (const std::uint32_t i : small) probability_[i] = 1.0;
}

std::size_t DiscreteDistribution::operator()(Rng& rng) const {
  const std::size_t cell = static_cast<std::size_t>(rng.below(probability_.size()));
  return rng.uniform() < probability_[cell] ? cell : alias_[cell];
}

double DiscreteDistribution::probability_of(std::size_t i) const {
  if (i >= normalized_.size()) throw std::out_of_range{"DiscreteDistribution::probability_of"};
  return normalized_[i];
}

BimodalDistribution::BimodalDistribution(Mode low, Mode high, double clamp_lo,
                                         double clamp_hi)
    : low_(low), high_(high), clamp_lo_(clamp_lo), clamp_hi_(clamp_hi) {
  if (!(clamp_lo < clamp_hi)) {
    throw std::invalid_argument{"BimodalDistribution: require clamp_lo < clamp_hi"};
  }
  const double wsum = low_.weight + high_.weight;
  if (!(wsum > 0.0)) throw std::invalid_argument{"BimodalDistribution: weights must sum > 0"};
  low_.weight /= wsum;
  high_.weight /= wsum;
}

double BimodalDistribution::operator()(Rng& rng) const {
  const Mode& mode = rng.uniform() < low_.weight ? low_ : high_;
  return std::clamp(rng.normal(mode.mean, mode.stddev), clamp_lo_, clamp_hi_);
}

}  // namespace vdx::core
