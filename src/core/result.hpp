// Typed error handling for paths that must never throw across a trust
// boundary (hostile wire input, chaos-transport rejects, "not ready" API
// misuse surfaced to callers). A `Result<T>` either holds a T or an
// `Error{code, message}`; accessing the wrong side is a programmer error and
// throws std::logic_error — wire data can never trigger it.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace vdx::core {

enum class Errc : std::uint8_t {
  kInvalidArgument = 1,
  kNotReady = 2,       // operation requires prior state (e.g. a completed round)
  kCorruptFrame = 3,   // wire-level rejection: truncated/mutated/unknown frame
  kTimeout = 4,        // deadline expired after the retry budget
  kUnavailable = 5,    // the counterpart is dark / withdrawn
  kCorruptSnapshot = 6,   // checkpoint rejection: truncated/mutated/bad checksum
  kVersionMismatch = 7,   // checkpoint written by an incompatible format version
  kOverloaded = 8,        // demand exceeds the configured budget/capacity
};

[[nodiscard]] constexpr const char* errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::kInvalidArgument: return "invalid_argument";
    case Errc::kNotReady: return "not_ready";
    case Errc::kCorruptFrame: return "corrupt_frame";
    case Errc::kTimeout: return "timeout";
    case Errc::kUnavailable: return "unavailable";
    case Errc::kCorruptSnapshot: return "corrupt_snapshot";
    case Errc::kVersionMismatch: return "version_mismatch";
    case Errc::kOverloaded: return "overloaded";
  }
  return "unknown";
}

struct Error {
  Errc code = Errc::kInvalidArgument;
  std::string message;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(*-explicit-*)
  Result(Error error) : data_(std::in_place_index<1>, std::move(error)) {}  // NOLINT(*-explicit-*)

  static Result failure(Errc code, std::string message) {
    return Result{Error{code, std::move(message)}};
  }

  [[nodiscard]] bool ok() const noexcept { return data_.index() == 0; }
  [[nodiscard]] explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & { return std::get<0>(checked(true)); }
  [[nodiscard]] const T& value() const& {
    return std::get<0>(const_cast<Result*>(this)->checked(true));
  }
  [[nodiscard]] T&& value() && { return std::get<0>(std::move(checked(true))); }

  [[nodiscard]] const Error& error() const {
    return std::get<1>(const_cast<Result*>(this)->checked(false));
  }

  template <typename U>
  [[nodiscard]] T value_or(U&& fallback) const& {
    return ok() ? std::get<0>(data_) : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::variant<T, Error>& checked(bool want_value) {
    if (ok() != want_value) {
      throw std::logic_error{want_value ? "Result::value() on an error"
                                        : "Result::error() on a value"};
    }
    return data_;
  }

  std::variant<T, Error> data_;
};

/// Result with no payload: success or an Error.
using Status = Result<std::monostate>;

[[nodiscard]] inline Status ok_status() { return Status{std::monostate{}}; }

}  // namespace vdx::core
