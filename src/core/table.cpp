#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace vdx::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument{"Table: need at least one column"};
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table::add_row: arity mismatch"};
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_sep = [&] {
    os << '+';
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t i = row[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

namespace {

std::string csv_escape(std::string_view cell) {
  if (cell.find_first_of(",\"\n") == std::string_view::npos) return std::string{cell};
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_percent(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, ratio * 100.0);
  return buf;
}

}  // namespace vdx::core
