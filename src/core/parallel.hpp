// Deterministic parallel execution (ROADMAP: "as fast as the hardware
// allows" without giving up the repo's byte-identity invariant).
//
// ThreadPool is a small work-stealing-free pool: one shared atomic index
// counter per job, no per-thread queues, no randomized victim selection.
// parallel_map / parallel_for_indexed collect results *in input order*, so
// any pipeline whose per-item work is a pure function of the item produces
// output byte-identical to a serial run regardless of thread count or
// scheduling. `threads == 1` short-circuits to a plain serial loop on the
// calling thread — the legacy path, bit-for-bit untouched.
//
// Determinism contract (see DESIGN.md §8):
//   - item i's result lands in slot i; merge order is input order;
//   - worker threads must only touch shared state that is immutable or
//     commutative-exact (atomic integer counters); wall-clock metrics are
//     exempt from byte-identity;
//   - exceptions: every item runs; the exception thrown by the *smallest*
//     failing index is rethrown after the job drains (deterministic even
//     when several items fail).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace vdx::core {

class ThreadPool {
 public:
  /// `threads == 0` resolves to hardware_concurrency; `threads == 1` runs
  /// every job inline on the calling thread (no workers are spawned).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers plus the participating caller thread.
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  [[nodiscard]] static std::size_t hardware_threads() noexcept;
  /// 0 -> hardware_threads(); anything else is returned as-is (min 1).
  [[nodiscard]] static std::size_t resolve(std::size_t requested) noexcept;

  /// Runs body(i) for every i in [0, count). The caller participates; the
  /// call returns when every index has executed. Exceptions are collected
  /// per index and the smallest-index one is rethrown. Not reentrant: a
  /// body must not submit to the same pool (throws std::logic_error).
  void for_indexed(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::size_t active = 0;  // workers inside run_slice (guarded by mutex_)
    std::vector<std::exception_ptr> errors;
  };

  void worker_loop();
  void run_slice(Job& job) noexcept;

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Ordered parallel map: returns {fn(0), fn(1), ..., fn(count-1)} with slot
/// i computed by whichever thread claimed i — output order is input order.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<std::optional<R>> slots(count);
  pool.for_indexed(count, [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(count);
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Ordered parallel for: body(i) for i in [0, count) — thin alias over the
/// pool member, for symmetry with parallel_map at call sites.
template <typename Fn>
void parallel_for_indexed(ThreadPool& pool, std::size_t count, Fn&& fn) {
  pool.for_indexed(count, [&](std::size_t i) { fn(i); });
}

}  // namespace vdx::core
