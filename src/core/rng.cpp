#include "core/rng.hpp"

#include <cmath>

namespace vdx::core {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for workload
  // synthesis at large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Rng Rng::fork(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the label.
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return Rng{(*this)() ^ h};
}

}  // namespace vdx::core
