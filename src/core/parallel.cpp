#include "core/parallel.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdx::core {

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t ThreadPool::resolve(std::size_t requested) noexcept {
  return requested == 0 ? hardware_threads() : requested;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = std::max<std::size_t>(1, resolve(threads));
  workers_.reserve(total - 1);
  for (std::size_t t = 0; t + 1 < total; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock{mutex_};
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return stop_ || (generation_ != seen && job_ != nullptr); });
    if (stop_) return;
    seen = generation_;
    Job& job = *job_;
    ++job.active;
    lock.unlock();
    run_slice(job);
    lock.lock();
    if (--job.active == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run_slice(Job& job) noexcept {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      (*job.body)(i);
    } catch (...) {
      job.errors[i] = std::current_exception();
    }
  }
}

void ThreadPool::for_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Legacy serial path: run inline, exceptions propagate directly.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  Job job;
  job.body = &body;
  job.count = count;
  job.errors.resize(count);
  {
    const std::scoped_lock lock{mutex_};
    if (job_ != nullptr) {
      throw std::logic_error{"ThreadPool::for_indexed: reentrant submission"};
    }
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();
  run_slice(job);
  {
    std::unique_lock lock{mutex_};
    // All indices are claimed once run_slice returns; wait for workers still
    // executing theirs. active is mutex-guarded, so active == 0 implies every
    // body has finished and no worker will touch `job` again.
    done_cv_.wait(lock, [&] { return job.active == 0; });
    job_ = nullptr;
  }
  for (const std::exception_ptr& error : job.errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace vdx::core
