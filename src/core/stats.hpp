// Small statistics toolkit: order statistics, streaming moments, histograms
// and ordinary least squares — everything the evaluation pipeline needs to
// report the paper's metrics (medians per §5.1, best-fit lines per Fig. 5,
// score extrapolation per §5.1).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace vdx::core {

/// Median of a sample (average of middle two for even sizes).
/// Returns nullopt for an empty sample.
[[nodiscard]] std::optional<double> median(std::span<const double> values);

/// q-quantile (0 <= q <= 1) with linear interpolation between order stats.
[[nodiscard]] std::optional<double> quantile(std::span<const double> values, double q);

[[nodiscard]] double mean(std::span<const double> values);

/// Streaming mean/variance (Welford). Numerically stable; mergeable.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_weight(std::size_t bin) const;
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] double bin_upper(std::size_t bin) const;
  [[nodiscard]] double total_weight() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Ordinary least squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  [[nodiscard]] double at(double x) const noexcept { return slope * x + intercept; }
};

/// Fits a line through (x, y) pairs. Requires xs.size() == ys.size() >= 2
/// and non-degenerate x variance; returns nullopt otherwise.
[[nodiscard]] std::optional<LinearFit> fit_line(std::span<const double> xs,
                                                std::span<const double> ys);

}  // namespace vdx::core
