// Console table and CSV rendering for experiment output.
//
// Every bench prints the rows of the paper table/figure it regenerates; this
// keeps the formatting in one place so outputs are uniform and diffable.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace vdx::core {

/// Column-aligned text table with an optional title, plus CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  void set_title(std::string title) { title_ = std::move(title); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with box-drawing separators and right-padded cells.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming to a compact form.
[[nodiscard]] std::string format_double(double value, int precision = 2);
/// Formats a ratio as a percentage string, e.g. 0.314 -> "31.4%".
[[nodiscard]] std::string format_percent(double ratio, int precision = 1);

}  // namespace vdx::core
