#include "core/money.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace vdx::core {

Money Money::from_dollars(double dollars) {
  const double micros = std::round(dollars * 1e6);
  if (!std::isfinite(micros) ||
      micros > static_cast<double>(std::numeric_limits<std::int64_t>::max()) ||
      micros < static_cast<double>(std::numeric_limits<std::int64_t>::min())) {
    throw std::overflow_error{"Money::from_dollars: value out of range"};
  }
  return from_micros(static_cast<std::int64_t>(micros));
}

Money Money::scaled(double factor) const {
  return from_dollars(dollars() * factor);
}

std::string Money::to_string() const {
  const std::int64_t abs = micros_ < 0 ? -micros_ : micros_;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s$%lld.%06lld", micros_ < 0 ? "-" : "",
                static_cast<long long>(abs / 1'000'000),
                static_cast<long long>(abs % 1'000'000));
  return buf;
}

}  // namespace vdx::core
