// Validated `--flag value` / `--flag=value` command-line parsing, shared by
// the CLI tools.
//
// The parser is strict where silent misreads would corrupt a run: unknown
// flags, non-numeric values, out-of-range counts, and nonexistent paths all
// throw std::invalid_argument with a one-line message naming the flag and
// the offending value. Flags may appear in any order; a flag followed by
// another flag (or the end of the line) is a bare switch, read with
// boolean(). Accessors record which flags they consumed so check_all_used()
// can reject typos loudly instead of ignoring them.
//
// Accessors also record a help entry (flag name, value kind, default), so a
// tool can print a generated `--help` listing by running its accessor
// sequence over an empty Flags instance and calling write_help().
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace vdx::core {

class Flags {
 public:
  /// Parses argv[first..argc). Throws on anything that is not `--flag`,
  /// `--flag=value`, or a value following a `--flag`.
  Flags(int argc, const char* const* argv, int first);
  /// Test-friendly constructor over pre-split arguments.
  explicit Flags(const std::vector<std::string>& args);

  /// Finite number; `fallback` when the flag is absent.
  [[nodiscard]] double number(const std::string& key, double fallback);
  /// Finite number that must be strictly positive *when given explicitly*;
  /// `fallback` (which may be a 0 sentinel) when absent.
  [[nodiscard]] double positive(const std::string& key, double fallback);
  /// Non-negative integer; an explicit value below `minimum` is rejected.
  /// `fallback` is returned as-is when the flag is absent.
  [[nodiscard]] std::size_t count(const std::string& key, std::size_t fallback,
                                  std::size_t minimum = 0);
  /// Bare switch (`--stream`) or explicit true/1.
  [[nodiscard]] bool boolean(const std::string& key);
  [[nodiscard]] std::string text(const std::string& key, std::string fallback);
  /// Value restricted to an allow-list; `fallback` when absent (fallback is
  /// trusted, not re-validated). Rejects anything else with a one-line
  /// error listing the accepted values.
  [[nodiscard]] std::string one_of(const std::string& key, std::string fallback,
                                   const std::vector<std::string>& allowed);
  /// Filesystem path that must exist when the flag is given; "" when absent.
  [[nodiscard]] std::string existing_path(const std::string& key);

  /// Whether the flag was given at all (does not mark it used).
  [[nodiscard]] bool has(const std::string& key) const;
  /// Throws for any flag no accessor consumed (typo'd or misplaced flags
  /// must not be silently ignored).
  void check_all_used() const;

  /// One line per flag an accessor declared, in first-declaration order:
  /// `  --key <kind>   default: ...`. Run the tool's accessor sequence over
  /// an empty Flags first so every flag is declared.
  void write_help(std::ostream& out) const;

 private:
  [[nodiscard]] const std::string* raw(const std::string& key);
  void note(const std::string& key, std::string kind, std::string fallback);

  std::map<std::string, std::string> values_;
  std::set<std::string> used_;

  struct HelpEntry {
    std::string key;
    std::string kind;      // e.g. "<number>", "<a|b>", "" for a switch
    std::string fallback;  // printable default, "" when none
  };
  std::vector<HelpEntry> help_;
  std::set<std::string> help_keys_;
};

}  // namespace vdx::core
