#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace vdx::core {

std::optional<double> median(std::span<const double> values) {
  return quantile(values, 0.5);
}

std::optional<double> quantile(std::span<const double> values, double q) {
  if (values.empty()) return std::nullopt;
  if (!(q >= 0.0 && q <= 1.0)) throw std::invalid_argument{"quantile: q outside [0,1]"};
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (!(hi > lo)) throw std::invalid_argument{"Histogram: require hi > lo"};
  if (bins == 0) throw std::invalid_argument{"Histogram: require bins > 0"};
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) noexcept {
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::bin_weight(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::bin_weight"};
  return counts_[bin];
}

double Histogram::bin_lower(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::bin_lower"};
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const { return bin_lower(bin) + width_; }

std::optional<LinearFit> fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const auto n = static_cast<double>(xs.size());
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= n * std::numeric_limits<double>::epsilon()) return std::nullopt;
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace vdx::core
