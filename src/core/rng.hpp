// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component of the simulator draws from an explicitly seeded
// `Rng`. The generator is xoshiro256** seeded via SplitMix64, which gives
// high-quality 64-bit streams with a tiny state and lets us derive
// independent sub-streams per subsystem (`fork`) so that adding draws in one
// module never perturbs another module's sequence.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace vdx::core {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] constexpr std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = split_mix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's method.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (fresh pair each call; spare cached).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal with the given parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small, normal
  /// approximation for large means).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Derives an independent child generator. `label` decorrelates children
  /// forked from the same parent state for different purposes.
  [[nodiscard]] Rng fork(std::string_view label) noexcept;

  /// Complete generator state, for checkpoint/restore: the four xoshiro
  /// words plus the Box-Muller spare. save()/restore() round-trip exactly —
  /// a restored generator replays the identical stream.
  struct Snapshot {
    std::array<std::uint64_t, 4> state{};
    double spare_normal = 0.0;
    bool has_spare = false;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  [[nodiscard]] Snapshot save() const noexcept {
    return Snapshot{state_, spare_normal_, has_spare_};
  }
  void restore(const Snapshot& snapshot) noexcept {
    state_ = snapshot.state;
    spare_normal_ = snapshot.spare_normal;
    has_spare_ = snapshot.has_spare;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace vdx::core
