// CDN strategy lab: a CDN operator's view of the marketplace. Compares the
// static full-markup bidder against the risk-averse learner on win rate,
// revenue and traffic predictability — the knobs a real CDN would tune
// before joining a VDX-style exchange (§6.3).
//
//   $ ./cdn_strategy_lab
#include <cstdio>

#include "market/exchange.hpp"

namespace {

struct StrategyRun {
  std::vector<vdx::market::RoundReport> reports;
};

StrategyRun run_with(const vdx::sim::Scenario& scenario,
                     vdx::market::StrategyKind strategy, std::size_t rounds) {
  vdx::market::ExchangeConfig config;
  config.strategy = strategy;
  vdx::market::VdxExchange exchange{scenario, config};
  return StrategyRun{exchange.run(rounds)};
}

}  // namespace

int main() {
  using namespace vdx;

  sim::ScenarioConfig config;
  config.trace.session_count = 5'000;
  config.seed = 99;
  const sim::Scenario scenario = sim::Scenario::build(config);

  constexpr std::size_t kRounds = 8;
  const StrategyRun fixed = run_with(scenario, market::StrategyKind::kStatic, kRounds);
  const StrategyRun learner =
      run_with(scenario, market::StrategyKind::kRiskAverse, kRounds);

  std::printf("Traffic predictability (|expected - won| / bid traffic; lower "
              "is better):\n");
  std::printf("  %-6s %-10s %-12s\n", "round", "static", "risk-averse");
  for (std::size_t r = 0; r < kRounds; ++r) {
    std::printf("  %-6zu %-10.3f %-12.3f\n", r + 1,
                fixed.reports[r].mean_prediction_error,
                learner.reports[r].mean_prediction_error);
  }

  // From the broker/CP side: does the learning change market quality?
  const auto& fixed_last = fixed.reports.back();
  const auto& learner_last = learner.reports.back();
  std::printf("\nMarket quality at steady state:\n");
  std::printf("  %-14s mean score %.1f, mean delivery cost %.3f $/client\n",
              "static:", fixed_last.mean_score, fixed_last.mean_cost);
  std::printf("  %-14s mean score %.1f, mean delivery cost %.3f $/client\n",
              "risk-averse:", learner_last.mean_score, learner_last.mean_cost);

  // Per-CDN traffic concentration under learning.
  std::printf("\nSteady-state awarded traffic by deployment model "
              "(risk-averse):\n");
  double by_model[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < learner_last.awarded_mbps.size(); ++i) {
    by_model[static_cast<std::size_t>(scenario.catalog().cdns()[i].model)] +=
        learner_last.awarded_mbps[i];
  }
  const char* model_names[] = {"distributed", "regional", "central", "city-centric"};
  for (int m = 0; m < 4; ++m) {
    if (by_model[m] > 0.0) std::printf("  %-13s %8.0f Mbps\n", model_names[m], by_model[m]);
  }
  std::printf("\nTakeaway: risk-averse shading cuts the CDN's commitment error "
              "by orders of magnitude without hurting the market's score/cost "
              "point — the paper's \"weak traffic predictability\" argument.\n");
  return 0;
}
