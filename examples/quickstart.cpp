// Quickstart: build a simulated delivery world, run today's Brokered design
// and the VDX Marketplace over the same clients, and compare the metrics.
//
//   $ ./quickstart
//
// This is the five-minute tour of the public API:
//   sim::Scenario     — world + CDNs + mapping + traces, from one seed
//   sim::run_design   — one Decision-Protocol snapshot for a chosen design
//   sim::compute_metrics / per_cdn_accounts — the paper's metrics
#include <cstdio>

#include "sim/experiments.hpp"

int main() {
  using namespace vdx;

  // 1. Build a (reduced-size) scenario: 19 countries, 60 cities, 14 CDNs,
  //    10K broker-controlled client sessions plus 3x background traffic.
  sim::ScenarioConfig config;
  config.trace.session_count = 10'000;
  config.seed = 42;
  const sim::Scenario scenario = sim::Scenario::build(config);
  std::printf("world: %zu countries, %zu cities | %zu CDNs, %zu clusters | "
              "%zu broker sessions\n\n",
              scenario.world().countries().size(), scenario.world().cities().size(),
              scenario.catalog().cdns().size(), scenario.catalog().clusters().size(),
              scenario.broker_trace().size());

  // 2. Run two designs over the same snapshot of clients.
  const sim::DesignOutcome brokered =
      sim::run_design(scenario, sim::Design::kBrokered);
  const sim::DesignOutcome vdx = sim::run_design(scenario, sim::Design::kMarketplace);

  // 3. Compare the paper's metrics.
  const sim::DesignMetrics mb = sim::compute_metrics(scenario, brokered);
  const sim::DesignMetrics mv = sim::compute_metrics(scenario, vdx);
  std::printf("%-14s %12s %12s %14s %12s\n", "design", "cost/client", "score",
              "distance (mi)", "congested");
  std::printf("%-14s %12.3f %12.1f %14.0f %11.1f%%\n", "Brokered", mb.median_cost,
              mb.median_score, mb.median_distance_miles,
              100.0 * mb.congested_fraction);
  std::printf("%-14s %12.3f %12.1f %14.0f %11.1f%%\n", "VDX", mv.median_cost,
              mv.median_score, mv.median_distance_miles,
              100.0 * mv.congested_fraction);

  // 4. Who profits? Flat-rate contracts vs per-cluster marketplace pricing.
  std::size_t brokered_losers = 0;
  for (const sim::CdnAccount& account : sim::per_cdn_accounts(scenario, brokered)) {
    if (account.traffic_mbps > 0.0 && account.profit.micros() < 0) ++brokered_losers;
  }
  std::size_t vdx_losers = 0;
  for (const sim::CdnAccount& account : sim::per_cdn_accounts(scenario, vdx)) {
    if (account.traffic_mbps > 0.0 && account.profit.micros() < 0) ++vdx_losers;
  }
  std::printf("\nCDNs delivering at a loss: Brokered %zu, VDX %zu\n", brokered_losers,
              vdx_losers);
  return 0;
}
