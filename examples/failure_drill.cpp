// Failure & fraud drill (§6.3): what happens to the marketplace when a CDN
// goes dark mid-operation, when one starts submitting fraudulent bids, and
// when the transport itself drops and corrupts protocol messages.
//
//   $ ./failure_drill
#include <algorithm>
#include <cstdio>

#include "market/exchange.hpp"

int main() {
  using namespace vdx;

  sim::ScenarioConfig config;
  config.trace.session_count = 5'000;
  config.seed = 1234;
  const sim::Scenario scenario = sim::Scenario::build(config);

  // ---------------- Failure: a CDN disappears. ----------------
  {
    market::VdxExchange exchange{scenario};

    // Typed errors instead of exceptions: delivering before any decision
    // round has run is an ordinary, reportable failure.
    const auto premature = exchange.deliver(1, geo::CityId{0}, 2.0);
    std::printf("Typed-error drill\n");
    std::printf("  deliver() before any round: %s (%s)\n\n",
                core::errc_name(premature.error().code),
                premature.error().message.c_str());

    const market::RoundReport healthy = exchange.run_round();
    std::size_t top = 0;
    for (std::size_t i = 1; i < healthy.awarded_mbps.size(); ++i) {
      if (healthy.awarded_mbps[i] > healthy.awarded_mbps[top]) top = i;
    }
    std::printf("Failure drill\n");
    std::printf("  healthy round: %s carries %.0f Mbps, market mean score %.1f\n",
                scenario.catalog().cdns()[top].name.c_str(), healthy.awarded_mbps[top],
                healthy.mean_score);

    // Mid-stream failover: probe one session to learn which CDN serves it,
    // take that CDN dark, and replay the traffic — the previous round still
    // routes these sessions to the dark clusters, and the Delivery Protocol
    // re-homes them on the fly.
    const auto& groups = scenario.broker_groups();
    const auto probe =
        exchange.deliver(0, groups[0].city, groups[0].bitrate_mbps).value();
    const cdn::CdnId serving{probe.result.cdn_id};
    exchange.set_failed(serving, true);

    std::size_t rehomed = 0;
    const std::size_t sample_cities = std::min<std::size_t>(groups.size(), 60);
    constexpr std::uint32_t kSamples = 600;
    for (std::uint32_t session = 0; session < kSamples; ++session) {
      const auto& group = groups[session % sample_cities];
      const auto outcome = exchange.deliver(session, group.city, group.bitrate_mbps);
      if (outcome.ok() && outcome.value().rehomed) ++rehomed;
    }
    std::printf("  %s dark mid-stream: %zu of %u sample sessions re-homed to "
                "surviving clusters by the Delivery-Protocol failover\n",
                scenario.catalog().cdns()[serving.value()].name.c_str(), rehomed,
                kSamples);
    exchange.set_failed(serving, false);

    exchange.set_failed(cdn::CdnId{static_cast<std::uint32_t>(top)}, true);
    const market::RoundReport degraded = exchange.run_round();
    std::printf("  CDN dark:      its traffic -> %.0f Mbps, mean score %.1f, "
                "congestion %.1f%% (clients re-homed, no outage)\n",
                degraded.awarded_mbps[top], degraded.mean_score,
                100.0 * degraded.congested_fraction);

    exchange.set_failed(cdn::CdnId{static_cast<std::uint32_t>(top)}, false);
    const market::RoundReport recovered = exchange.run_round();
    std::printf("  CDN back:      traffic recovers to %.0f Mbps\n\n",
                recovered.awarded_mbps[top]);
  }

  // ---------------- Fraud: a CDN lies in its bids. ----------------
  {
    market::ExchangeConfig fraud_config;
    fraud_config.strategy = market::StrategyKind::kStatic;
    market::VdxExchange exchange{scenario, fraud_config};
    const market::RoundReport baseline = exchange.run_round();
    std::size_t culprit = 0;
    for (std::size_t i = 1; i < baseline.awarded_mbps.size(); ++i) {
      if (baseline.awarded_mbps[i] > baseline.awarded_mbps[culprit]) culprit = i;
    }
    const cdn::CdnId culprit_id{static_cast<std::uint32_t>(culprit)};
    std::printf("Fraud drill: %s starts announcing 4x-better scores at half "
                "price\n",
                scenario.catalog().cdns()[culprit].name.c_str());
    exchange.set_fraudulent(culprit_id, true);
    for (int round = 1; round <= 4; ++round) {
      const market::RoundReport report = exchange.run_round();
      std::printf("  round %d: fraudulent traffic %.0f Mbps | broker's "
                  "reputation error %.2f -> bid penalty x%.2f | market mean "
                  "score %.1f\n",
                  round, report.awarded_mbps[culprit],
                  exchange.reputation().error_estimate(culprit_id),
                  exchange.reputation().penalty_multiplier(culprit_id),
                  report.mean_score);
    }
    std::printf("  (the reputation system de-prioritizes the liar after one "
                "round of measured-vs-announced mismatches)\n");
  }

  // ---------------- Chaos: the transport itself misbehaves. ----------------
  {
    market::ExchangeConfig chaos_config;
    chaos_config.chaos.faults.drop_rate = 0.10;
    chaos_config.chaos.faults.corrupt_rate = 0.02;
    chaos_config.chaos.faults.seed = 99;
    market::VdxExchange exchange{scenario, chaos_config};

    std::printf("\nChaos drill: 10%% frame drops + 2%% bit corruption on every "
                "link\n");
    for (int round = 1; round <= 4; ++round) {
      const market::RoundReport report = exchange.run_round();
      std::printf("  round %d: %zu retries, %zu timeouts, %zu corrupt frames "
                  "rejected | degraded=%s stale bids=%zu (%.1f%% of traffic) | "
                  "mean score %.1f\n",
                  round, report.wire.chaos.retries, report.wire.chaos.timeouts,
                  report.wire.chaos.decode_rejects, report.degraded ? "yes" : "no",
                  report.stale_bids_used, 100.0 * report.stale_bid_share,
                  report.mean_score);
    }
    const proto::FaultCounters& faults = exchange.fault_counters();
    std::printf("  injector totals: %zu frames, %zu dropped, %zu corrupted, "
                "%zu truncated, %zu duplicated\n",
                faults.frames, faults.dropped, faults.corrupted, faults.truncated,
                faults.duplicated);
    std::printf("  (every round still completes: retries + stale-bid fallback "
                "keep the market deciding)\n");
  }
  return 0;
}
