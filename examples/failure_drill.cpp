// Failure & fraud drill (§6.3): what happens to the marketplace when a CDN
// goes dark mid-operation, and when one starts submitting fraudulent bids.
//
//   $ ./failure_drill
#include <cstdio>

#include "market/exchange.hpp"

int main() {
  using namespace vdx;

  sim::ScenarioConfig config;
  config.trace.session_count = 5'000;
  config.seed = 1234;
  const sim::Scenario scenario = sim::Scenario::build(config);

  // ---------------- Failure: a CDN disappears. ----------------
  {
    market::VdxExchange exchange{scenario};
    const market::RoundReport healthy = exchange.run_round();
    std::size_t top = 0;
    for (std::size_t i = 1; i < healthy.awarded_mbps.size(); ++i) {
      if (healthy.awarded_mbps[i] > healthy.awarded_mbps[top]) top = i;
    }
    std::printf("Failure drill\n");
    std::printf("  healthy round: %s carries %.0f Mbps, market mean score %.1f\n",
                scenario.catalog().cdns()[top].name.c_str(), healthy.awarded_mbps[top],
                healthy.mean_score);

    exchange.set_failed(cdn::CdnId{static_cast<std::uint32_t>(top)}, true);
    const market::RoundReport degraded = exchange.run_round();
    std::printf("  CDN dark:      its traffic -> %.0f Mbps, mean score %.1f, "
                "congestion %.1f%% (clients re-homed, no outage)\n",
                degraded.awarded_mbps[top], degraded.mean_score,
                100.0 * degraded.congested_fraction);

    exchange.set_failed(cdn::CdnId{static_cast<std::uint32_t>(top)}, false);
    const market::RoundReport recovered = exchange.run_round();
    std::printf("  CDN back:      traffic recovers to %.0f Mbps\n\n",
                recovered.awarded_mbps[top]);
  }

  // ---------------- Fraud: a CDN lies in its bids. ----------------
  {
    market::ExchangeConfig fraud_config;
    fraud_config.strategy = market::StrategyKind::kStatic;
    market::VdxExchange exchange{scenario, fraud_config};
    const market::RoundReport baseline = exchange.run_round();
    std::size_t culprit = 0;
    for (std::size_t i = 1; i < baseline.awarded_mbps.size(); ++i) {
      if (baseline.awarded_mbps[i] > baseline.awarded_mbps[culprit]) culprit = i;
    }
    const cdn::CdnId culprit_id{static_cast<std::uint32_t>(culprit)};
    std::printf("Fraud drill: %s starts announcing 4x-better scores at half "
                "price\n",
                scenario.catalog().cdns()[culprit].name.c_str());
    exchange.set_fraudulent(culprit_id, true);
    for (int round = 1; round <= 4; ++round) {
      const market::RoundReport report = exchange.run_round();
      std::printf("  round %d: fraudulent traffic %.0f Mbps | broker's "
                  "reputation error %.2f -> bid penalty x%.2f | market mean "
                  "score %.1f\n",
                  round, report.awarded_mbps[culprit],
                  exchange.reputation().error_estimate(culprit_id),
                  exchange.reputation().penalty_multiplier(culprit_id),
                  report.mean_score);
    }
    std::printf("  (the reputation system de-prioritizes the liar after one "
                "round of measured-vs-announced mismatches)\n");
  }
  return 0;
}
