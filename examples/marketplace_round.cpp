// Marketplace round walkthrough: drives the VDX exchange through Decision-
// Protocol rounds over the real wire codec, then serves individual clients
// via the Delivery Protocol — the full §4.1/§6.1 message flow end to end.
//
//   $ ./marketplace_round
#include <cstdio>

#include "market/exchange.hpp"

int main() {
  using namespace vdx;

  sim::ScenarioConfig config;
  config.trace.session_count = 5'000;
  config.seed = 7;
  const sim::Scenario scenario = sim::Scenario::build(config);

  market::VdxExchange exchange{scenario};

  // --- Decision Protocol: three rounds of Share -> Announce -> Optimize ->
  //     Accept, every message encoded/decoded through the wire format. ---
  std::printf("Decision Protocol rounds:\n");
  for (int round = 0; round < 3; ++round) {
    const market::RoundReport report = exchange.run_round();
    std::printf("  round %d: %zu shares -> %zu bids -> %zu accepts  (%.2f MB on "
                "the wire)  mean score %.1f, mean cost %.3f, prediction error "
                "%.3f\n",
                round + 1, report.wire.shares_sent, report.wire.bids_received,
                report.wire.accepts_sent,
                static_cast<double>(report.wire.bytes_on_wire) / 1e6,
                report.mean_score, report.mean_cost, report.mean_prediction_error);
  }

  // --- Delivery Protocol: Query -> Result -> Request -> Delivery for a few
  //     clients drawn from the trace. ---
  std::printf("\nDelivery Protocol (sample clients):\n");
  std::uint32_t session_id = 1;
  for (std::size_t i = 0; i < scenario.broker_groups().size() && session_id <= 5; i += 37) {
    const broker::ClientGroup& group = scenario.broker_groups()[i];
    const proto::DeliveryOutcome outcome =
        exchange.deliver(session_id, group.city, group.bitrate_mbps).value();
    const auto& city = scenario.world().city(group.city);
    std::printf("  session %u in %-4s wants %.2f Mbps -> cluster %u (CDN %u) "
                "delivers %.2f Mbps  [%zu bytes of protocol]\n",
                session_id, city.name.c_str(), group.bitrate_mbps,
                outcome.result.cluster_id, outcome.result.cdn_id + 1,
                outcome.delivery.delivered_mbps, outcome.bytes_on_wire);
    ++session_id;
  }

  // --- Who won what: per-CDN awarded traffic after learning. ---
  const market::RoundReport final_round = exchange.run_round();
  std::printf("\nAwarded traffic after %d rounds:\n", 4);
  for (std::size_t i = 0; i < final_round.awarded_mbps.size(); ++i) {
    if (final_round.awarded_mbps[i] <= 0.0) continue;
    std::printf("  %-8s %-12s %8.0f Mbps\n",
                scenario.catalog().cdns()[i].name.c_str(),
                to_string(scenario.catalog().cdns()[i].model),
                final_round.awarded_mbps[i]);
  }
  return 0;
}
