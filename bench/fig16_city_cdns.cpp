// Figure 16 — the CDN proliferation scenario: 200 single-cluster
// "city-centric" CDNs join the 14 traditional CDNs.
//
// Paper shapes: under Brokered the city CDNs always profit (their single
// cluster's cost equals their contract price) while many traditional CDNs
// keep losing money or get no traffic; VDX levels the playing field so both
// kinds of CDN profit.
#include "bench_common.hpp"

#include "core/table.hpp"

int main(int argc, char** argv) {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario(/*city_cdns=*/200);
  // The 214-CDN menu cache is built once and shared by both runs; the two
  // design runs themselves execute concurrently (--threads, default all
  // cores). Output is byte-identical at any thread count.
  sim::RunConfig run;
  run.threads = bench::threads_flag(argc, argv);
  const sim::SettlementComparison cmp = sim::settlement_comparison(scenario, run);

  const auto summarize = [&](std::size_t begin, std::size_t end, const char* label) {
    std::size_t losing_brokered = 0;
    std::size_t losing_vdx = 0;
    std::size_t no_traffic_brokered = 0;
    core::Money profit_brokered;
    core::Money profit_vdx;
    for (std::size_t i = begin; i < end; ++i) {
      const sim::CdnAccount& b = cmp.brokered_cdn[i];
      const sim::CdnAccount& v = cmp.vdx_cdn[i];
      if (b.traffic_mbps <= 0.0) ++no_traffic_brokered;
      if (b.profit.micros() < 0) ++losing_brokered;
      if (v.profit.micros() < 0) ++losing_vdx;
      profit_brokered += b.profit;
      profit_vdx += v.profit;
    }
    std::printf("%-16s  losing(Brokered)=%zu/%zu  no-traffic(Brokered)=%zu  "
                "losing(VDX)=%zu  total profit: Brokered %s, VDX %s\n",
                label, losing_brokered, end - begin, no_traffic_brokered, losing_vdx,
                profit_brokered.to_string().c_str(), profit_vdx.to_string().c_str());
  };

  std::printf("Figure 16: profits with 200 city-centric CDNs added\n\n");

  core::Table table{{"CDN", "Kind", "Profit Brokered", "Profit VDX",
                     "Traffic Bro", "Traffic VDX"}};
  table.set_title("Traditional CDNs (1-14) and a sample of city CDNs");
  for (std::size_t i = 0; i < cmp.brokered_cdn.size(); ++i) {
    if (i >= 14 && (i - 14) % 40 != 0) continue;  // sample the 200 city CDNs
    const sim::CdnAccount& b = cmp.brokered_cdn[i];
    const sim::CdnAccount& v = cmp.vdx_cdn[i];
    table.add_row({std::to_string(i + 1),
                   to_string(scenario.catalog().cdns()[i].model),
                   b.profit.to_string(), v.profit.to_string(),
                   core::format_double(b.traffic_mbps, 0),
                   core::format_double(v.traffic_mbps, 0)});
  }
  table.print(std::cout);
  std::printf("\n");

  summarize(0, 14, "traditional");
  summarize(14, cmp.brokered_cdn.size(), "city-centric");
  std::printf("\nExpected shape (paper): city CDNs never lose under Brokered; "
              "traditional CDNs keep struggling; VDX makes everyone "
              "profitable.\n");
  return 0;
}
