// Timeline stability (extension; connects Figure 4 to §6.2's fix):
// re-running the Decision Protocol every 5 minutes over the trace hour,
// what fraction of surviving sessions change serving CDN each round?
//
// Expected: today's Brokered interface churns at roughly the Figure-4 level
// (~40%) because the broker's QoE estimates fluctuate between rounds, while
// the Marketplace's announced cluster data keeps assignments stable —
// "traffic unpredictability is greatly reduced in VDX" (§6.2).
#include "bench_common.hpp"

#include "core/table.hpp"
#include "sim/timeline.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();

  const sim::Design designs[] = {sim::Design::kBrokered, sim::Design::kDynamicPricing,
                                 sim::Design::kBestLookup, sim::Design::kMarketplace};

  core::Table table{{"Design", "Mean CDN switch/epoch", "Max epoch", "Mean score",
                     "Mean cost"}};
  table.set_title("Per-epoch assignment churn over the trace hour (5-min rounds)");
  for (const sim::Design design : designs) {
    sim::TimelineConfig config;
    config.design = design;
    const sim::TimelineResult result = sim::run_timeline(scenario, config);
    double max_switch = 0.0;
    double score_sum = 0.0;
    double cost_sum = 0.0;
    for (const sim::EpochReport& epoch : result.epochs) {
      max_switch = std::max(max_switch, epoch.cdn_switch_fraction);
      score_sum += epoch.metrics.mean_score;
      cost_sum += epoch.metrics.mean_cost;
    }
    const double n = static_cast<double>(result.epochs.size());
    table.add_row({std::string{sim::to_string(design)},
                   core::format_percent(result.mean_cdn_switch_fraction, 1),
                   core::format_percent(max_switch, 1),
                   core::format_double(score_sum / n, 1),
                   core::format_double(cost_sum / n, 3)});
  }
  table.print(std::cout);
  std::printf("\nPaper context: the broker trace shows ~40%% of sessions moved "
              "mid-stream (Fig. 4); VDX involves CDNs before traffic moves, "
              "so re-decisions stop flapping (§6.2).\n");
  return 0;
}
