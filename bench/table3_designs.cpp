// Table 3 — comparing the CDN-broker decision-interface designs on Cost,
// Score, Distance, Load and Congested (medians over all clients; lower is
// better), plus the Table 2 requirement matrix.
//
// Paper rows (their units):
//   Brokered        136 132 297  9%  0%
//   Multicluster(2) 155  87 194 14% 27%
//   Multicluster(100)171 85 141 20% 39%
//   DynamicPricing  126 148 318 11%  0%
//   DynamicMulti    115 122 219 40% 14%
//   BestLookup       94 108 166 14% 14%
//   Marketplace      93 112 178 23%  0%
//   Omniscient       86 111 172 48%  0%
// Absolute values differ (synthetic substrate); the reproduction target is
// the SHAPE: who wins, who congests, where the trade-offs sit.
#include "bench_common.hpp"

#include "core/table.hpp"

int main(int argc, char** argv) {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();
  sim::RunConfig run;
  run.threads = bench::threads_flag(argc, argv);  // 0 = all cores

  // ---- Table 2: requirement matrix. ----
  core::Table matrix{{"Design", "Share", "Matching", "CO", "DCP", "TP"}};
  matrix.set_title("Table 2: designs vs requirements (CO = cluster-level "
                   "optimization, DCP = dynamic cluster pricing, TP = traffic "
                   "predictability)");
  for (const sim::Design design : sim::kAllDesigns) {
    const sim::DesignTraits traits = sim::traits_of(design);
    matrix.add_row({std::string{sim::to_string(design)},
                    traits.shares_clients ? "clients" : "-",
                    traits.multi_cluster ? "multi-cluster" : "single-cluster",
                    traits.cluster_level_optimization ? "yes" : "no",
                    traits.dynamic_cluster_pricing ? "yes" : "no",
                    traits.traffic_predictability == 0   ? "no"
                    : traits.traffic_predictability == 1 ? "weak"
                                                         : "strong"});
  }
  matrix.print(std::cout);
  std::printf("\n");

  // ---- Table 3: the design comparison. ----
  const auto rows = sim::table3_design_comparison(scenario, run);
  core::Table table{{"Design", "Cost ($/client)", "Score", "Distance (mi)",
                     "Load", "Congested"}};
  table.set_title("Table 3: design comparison (medians; lower is better)");
  for (const sim::Table3Row& row : rows) {
    table.add_row({std::string{sim::to_string(row.design)},
                   core::format_double(row.metrics.median_cost, 3),
                   core::format_double(row.metrics.median_score, 1),
                   core::format_double(row.metrics.median_distance_miles, 0),
                   core::format_percent(row.metrics.median_load, 0),
                   core::format_percent(row.metrics.congested_fraction, 0)});
  }
  table.print(std::cout);

  // CDFs (paper: "We see the same trends in the CDFs of cost, score, and
  // distance (not presented)") — present Brokered vs Marketplace deciles.
  const sim::DesignOutcome brokered_outcome =
      sim::run_design(scenario, sim::Design::kBrokered);
  const sim::DesignOutcome vdx_outcome =
      sim::run_design(scenario, sim::Design::kMarketplace);
  const sim::DistributionSummary b_cdf =
      sim::design_distributions(scenario, brokered_outcome);
  const sim::DistributionSummary v_cdf = sim::design_distributions(scenario, vdx_outcome);
  std::printf("\n");
  core::Table cdf{{"Percentile", "Cost Bro", "Cost VDX", "Score Bro", "Score VDX",
                   "Dist Bro", "Dist VDX"}};
  cdf.set_title("CDF deciles, Brokered vs Marketplace");
  for (int d = 0; d < 9; ++d) {
    cdf.add_row({std::to_string((d + 1) * 10) + "%",
                 core::format_double(b_cdf.cost_deciles[d], 2),
                 core::format_double(v_cdf.cost_deciles[d], 2),
                 core::format_double(b_cdf.score_deciles[d], 1),
                 core::format_double(v_cdf.score_deciles[d], 1),
                 core::format_double(b_cdf.distance_deciles[d], 0),
                 core::format_double(v_cdf.distance_deciles[d], 0)});
  }
  cdf.print(std::cout);

  // Headline deltas.
  const auto& brokered = rows.front().metrics;
  for (const sim::Table3Row& row : rows) {
    if (row.design == sim::Design::kMarketplace) {
      std::printf("\nMarketplace vs Brokered: cost %+.0f%%, score %+.0f%%, "
                  "distance %+.0f%% (paper: cost -32%%, score -15%%, "
                  "distance -40%%)\n",
                  100.0 * (row.metrics.median_cost / brokered.median_cost - 1.0),
                  100.0 * (row.metrics.median_score / brokered.median_score - 1.0),
                  100.0 * (row.metrics.median_distance_miles /
                               brokered.median_distance_miles -
                           1.0));
    }
  }
  return 0;
}
