// Federation ablation (paper §6.3, scalability): regional marketplaces vs
// one global exchange.
//
// Expected: more regions shrink the largest optimization instance (the
// scalability win) while the broker's achievable quality degrades —
// "limiting the broker's view limits the quality of the optimization".
//
// Region solves run on `--threads N` threads (0/default = all cores,
// 1 = serial); results are byte-identical at any value (DESIGN.md §8).
#include "bench_common.hpp"

#include "core/parallel.hpp"
#include "core/table.hpp"
#include "market/federation.hpp"

int main(int argc, char** argv) {
  using namespace vdx;
  const std::size_t threads = bench::threads_flag(argc, argv);
  const sim::Scenario scenario = bench::paper_scenario();
  bench::BenchReporter reporter{"federation"};

  core::Table table{{"Regions", "Largest instance (bids)", "Optimize wall (s)",
                     "Wall (s)", "Mean cost", "Mean score",
                     "Median distance (mi)", "Fallback clients"}};
  table.set_title("Federated marketplaces: scalability vs optimization quality");
  for (const std::size_t regions : {1u, 2u, 4u, 8u, 16u}) {
    market::FederationConfig config;
    config.region_count = regions;
    config.threads = threads;
    double wall_seconds = 0.0;
    const market::FederationResult result = [&] {
      const obs::ScopedTimer timer{&wall_seconds};
      return market::run_federated_marketplace(scenario, config);
    }();
    table.add_row({std::to_string(regions),
                   std::to_string(result.largest_instance_options),
                   core::format_double(result.optimize_seconds, 2),
                   core::format_double(wall_seconds, 2),
                   core::format_double(result.metrics.mean_cost, 3),
                   core::format_double(result.metrics.mean_score, 1),
                   core::format_double(result.metrics.median_distance_miles, 0),
                   core::format_double(result.fallback_clients, 0)});
    const obs::Labels at{{"regions", std::to_string(regions)}};
    reporter.gauge("federation.largest_instance", at)
        .set(static_cast<double>(result.largest_instance_options));
    reporter.gauge("federation.optimize_seconds", at).set(result.optimize_seconds);
    reporter.gauge("federation.wall_seconds", at).set(wall_seconds);
    reporter.gauge("federation.mean_cost", at).set(result.metrics.mean_cost);
    reporter.gauge("federation.fallback_bids", at)
        .set(static_cast<double>(result.fallback_bids));
  }
  reporter.gauge("federation.threads")
      .set(static_cast<double>(core::ThreadPool::resolve(threads)));
  table.print(std::cout);
  reporter.emit();
  std::printf("\nReading: each regional exchange solves a much smaller auction "
              "(scalability), but clients lose access to out-of-region "
              "clusters, so cost/score drift up — the §6.3 trade-off, and why "
              "federating exchanges is the paper's open question.\n");
  return 0;
}
