// Federation ablation (paper §6.3, scalability): regional marketplaces vs
// one global exchange.
//
// Expected: more regions shrink the largest optimization instance (the
// scalability win) while the broker's achievable quality degrades —
// "limiting the broker's view limits the quality of the optimization".
#include "bench_common.hpp"

#include "core/table.hpp"
#include "market/federation.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();

  core::Table table{{"Regions", "Largest instance (bids)", "Optimize wall (s)",
                     "Mean cost", "Mean score", "Median distance (mi)",
                     "Fallback clients"}};
  table.set_title("Federated marketplaces: scalability vs optimization quality");
  for (const std::size_t regions : {1u, 2u, 4u, 8u, 16u}) {
    market::FederationConfig config;
    config.region_count = regions;
    const market::FederationResult result =
        market::run_federated_marketplace(scenario, config);
    table.add_row({std::to_string(regions),
                   std::to_string(result.largest_instance_options),
                   core::format_double(result.optimize_seconds, 2),
                   core::format_double(result.metrics.mean_cost, 3),
                   core::format_double(result.metrics.mean_score, 1),
                   core::format_double(result.metrics.median_distance_miles, 0),
                   core::format_double(result.fallback_clients, 0)});
  }
  table.print(std::cout);
  std::printf("\nReading: each regional exchange solves a much smaller auction "
              "(scalability), but clients lose access to out-of-region "
              "clusters, so cost/score drift up — the §6.3 trade-off, and why "
              "federating exchanges is the paper's open question.\n");
  return 0;
}
