// Solver-backend ablation (DESIGN.md §5): does the broker's answer depend on
// which optimization backend solves the Fig.-9 problem?
//
// Expected: the exact backends (min-cost flow; simplex would match but is
// too slow at trace scale) and the heuristics (greedy, Lagrangian) land on
// very similar Table-3 metrics — the marketplace's benefit comes from the
// *interface*, not from squeezing the last percent out of the optimizer.
#include <chrono>

#include "bench_common.hpp"

#include "core/table.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();

  core::Table table{{"Backend", "Mean cost", "Mean score", "Congested",
                     "Optimize wall (s)"}};
  table.set_title("Marketplace metrics by solver backend");
  for (const solver::Backend backend :
       {solver::Backend::kMinCostFlow, solver::Backend::kGreedy,
        solver::Backend::kLagrangian}) {
    sim::RunConfig config;
    config.solve.backend = backend;
    const auto t0 = std::chrono::steady_clock::now();
    const sim::DesignOutcome outcome =
        sim::run_design(scenario, sim::Design::kMarketplace, config);
    const auto t1 = std::chrono::steady_clock::now();
    const sim::DesignMetrics metrics = sim::compute_metrics(scenario, outcome);
    table.add_row({std::string{solver::to_string(backend)},
                   core::format_double(metrics.mean_cost, 3),
                   core::format_double(metrics.mean_score, 1),
                   core::format_percent(metrics.congested_fraction, 1),
                   core::format_double(std::chrono::duration<double>(t1 - t0).count(),
                                       2)});
  }
  table.print(std::cout);
  std::printf("\nReading: heuristics trade a few percent of objective for "
              "speed; the interface-level conclusions (cheap + fast + no "
              "congestion) do not depend on solver exactness.\n");
  return 0;
}
