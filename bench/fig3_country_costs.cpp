// Figure 3 — average cost per byte for clients in various countries,
// relative to the global (demand-weighted) average.
//
// Paper: bars from near 0% up to ~400% of average; ~30x spread between the
// cheapest and most expensive country.
#include "bench_common.hpp"

#include <algorithm>

#include "core/table.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();
  auto rows = sim::fig3_country_costs(scenario);

  core::Table table{{"Country (Anonymized)", "Cost vs. Avg.", "Bar"}};
  table.set_title("Figure 3: per-country delivery cost relative to average");
  double lo = 1e18;
  double hi = 0.0;
  for (const sim::Fig3Row& row : rows) {
    lo = std::min(lo, row.cost_vs_average);
    hi = std::max(hi, row.cost_vs_average);
    const int bar = static_cast<int>(row.cost_vs_average * 12.0);
    table.add_row({row.country, core::format_percent(row.cost_vs_average, 0),
                   std::string(static_cast<std::size_t>(std::min(bar, 60)), '#')});
  }
  table.print(std::cout);
  std::printf("\nmax/avg = %.1fx (paper: ~4x)   max/min = %.1fx (paper: ~30x)\n",
              hi, hi / lo);
  return 0;
}
