// Figure 17 — the cost vs distance trade-off as the broker's cost weight wc
// sweeps, per design.
//
// Paper shapes: VDX's curve dominates — it can cut cost ~44% at Brokered's
// distance, cut distance ~74% at Brokered's cost, or take ~31%/~40% of both
// at the knee.
#include "bench_common.hpp"

#include <algorithm>

#include "core/table.hpp"

int main(int argc, char** argv) {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();

  const double weights[] = {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
  const sim::Design designs[] = {
      sim::Design::kBrokered,        sim::Design::kMulticluster2,
      sim::Design::kMulticluster100, sim::Design::kDynamicPricing,
      sim::Design::kDynamicMulticluster, sim::Design::kBestLookup,
      sim::Design::kMarketplace,
  };
  // 56 independent (design, weight) runs over a shared menu cache
  // (--threads, default all cores; points come back in sweep order).
  const auto points = sim::fig17_tradeoff(scenario, weights, designs,
                                          bench::threads_flag(argc, argv));

  core::Table table{{"Design", "wc", "Cost ($/client)", "Distance (mi)"}};
  table.set_title("Figure 17: cost vs distance while sweeping the cost weight");
  for (const sim::Fig17Point& p : points) {
    table.add_row({std::string{sim::to_string(p.design)},
                   core::format_double(p.cost_weight, 3),
                   core::format_double(p.median_cost, 3),
                   core::format_double(p.median_distance_miles, 0)});
  }
  table.print(std::cout);

  // Headline claims: compare VDX's frontier to Brokered's best points.
  double brokered_cost = 1e18;
  double brokered_distance = 1e18;
  for (const sim::Fig17Point& p : points) {
    if (p.design == sim::Design::kBrokered) {
      brokered_cost = std::min(brokered_cost, p.median_cost);
      brokered_distance = std::min(brokered_distance, p.median_distance_miles);
    }
  }
  double best_cost_at_distance = 1e18;     // VDX cost with distance <= Brokered's
  double best_distance_at_cost = 1e18;     // VDX distance with cost <= Brokered's
  for (const sim::Fig17Point& p : points) {
    if (p.design != sim::Design::kMarketplace) continue;
    if (p.median_distance_miles <= brokered_distance) {
      best_cost_at_distance = std::min(best_cost_at_distance, p.median_cost);
    }
    if (p.median_cost <= brokered_cost) {
      best_distance_at_cost = std::min(best_distance_at_cost, p.median_distance_miles);
    }
  }
  if (best_cost_at_distance < 1e18) {
    std::printf("\nVDX at Brokered's distance: cost %+.0f%% (paper: -44%%)\n",
                100.0 * (best_cost_at_distance / brokered_cost - 1.0));
  }
  if (best_distance_at_cost < 1e18) {
    std::printf("VDX at Brokered's cost: distance %+.0f%% (paper: -74%%)\n",
                100.0 * (best_distance_at_cost / brokered_distance - 1.0));
  }
  return 0;
}
