// Wire-codec microbenchmarks: encode/decode throughput for the marketplace
// message types (the exchange transmits thousands of bids per round).
#include <benchmark/benchmark.h>

#include "proto/messages.hpp"

namespace {

using namespace vdx::proto;

void BM_EncodeBid(benchmark::State& state) {
  const Message bid = BidMessage{17, 42, 23.5, 1500.0, 1.75, 3};
  for (auto _ : state) {
    const auto frame = encode(bid);
    benchmark::DoNotOptimize(frame.data());
  }
}

void BM_DecodeBid(benchmark::State& state) {
  const auto frame = encode(Message{BidMessage{17, 42, 23.5, 1500.0, 1.75, 3}});
  for (auto _ : state) {
    const Message decoded = decode(frame);
    benchmark::DoNotOptimize(&decoded);
  }
}

void BM_RoundTripShare(benchmark::State& state) {
  const Message share = ShareMessage{42, 7, 12345, 99, 2.5, 120};
  for (auto _ : state) {
    const Message decoded = decode(encode(share));
    benchmark::DoNotOptimize(&decoded);
  }
}

void BM_DecodeStream(benchmark::State& state) {
  // A realistic Announce burst: N bids back to back.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> stream;
  for (std::size_t i = 0; i < n; ++i) {
    const auto frame = encode(Message{
        BidMessage{static_cast<std::uint32_t>(i), 42, 23.5, 1500.0, 1.75, 3}});
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  for (auto _ : state) {
    const auto messages = decode_stream(stream);
    benchmark::DoNotOptimize(messages.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

}  // namespace

BENCHMARK(BM_EncodeBid);
BENCHMARK(BM_DecodeBid);
BENCHMARK(BM_RoundTripShare);
BENCHMARK(BM_DecodeStream)->Arg(100)->Arg(10000);
