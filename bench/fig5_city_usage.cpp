// Figure 5 — broker's usage of CDNs as a function of requests per city,
// with best-fit lines.
//
// Paper: "regardless of city size, CDN B and CDN C's usage does not change,
// whereas CDN A is strongly favored in smaller cities".
#include "bench_common.hpp"

#include "core/table.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();
  const sim::Fig5Result result = sim::fig5_city_usage(scenario);

  core::Table table{{"Requests/city", "CDN A", "CDN B", "CDN C", "other"}};
  table.set_title("Figure 5: CDN usage by city size (sorted by requests)");
  // Print every 4th city to keep the table readable.
  for (std::size_t i = 0; i < result.usage.size(); i += 4) {
    const trace::CityUsage& u = result.usage[i];
    table.add_row({std::to_string(u.requests), core::format_percent(u.share[0], 0),
                   core::format_percent(u.share[1], 0),
                   core::format_percent(u.share[2], 0),
                   core::format_percent(u.share[3], 0)});
  }
  table.print(std::cout);

  std::printf("\nBest-fit slopes (usage %% per request/city):\n");
  const char* names[] = {"CDN A", "CDN B", "CDN C", "other"};
  for (std::size_t c = 0; c < trace::kTraceCdnCount; ++c) {
    if (result.fits[c]) {
      std::printf("  %-6s slope %+.4f  intercept %.1f%%\n", names[c],
                  result.fits[c]->slope, result.fits[c]->intercept);
    }
  }
  std::printf("Expected shape (paper): CDN A slope clearly negative; B and C "
              "roughly flat.\n");
  return 0;
}
