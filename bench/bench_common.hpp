// Shared helpers for the figure/table regeneration benches.
//
// BenchReporter routes bench output through the vdx::obs metrics registry
// and emits it as machine-readable `BENCH_JSON {...}` lines (one JSON object
// per metric) alongside the human tables, so CI and plotting scripts can
// scrape results without parsing prose.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>

#include "obs/observe.hpp"
#include "sim/experiments.hpp"

namespace vdx::bench {

/// Parses an optional `--threads N` from a bench's argv (0 = all cores, the
/// default; 1 = serial). Benches stay runnable with no arguments.
inline std::size_t threads_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == "--threads") {
      return static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return 0;
}

/// The paper-scale scenario: 33.4K broker sessions + 3x background over the
/// 14-CDN world (§5.1). One shared seed keeps all benches consistent.
inline sim::Scenario paper_scenario(std::size_t city_cdns = 0) {
  sim::ScenarioConfig config;
  config.city_cdn_count = city_cdns;
  double setup_seconds = 0.0;
  sim::Scenario scenario = [&] {
    const obs::ScopedTimer timer{&setup_seconds};
    return sim::Scenario::build(config);
  }();
  std::printf("[setup] scenario: %zu broker sessions, %zu background, %zu CDNs, "
              "%zu clusters (%.1fs)\n",
              scenario.broker_trace().size(), scenario.background_trace().size(),
              scenario.catalog().cdns().size(), scenario.catalog().clusters().size(),
              setup_seconds);
  return scenario;
}

/// Bench-result sink backed by a MetricsRegistry. Every metric carries a
/// {"bench": <name>} label; emit() (or destruction) writes one
/// `BENCH_JSON {...}` line per metric, sorted by (name, labels) so output
/// is deterministic.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {}
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;
  ~BenchReporter() {
    if (!emitted_) emit();
  }

  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return registry_; }

  [[nodiscard]] obs::Counter counter(std::string_view metric, obs::Labels labels = {}) {
    return registry_.counter(metric, tagged(std::move(labels)));
  }
  [[nodiscard]] obs::Gauge gauge(std::string_view metric, obs::Labels labels = {}) {
    return registry_.gauge(metric, tagged(std::move(labels)));
  }
  [[nodiscard]] obs::Histogram histogram(std::string_view metric,
                                         obs::Labels labels = {}) {
    return registry_.histogram(metric, tagged(std::move(labels)));
  }

  void emit(std::ostream& out = std::cout) {
    registry_.write_jsonl(out, "BENCH_JSON ");
    emitted_ = true;
  }

 private:
  [[nodiscard]] obs::Labels tagged(obs::Labels labels) const {
    labels.emplace_back("bench", name_);
    return labels;
  }

  std::string name_;
  obs::MetricsRegistry registry_;
  bool emitted_ = false;
};

}  // namespace vdx::bench
