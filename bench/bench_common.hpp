// Shared helpers for the figure/table regeneration benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <iostream>

#include "sim/experiments.hpp"

namespace vdx::bench {

/// The paper-scale scenario: 33.4K broker sessions + 3x background over the
/// 14-CDN world (§5.1). One shared seed keeps all benches consistent.
inline sim::Scenario paper_scenario(std::size_t city_cdns = 0) {
  sim::ScenarioConfig config;
  config.city_cdn_count = city_cdns;
  const auto t0 = std::chrono::steady_clock::now();
  sim::Scenario scenario = sim::Scenario::build(config);
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("[setup] scenario: %zu broker sessions, %zu background, %zu CDNs, "
              "%zu clusters (%.1fs)\n",
              scenario.broker_trace().size(), scenario.background_trace().size(),
              scenario.catalog().cdns().size(), scenario.catalog().clusters().size(),
              std::chrono::duration<double>(t1 - t0).count());
  return scenario;
}

}  // namespace vdx::bench
