// Figure 18 — number of bids per client location vs average cost and score
// under the Marketplace design.
//
// Paper shapes: score improves (drops) with bid count, with the largest
// improvement from adding the second bid; cost rises with bid count as the
// broker buys performance; both flatten out (diminishing returns).
#include "bench_common.hpp"

#include "core/table.hpp"

int main(int argc, char** argv) {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();

  const std::size_t bid_counts[] = {1, 2, 3, 4, 8, 16, 32, 100, 1000};
  const auto points = sim::fig18_bid_count(scenario, bid_counts, /*cost_weight=*/0.3,
                                           bench::threads_flag(argc, argv));

  core::Table table{{"Bids", "Cost (avg $/client)", "Score (avg)"}};
  table.set_title("Figure 18: bid count vs average cost and score (Marketplace)");
  for (const sim::Fig18Point& p : points) {
    table.add_row({std::to_string(p.bid_count), core::format_double(p.mean_cost, 3),
                   core::format_double(p.mean_score, 1)});
  }
  table.print(std::cout);

  std::printf("\nScore drop from 1 -> 2 bids: %.1f; from 2 bids -> max bids: "
              "%.1f (paper: the second bid brings the largest single gain)\n",
              points[0].mean_score - points[1].mean_score,
              points[1].mean_score - points.back().mean_score);
  return 0;
}
