// Adversarial stress suite (DESIGN.md §11; ISSUE 6): degradation curves vs
// steady-state for every named stress scenario. Each case streams the same
// session population through the overload-graceful engine under one regime —
// flash crowds at rising intensity, a diurnal swing, a regional blackout, a
// market-wide price shock, and the perfect storm composing all four — and
// reports QoE/cost/congestion deltas plus shed counts against the steady
// baseline. The admission budget is self-calibrating: it is set to the
// steady run's peak concurrency, so steady sheds nothing and every shed
// session downstream is stress-induced by construction.
//
//   bench_stress_suite                 # full sweep, BENCH_JSON per case
#include "bench_common.hpp"

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "sim/streaming.hpp"
#include "sim/stress.hpp"
#include "trace/generator.hpp"

namespace {

using namespace vdx;

constexpr double kHorizonSeconds = 3600.0;
constexpr double kEpochSeconds = 300.0;
constexpr std::size_t kBrokerSessions = 4000;
constexpr std::size_t kBackgroundSessions = 1500;
constexpr std::uint64_t kSeed = 2017;

struct CaseSummary {
  sim::StreamingResult result;
  double mean_score = 0.0;
  double mean_cost = 0.0;
  double congested_fraction = 0.0;
};

/// One streaming run under `stress`. Fresh generators and a fresh supply
/// controller per case; the controller restores the catalog on destruction,
/// so cases can share one Scenario sequentially.
CaseSummary run_case(sim::Scenario& scenario, const sim::StressConfig& stress,
                     std::size_t budget) {
  const sim::StressProfile profile =
      sim::make_stress_profile(scenario.world(), stress, kHorizonSeconds);

  core::Rng root{kSeed};
  core::Rng broker_rng = root.fork("stress-broker");
  core::Rng background_rng = root.fork("stress-background");
  trace::TraceConfig broker_trace;
  broker_trace.session_count = kBrokerSessions;
  broker_trace.duration_s = kHorizonSeconds;
  trace::BrokerTraceGenerator::Options broker_options;
  broker_options.modulation = &profile.demand;
  trace::BrokerTraceGenerator broker_generator{scenario.world(), broker_trace,
                                               broker_rng, broker_options};
  trace::TraceConfig background_trace = broker_trace;
  background_trace.session_count = kBackgroundSessions;
  trace::BrokerTraceGenerator::Options background_options;
  background_options.broker_controlled = false;
  trace::BrokerTraceGenerator background_generator{
      scenario.world(), background_trace, background_rng, background_options};

  std::optional<sim::SupplyStressController> controller;
  sim::StreamingConfig config;
  config.design = sim::Design::kMarketplace;
  config.epoch_s = kEpochSeconds;
  config.overload.max_active_sessions = budget;
  if (profile.supply_active()) {
    controller.emplace(scenario, profile);
    config.stress = &*controller;
  }

  sim::GeneratorStream broker{broker_generator};
  sim::GeneratorStream background{background_generator};
  CaseSummary summary;
  summary.result = sim::StreamingTimeline{scenario, config}.run(broker, background);

  // Session-weighted means over the decision epochs: a degraded epoch with
  // ten times the population weighs ten times as much in the curve.
  double weight = 0.0;
  for (const sim::EpochReport& epoch : summary.result.timeline.epochs) {
    const double w = static_cast<double>(epoch.assigned_sessions);
    if (w <= 0.0) continue;
    summary.mean_score += w * epoch.metrics.mean_score;
    summary.mean_cost += w * epoch.metrics.mean_cost;
    summary.congested_fraction += w * epoch.metrics.congested_fraction;
    weight += w;
  }
  if (weight > 0.0) {
    summary.mean_score /= weight;
    summary.mean_cost /= weight;
    summary.congested_fraction /= weight;
  }
  return summary;
}

}  // namespace

int main() {
  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = 2'000;
  scenario_config.trace.duration_s = kHorizonSeconds;
  scenario_config.seed = kSeed;
  sim::Scenario scenario = sim::Scenario::build(scenario_config);
  std::printf("[setup] world: %zu CDNs, %zu clusters; streaming %zu broker + %zu "
              "background sessions per case over %.0f s\n",
              scenario.catalog().cdns().size(), scenario.catalog().clusters().size(),
              kBrokerSessions, kBackgroundSessions, kHorizonSeconds);

  // Steady baseline, unshed: its peak concurrency becomes the admission
  // budget for every stress case.
  sim::StressConfig steady;
  const CaseSummary baseline = run_case(scenario, steady, 0);
  const std::size_t budget = baseline.result.peak_active_sessions;
  std::printf("[baseline] steady: peak active %zu (= admission budget), "
              "mean score %.4f, mean cost %.4f, congested %.3f\n",
              budget, baseline.mean_score, baseline.mean_cost,
              baseline.congested_fraction);

  struct Case {
    const char* label;
    sim::StressConfig stress;
    double intensity;
  };
  std::vector<Case> cases;
  for (const double factor : {2.0, 10.0, 50.0}) {
    sim::StressConfig stress;
    stress.scenario = sim::StressScenario::kFlashCrowd;
    stress.spike_factor = factor;
    cases.push_back({"flash-crowd", stress, factor});
  }
  {
    sim::StressConfig stress;
    stress.scenario = sim::StressScenario::kDiurnal;
    cases.push_back({"diurnal", stress, 1.0});
  }
  {
    sim::StressConfig stress;
    stress.scenario = sim::StressScenario::kBlackout;
    cases.push_back({"blackout", stress, 1.0});
  }
  for (const double factor : {3.0, 10.0}) {
    sim::StressConfig stress;
    stress.scenario = sim::StressScenario::kPriceShock;
    stress.shock_factor = factor;
    cases.push_back({"price-shock", stress, factor});
  }
  {
    sim::StressConfig stress;
    stress.scenario = sim::StressScenario::kPerfectStorm;
    cases.push_back({"perfect-storm", stress, 50.0});
  }

  bench::BenchReporter reporter{"stress_suite"};
  std::printf("\n%-14s %9s %9s %9s %9s %9s %9s %9s\n", "scenario", "intensity",
              "peak", "shed", "score", "d_score", "x_cost", "congested");
  std::printf("%-14s %9s %9zu %9zu %9.4f %9s %9s %9.3f\n", "steady", "1", budget,
              baseline.result.shed_sessions, baseline.mean_score, "-", "-",
              baseline.congested_fraction);
  for (Case& c : cases) {
    c.stress.shed_budget = budget;
    const CaseSummary summary = run_case(scenario, c.stress, budget);
    const double score_delta = summary.mean_score - baseline.mean_score;
    const double cost_ratio =
        baseline.mean_cost > 0.0 ? summary.mean_cost / baseline.mean_cost : 0.0;
    std::printf("%-14s %9.0f %9zu %9zu %9.4f %+9.4f %9.3f %9.3f\n", c.label,
                c.intensity, summary.result.peak_active_sessions,
                summary.result.shed_sessions, summary.mean_score, score_delta,
                cost_ratio, summary.congested_fraction);

    char intensity[32];
    std::snprintf(intensity, sizeof intensity, "%g", c.intensity);
    const obs::Labels labels{{"scenario", c.label}, {"intensity", intensity}};
    reporter.gauge("stress.mean_score", labels).set(summary.mean_score);
    reporter.gauge("stress.score_delta", labels).set(score_delta);
    reporter.gauge("stress.cost_ratio", labels).set(cost_ratio);
    reporter.gauge("stress.congested_fraction", labels)
        .set(summary.congested_fraction);
    reporter.gauge("stress.shed_sessions", labels)
        .set(static_cast<double>(summary.result.shed_sessions));
    reporter.gauge("stress.peak_active", labels)
        .set(static_cast<double>(summary.result.peak_active_sessions));
  }
  reporter.gauge("stress.baseline_score").set(baseline.mean_score);
  reporter.gauge("stress.baseline_cost").set(baseline.mean_cost);
  reporter.gauge("stress.admission_budget").set(static_cast<double>(budget));
  reporter.emit();
  return 0;
}
