// Availability-under-compound-faults bench (DESIGN.md §15): for each feed
// seed, serve the same trace twice — once clean on a single shard, once
// through the full self-healing drill (2 shards under Gilbert-Elliott link
// bursts, per-link circuit breakers with stale-slice quarantine, a worker
// restart budget, a checkpoint disk outage behind the checkpointer breaker,
// and the brownout ladder capped at its byte-transparent step 2).
//
// Reports the fraction of clean rounds the faulted daemon still completed
// (avail.rounds_pct — the CI smoke gate requires >= 99) and the fraction of
// seeds whose decision streams stayed byte-identical through the drill
// (avail.identical_pct), plus the per-seed fault-machinery counters proving
// the drill actually bit: breaker opens, stale settlements, checkpoint
// skips, brownout rounds.
//
//   bench_availability                    # 2000 sessions, 5 seeds
//   bench_availability --sessions 4e3 --seeds 8
//   bench_availability --smoke            # CI-sized drill, same shape
#include "bench_common.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "serve/daemon.hpp"
#include "serve/feed.hpp"
#include "state/fault_fs.hpp"

namespace {

using namespace vdx;

double number_flag(int argc, char** argv, std::string_view name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == name) return std::strtod(argv[i + 1], nullptr);
  }
  return fallback;
}

bool switch_flag(int argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == name) return true;
  }
  return false;
}

struct RunResult {
  serve::ServeReport report;
  std::string decisions;
  std::size_t breaker_opens = 0;
  std::size_t stale_bids = 0;
  std::size_t restarts_denied = 0;
};

/// One serve over the seeded trace. `faulted` layers the compound drill on
/// top; the clean run uses the identical feed with none of it.
RunResult run_once(const sim::Scenario& scenario, std::uint64_t seed,
                   std::size_t sessions, double round_s, bool faulted) {
  trace::TraceConfig trace;
  trace.session_count = sessions;
  core::Rng root{seed};
  core::Rng rng = root.fork("stream-trace");
  serve::GeneratorFeed feed{scenario.world(), trace, rng};

  obs::MetricsRegistry metrics;
  obs::RunJournal journal;
  std::ostringstream decisions;

  serve::ServeConfig config;
  config.round_s = round_s;
  config.obs = obs::Observer{&metrics, nullptr, &journal};
  config.decisions = &decisions;
  config.fingerprint.seed = seed;
  config.fingerprint.broker_sessions = sessions;
  config.fingerprint.epoch_s = round_s;

  state::FaultFs fault_fs;
  if (faulted) {
    config.shards = 2;
    // Gilbert-Elliott black bursts: the bad state drops every frame
    // (0.25 * 4 caps at 1.0) and lingers (exit 0.02), so a burst can
    // outlast the 64-attempt link retry budget and trip the breaker.
    config.shard_link_faults.drop_rate = 0.25;
    config.shard_link_faults.corrupt_rate = 0.02;
    config.shard_link_faults.burst_enter = 0.05;
    config.shard_link_faults.burst_exit = 0.02;
    config.shard_link_faults.burst_multiplier = 4.0;
    config.shard_link_breaker.failure_threshold = 1;
    config.shard_link_breaker.open_ticks = 2;
    config.shard_worker_restart.max_restarts = 2;
    config.shard_worker_restart.window_ticks = 8;
    config.checkpoint_every_rounds = 2;
    config.checkpoint_dir = "bench_avail_ckpt";  // virtual: lives in FaultFs
    config.checkpoint_fs = &fault_fs;
    config.checkpoint_breaker.failure_threshold = 1;
    config.checkpoint_breaker.open_ticks = 3;
    config.brownout.max_step = 2;  // byte-transparency ceiling
    config.round_hook = [&fault_fs](std::uint64_t r) {
      fault_fs.set_failing(r >= 8 && r < 16);  // disk outage mid-drill
    };
  }

  RunResult out;
  serve::ServeDaemon daemon{scenario, feed, std::move(config)};
  out.report = daemon.run();
  out.decisions = decisions.str();
  for (const obs::Event& event : journal.events()) {
    if (event.kind == obs::EventKind::kBreakerOpen) ++out.breaker_opens;
    if (event.kind == obs::EventKind::kStaleBid) ++out.stale_bids;
    if (event.kind == obs::EventKind::kRestartDenied) ++out.restarts_denied;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = switch_flag(argc, argv, "--smoke");
  const auto sessions = static_cast<std::size_t>(
      number_flag(argc, argv, "--sessions", smoke ? 600.0 : 2'000.0));
  const auto seed_count = static_cast<std::size_t>(
      number_flag(argc, argv, "--seeds", smoke ? 2.0 : 5.0));
  const double round_s = number_flag(argc, argv, "--round", 120.0);

  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = smoke ? 1'500 : 4'000;
  scenario_config.seed = 11;
  double setup_seconds = 0.0;
  const sim::Scenario scenario = [&] {
    const obs::ScopedTimer timer{&setup_seconds};
    return sim::Scenario::build(scenario_config);
  }();
  std::printf("[setup] world: %zu CDNs, %zu clusters (%.1fs); %zu sessions "
              "per seed, %.0fs rounds\n",
              scenario.catalog().cdns().size(),
              scenario.catalog().clusters().size(), setup_seconds, sessions,
              round_s);

  const std::vector<std::uint64_t> all_seeds{11, 23, 37, 41, 59, 61, 73, 89};
  const std::vector<std::uint64_t> seeds{
      all_seeds.begin(),
      all_seeds.begin() +
          static_cast<std::ptrdiff_t>(std::min(seed_count, all_seeds.size()))};

  bench::BenchReporter reporter{"availability"};
  core::Table table{{"Seed", "Clean rounds", "Drill rounds", "Avail %",
                     "Identical", "Breaker opens", "Stale bids", "Ckpt skips",
                     "Brownout rounds"}};
  table.set_title("Availability under compound faults (2 shards, GE bursts, "
                  "disk outage rounds 8-16)");

  std::uint64_t clean_rounds_total = 0;
  std::uint64_t drill_rounds_total = 0;
  std::size_t identical_seeds = 0;
  for (const std::uint64_t seed : seeds) {
    const RunResult clean = run_once(scenario, seed, sessions, round_s, false);
    const RunResult drill = run_once(scenario, seed, sessions, round_s, true);
    clean_rounds_total += clean.report.rounds;
    drill_rounds_total += drill.report.rounds;
    const bool identical = clean.decisions == drill.decisions &&
                           clean.report.decision_rounds ==
                               drill.report.decision_rounds;
    if (identical) ++identical_seeds;
    const double pct =
        clean.report.rounds == 0
            ? 100.0
            : 100.0 * static_cast<double>(drill.report.rounds) /
                  static_cast<double>(clean.report.rounds);
    table.add_row({std::to_string(seed), std::to_string(clean.report.rounds),
                   std::to_string(drill.report.rounds),
                   core::format_double(pct, 1), identical ? "yes" : "NO",
                   std::to_string(drill.breaker_opens),
                   std::to_string(drill.stale_bids),
                   std::to_string(drill.report.checkpoint_skips),
                   std::to_string(drill.report.brownout_rounds)});
    const obs::Labels labels{{"seed", std::to_string(seed)}};
    reporter.gauge("avail.seed_rounds_pct", labels).set(pct);
    reporter.gauge("avail.breaker_opens", labels)
        .set(static_cast<double>(drill.breaker_opens));
    reporter.gauge("avail.stale_bids", labels)
        .set(static_cast<double>(drill.stale_bids));
    reporter.gauge("avail.checkpoint_skips", labels)
        .set(static_cast<double>(drill.report.checkpoint_skips));
    reporter.gauge("avail.brownout_rounds", labels)
        .set(static_cast<double>(drill.report.brownout_rounds));
  }

  const double rounds_pct =
      clean_rounds_total == 0
          ? 100.0
          : 100.0 * static_cast<double>(drill_rounds_total) /
                static_cast<double>(clean_rounds_total);
  const double identical_pct =
      seeds.empty() ? 100.0
                    : 100.0 * static_cast<double>(identical_seeds) /
                          static_cast<double>(seeds.size());
  reporter.gauge("avail.rounds_pct").set(rounds_pct);
  reporter.gauge("avail.identical_pct").set(identical_pct);

  table.print(std::cout);
  std::printf("[avail] rounds completed %.2f%% (%llu/%llu), decision streams "
              "identical on %zu/%zu seeds\n",
              rounds_pct,
              static_cast<unsigned long long>(drill_rounds_total),
              static_cast<unsigned long long>(clean_rounds_total),
              identical_seeds, seeds.size());
  reporter.emit();
  return 0;
}
