// Background-traffic ablation (paper §5.1: the 3x non-broker traffic is
// "difficult to quantify ... but has been progressively changing"): how do
// the capacity-blind and capacity-aware designs respond as the non-broker
// share shrinks (brokered delivery taking over) or grows?
//
// Expected: BestLookup's congestion scales with background volume (it fills
// true capacities blindly); the Marketplace's net-of-background commitments
// keep it clean at every multiplier.
#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "sim/metrics.hpp"

int main() {
  using namespace vdx;

  core::Table table{{"Background x", "BestLookup congested", "Marketplace congested",
                     "BestLookup score", "Marketplace score"}};
  table.set_title("Congestion vs background-traffic multiplier");
  for (const double multiplier : {0.5, 1.0, 2.0, 3.0, 5.0}) {
    sim::ScenarioConfig config;
    config.trace.session_count = 12'000;  // keep the sweep quick
    config.background_multiplier = multiplier;
    const sim::Scenario scenario = sim::Scenario::build(config);

    const sim::DesignMetrics best_lookup = sim::compute_metrics(
        scenario, sim::run_design(scenario, sim::Design::kBestLookup));
    const sim::DesignMetrics marketplace = sim::compute_metrics(
        scenario, sim::run_design(scenario, sim::Design::kMarketplace));
    table.add_row({core::format_double(multiplier, 1),
                   core::format_percent(best_lookup.congested_fraction, 1),
                   core::format_percent(marketplace.congested_fraction, 1),
                   core::format_double(best_lookup.mean_score, 1),
                   core::format_double(marketplace.mean_score, 1)});
  }
  table.print(std::cout);
  std::printf("\nReading: the paper's BestLookup critique is a function of how\n"
              "much traffic the broker cannot see; Marketplace is immune at\n"
              "every mix because CDNs subtract their own background load\n"
              "before committing capacity.\n");
  return 0;
}
