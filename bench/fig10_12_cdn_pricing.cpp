// Figures 10-12 — per-CDN price-to-cost ratio (Brokered), traffic and
// profits under Brokered vs VDX.
//
// Paper shapes: most CDNs' price-to-cost ratios sit below 1.0 under flat-
// rate Brokered delivery (Fig. 10); VDX shifts traffic toward the cheap
// clusters of distributed CDNs (Fig. 11); Brokered leaves many CDNs with
// significant deficits while VDX makes every CDN profitable (Fig. 12).
#include "bench_common.hpp"

#include "core/table.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();
  const sim::SettlementComparison cmp = sim::settlement_comparison(scenario);

  core::Table table{{"CDN", "Model", "P/C (Brokered)", "Traffic Bro (Mbps)",
                     "Traffic VDX (Mbps)", "Profit Brokered", "Profit VDX"}};
  table.set_title("Figures 10-12: per-CDN pricing, traffic and profit");
  std::size_t brokered_losers = 0;
  std::size_t vdx_losers = 0;
  for (std::size_t i = 0; i < cmp.brokered_cdn.size(); ++i) {
    const sim::CdnAccount& b = cmp.brokered_cdn[i];
    const sim::CdnAccount& v = cmp.vdx_cdn[i];
    const cdn::Cdn& cdn = scenario.catalog().cdns()[i];
    if (b.traffic_mbps > 0.0 && b.profit.micros() < 0) ++brokered_losers;
    if (v.traffic_mbps > 0.0 && v.profit.micros() < 0) ++vdx_losers;
    table.add_row({std::to_string(i + 1), to_string(cdn.model),
                   core::format_double(b.price_to_cost, 2),
                   core::format_double(b.traffic_mbps, 0),
                   core::format_double(v.traffic_mbps, 0), b.profit.to_string(),
                   v.profit.to_string()});
  }
  table.print(std::cout);

  std::printf("\nCDNs losing money: Brokered %zu/14, VDX %zu/14 "
              "(paper: most lose under Brokered; none under VDX)\n",
              brokered_losers, vdx_losers);
  return 0;
}
