// Marketplace dynamics (beyond the paper's snapshot evaluation): repeated
// Decision-Protocol rounds through the wire codec, contrasting static vs
// risk-averse bidding strategies on traffic predictability (§6.3's "CDNs can
// learn risk-averse bidding strategies ... that will likely provide traffic
// predictability"), plus the reputation system's reaction to a fraudulent
// CDN and the exchange's behaviour through a CDN failure.
#include "bench_common.hpp"

#include "core/table.hpp"
#include "market/exchange.hpp"

int main() {
  using namespace vdx;
  sim::ScenarioConfig config;
  config.trace.session_count = 8000;  // dynamics, not scale, are the point
  const sim::Scenario scenario = sim::Scenario::build(config);
  std::printf("[setup] scenario: %zu broker sessions, %zu CDNs\n",
              scenario.broker_trace().size(), scenario.catalog().cdns().size());

  constexpr std::size_t kRounds = 10;

  // ---- Predictability: static vs risk-averse. ----
  market::ExchangeConfig static_config;
  static_config.strategy = market::StrategyKind::kStatic;
  market::VdxExchange fixed{scenario, static_config};
  const auto static_reports = fixed.run(kRounds);

  market::ExchangeConfig learn_config;
  learn_config.strategy = market::StrategyKind::kRiskAverse;
  market::VdxExchange learner{scenario, learn_config};
  const auto learner_reports = learner.run(kRounds);

  core::Table table{{"Round", "Pred. error (static)", "Pred. error (risk-averse)",
                     "Mean score", "Mean cost", "Wire bytes"}};
  table.set_title("Marketplace rounds: traffic-predictability learning");
  for (std::size_t r = 0; r < kRounds; ++r) {
    table.add_row({std::to_string(r + 1),
                   core::format_double(static_reports[r].mean_prediction_error, 3),
                   core::format_double(learner_reports[r].mean_prediction_error, 3),
                   core::format_double(learner_reports[r].mean_score, 1),
                   core::format_double(learner_reports[r].mean_cost, 3),
                   std::to_string(learner_reports[r].wire.bytes_on_wire)});
  }
  table.print(std::cout);
  std::printf("\n");

  // ---- Fraud: reputation reaction. ----
  market::ExchangeConfig fraud_config;
  fraud_config.strategy = market::StrategyKind::kStatic;
  market::VdxExchange exchange{scenario, fraud_config};
  const auto baseline = exchange.run_round();
  std::size_t culprit = 0;
  for (std::size_t i = 1; i < baseline.awarded_mbps.size(); ++i) {
    if (baseline.awarded_mbps[i] > baseline.awarded_mbps[culprit]) culprit = i;
  }
  exchange.set_fraudulent(cdn::CdnId{static_cast<std::uint32_t>(culprit)}, true);
  std::printf("Fraud drill: CDN %zu starts misreporting performance/price\n",
              culprit + 1);
  for (std::size_t r = 0; r < 6; ++r) {
    const auto report = exchange.run_round();
    std::printf("  round %zu: fraudulent CDN traffic %.0f Mbps, reputation "
                "error %.2f, penalty x%.2f\n",
                r + 1, report.awarded_mbps[culprit],
                exchange.reputation().error_estimate(
                    cdn::CdnId{static_cast<std::uint32_t>(culprit)}),
                exchange.reputation().penalty_multiplier(
                    cdn::CdnId{static_cast<std::uint32_t>(culprit)}));
  }
  std::printf("\n");

  // ---- Failure: the market absorbs a dead CDN. ----
  market::VdxExchange failover{scenario};
  const auto healthy = failover.run_round();
  std::size_t top = 0;
  for (std::size_t i = 1; i < healthy.awarded_mbps.size(); ++i) {
    if (healthy.awarded_mbps[i] > healthy.awarded_mbps[top]) top = i;
  }
  failover.set_failed(cdn::CdnId{static_cast<std::uint32_t>(top)}, true);
  const auto degraded = failover.run_round();
  std::printf("Failure drill: CDN %zu (top carrier, %.0f Mbps) goes dark -> "
              "its traffic %.0f Mbps; mean score %.1f -> %.1f; congestion "
              "%.1f%% -> %.1f%%\n",
              top + 1, healthy.awarded_mbps[top], degraded.awarded_mbps[top],
              healthy.mean_score, degraded.mean_score,
              100.0 * healthy.congested_fraction, 100.0 * degraded.congested_fraction);
  return 0;
}
