// Solver microbenchmarks: backend throughput across instance sizes, plus the
// grouping-granularity ablation from DESIGN.md §5.
#include <benchmark/benchmark.h>

#include "core/rng.hpp"
#include "solver/solver.hpp"

namespace {

using namespace vdx;

solver::AssignmentProblem make_instance(std::uint64_t seed, std::size_t groups,
                                        std::size_t resources,
                                        std::size_t options_per_group) {
  core::Rng rng{seed};
  solver::AssignmentProblem p;
  p.group_counts.resize(groups);
  double total = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    p.group_counts[g] = static_cast<double>(rng.range(5, 200));
    total += p.group_counts[g] * 2.0;
  }
  p.capacities.assign(resources, 1.3 * total / static_cast<double>(resources));
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t o = 0; o < options_per_group; ++o) {
      solver::Option option;
      option.group = static_cast<std::uint32_t>(g);
      option.resource = static_cast<std::uint32_t>(rng.below(resources));
      option.unit_cost = rng.uniform(1.0, 50.0);
      option.unit_demand = 2.0;
      p.options.push_back(option);
    }
  }
  return p;
}

void BM_SolveBackend(benchmark::State& state, solver::Backend backend) {
  const auto groups = static_cast<std::size_t>(state.range(0));
  const solver::AssignmentProblem problem =
      make_instance(7, groups, groups / 4 + 2, 8);
  solver::SolveOptions options;
  options.backend = backend;
  for (auto _ : state) {
    const solver::Assignment result = solver::solve(problem, options);
    benchmark::DoNotOptimize(result.objective);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(problem.options.size()));
}

void BM_GroupingGranularity(benchmark::State& state) {
  // Ablation: same workload, coarser vs finer grouping. Items processed per
  // second shows how Share granularity buys solver speed.
  const auto groups = static_cast<std::size_t>(state.range(0));
  const solver::AssignmentProblem problem = make_instance(11, groups, 40, 10);
  for (auto _ : state) {
    const solver::Assignment result = solver::solve(problem, {});
    benchmark::DoNotOptimize(result.objective);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SolveBackend, mcf, vdx::solver::Backend::kMinCostFlow)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512);
BENCHMARK_CAPTURE(BM_SolveBackend, greedy, vdx::solver::Backend::kGreedy)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512);
BENCHMARK_CAPTURE(BM_SolveBackend, lagrangian, vdx::solver::Backend::kLagrangian)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512);
BENCHMARK_CAPTURE(BM_SolveBackend, simplex, vdx::solver::Backend::kSimplex)
    ->Arg(16)
    ->Arg(32);
BENCHMARK(BM_GroupingGranularity)->Arg(50)->Arg(200)->Arg(800);
