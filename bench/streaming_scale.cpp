// Streaming-scale bench (ROADMAP "millions of users"; DESIGN.md §9): drive
// the event-driven StreamingTimeline over a multi-hour, million-session
// horizon fed straight from chunked generators — the full trace never
// exists in memory. Reports end-to-end throughput as
// timeline.sessions_per_sec plus the engine's own timeline.* metrics.
//
//   bench_streaming_scale                       # 1M broker sessions, 6 hours
//   bench_streaming_scale --sessions 2e5 --hours 2 --epoch 300
#include "bench_common.hpp"

#include <cmath>

#include "sim/streaming.hpp"

namespace {

double number_flag(int argc, char** argv, std::string_view name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == name) return std::strtod(argv[i + 1], nullptr);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdx;
  const auto sessions =
      static_cast<std::size_t>(number_flag(argc, argv, "--sessions", 1e6));
  const double hours = number_flag(argc, argv, "--hours", 6.0);
  const double epoch_s = number_flag(argc, argv, "--epoch", 300.0);

  // The scenario contributes world/catalog/mapping only; its own pilot trace
  // stays small regardless of the streamed session count.
  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = 10'000;
  scenario_config.trace.duration_s = hours * 3600.0;
  double setup_seconds = 0.0;
  const sim::Scenario scenario = [&] {
    const obs::ScopedTimer timer{&setup_seconds};
    return sim::Scenario::build(scenario_config);
  }();
  std::printf("[setup] world: %zu CDNs, %zu clusters (%.1fs); streaming %zu broker "
              "+ %zu background sessions over %.1f h\n",
              scenario.catalog().cdns().size(), scenario.catalog().clusters().size(),
              setup_seconds, sessions,
              static_cast<std::size_t>(std::llround(
                  scenario_config.background_multiplier *
                  static_cast<double>(sessions))),
              hours);

  core::Rng stream_root{scenario_config.seed};
  core::Rng broker_rng = stream_root.fork("stream-trace");
  core::Rng background_rng = stream_root.fork("stream-background");
  trace::TraceConfig broker_trace = scenario_config.trace;
  broker_trace.session_count = sessions;
  trace::TraceConfig background_trace = broker_trace;
  background_trace.session_count = static_cast<std::size_t>(std::llround(
      scenario_config.background_multiplier * static_cast<double>(sessions)));
  trace::BrokerTraceGenerator::Options background_options;
  background_options.broker_controlled = false;
  trace::BrokerTraceGenerator broker_generator{scenario.world(), broker_trace,
                                               broker_rng};
  trace::BrokerTraceGenerator background_generator{
      scenario.world(), background_trace, background_rng, background_options};

  bench::BenchReporter reporter{"streaming_scale"};
  sim::StreamingConfig config;
  config.design = sim::Design::kMarketplace;
  config.epoch_s = epoch_s;
  config.run.threads = bench::threads_flag(argc, argv);
  config.obs.metrics = &reporter.registry();

  sim::GeneratorStream broker_stream{broker_generator};
  sim::GeneratorStream background_stream{background_generator};
  double run_seconds = 0.0;
  const sim::StreamingResult result = [&] {
    const obs::ScopedTimer timer{&run_seconds};
    return sim::StreamingTimeline{scenario, config}.run(broker_stream,
                                                        background_stream);
  }();

  const double streamed =
      static_cast<double>(result.broker_sessions + result.background_sessions);
  std::printf("[run] %.1fs: %zu epochs, %zu decision rounds, %zu background "
              "recomputes, peak active %zu, %.0f sessions/s\n",
              run_seconds, result.timeline.epochs.size(), result.decision_rounds,
              result.background_recomputes, result.peak_active_sessions,
              streamed / run_seconds);

  reporter.gauge("timeline.sessions_per_sec").set(streamed / run_seconds);
  reporter.gauge("timeline.run_seconds").set(run_seconds);
  reporter.counter("timeline.broker_sessions")
      .add(static_cast<double>(result.broker_sessions));
  reporter.counter("timeline.background_sessions")
      .add(static_cast<double>(result.background_sessions));
  reporter.counter("timeline.epochs")
      .add(static_cast<double>(result.timeline.epochs.size()));
  reporter.emit();
  return 0;
}
