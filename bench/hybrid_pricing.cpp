// Hybrid pricing ablation (paper §8): every CDN simultaneously offers its
// flat-rate contract (high-but-flat) and its marketplace menu
// (low-but-variable), EC2-style.
//
// Expected: the dynamic offers win most traffic, but flat contracts survive
// where a CDN's average-cost contract price undercuts its expensive
// clusters; the blend's quality sits at the Marketplace level while easing
// adoption (nobody has to tear up contracts on day one).
#include "bench_common.hpp"

#include "core/table.hpp"
#include "sim/hybrid.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();

  const sim::HybridOutcome hybrid = sim::run_hybrid_pricing(scenario);
  const sim::DesignOutcome brokered = sim::run_design(scenario, sim::Design::kBrokered);
  const sim::DesignOutcome pure = sim::run_design(scenario, sim::Design::kMarketplace);
  const sim::DesignMetrics brokered_metrics = sim::compute_metrics(scenario, brokered);
  const sim::DesignMetrics pure_metrics = sim::compute_metrics(scenario, pure);

  core::Table table{{"Design", "Mean cost", "Mean score", "Median distance (mi)",
                     "Congested"}};
  table.set_title("Hybrid flat+dynamic pricing vs the pure designs");
  table.add_row({"Brokered (all flat)", core::format_double(brokered_metrics.mean_cost, 3),
                 core::format_double(brokered_metrics.mean_score, 1),
                 core::format_double(brokered_metrics.median_distance_miles, 0),
                 core::format_percent(brokered_metrics.congested_fraction, 1)});
  table.add_row({"Hybrid", core::format_double(hybrid.metrics.mean_cost, 3),
                 core::format_double(hybrid.metrics.mean_score, 1),
                 core::format_double(hybrid.metrics.median_distance_miles, 0),
                 core::format_percent(hybrid.metrics.congested_fraction, 1)});
  table.add_row({"Marketplace (all dynamic)",
                 core::format_double(pure_metrics.mean_cost, 3),
                 core::format_double(pure_metrics.mean_score, 1),
                 core::format_double(pure_metrics.median_distance_miles, 0),
                 core::format_percent(pure_metrics.congested_fraction, 1)});
  table.print(std::cout);

  const double total = hybrid.flat_clients + hybrid.dynamic_clients;
  std::printf("\nTraffic split under hybrid offers: flat %.1f%%, dynamic %.1f%% "
              "— flat contracts survive only where the averaged contract "
              "price beats per-cluster pricing.\n",
              100.0 * hybrid.flat_clients / total,
              100.0 * hybrid.dynamic_clients / total);
  return 0;
}
