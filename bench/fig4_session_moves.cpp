// Figure 4 — % of active sessions moved between CDNs by the broker, in 5s
// intervals over the 1-hour trace.
//
// Paper: "surprisingly high throughout (averaging ~40%) ... at some points
// this dips to ~20% and at other times rises above ~60%".
#include "bench_common.hpp"

#include <algorithm>

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();
  const auto series = sim::fig4_moved_series(scenario);

  // Print a downsampled time series (one row per minute) as an ASCII strip.
  std::printf("Figure 4: %% of active sessions moved mid-stream (5s bins, "
              "one printed row per minute)\n");
  std::printf("%8s  %6s  %s\n", "time", "moved", "0%%....................100%%");
  for (std::size_t minute = 0; minute * 12 < series.size(); ++minute) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t b = minute * 12; b < std::min(series.size(), (minute + 1) * 12);
         ++b) {
      sum += series[b];
      ++n;
    }
    const double value = n > 0 ? sum / static_cast<double>(n) : 0.0;
    const auto bar = static_cast<std::size_t>(value * 24.0);
    std::printf("%6zus  %5.1f%%  |%s\n", minute * 60, value * 100.0,
                std::string(bar, '#').c_str());
  }

  // Steady-state summary (skip the 10-minute warm-up while sessions ramp).
  std::vector<double> steady(series.begin() + 120, series.end());
  double sum = 0.0;
  double lo = 1.0;
  double hi = 0.0;
  for (const double v : steady) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::printf("\nsteady-state: mean %.1f%% (paper ~40%%), min %.1f%% (paper "
              "~20%%), max %.1f%% (paper ~60%%)\n",
              100.0 * sum / static_cast<double>(steady.size()), 100.0 * lo,
              100.0 * hi);
  return 0;
}
