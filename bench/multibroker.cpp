// Multi-broker overbooking ablation (paper §4.2): BestLookup's flaw — and
// the Marketplace's fix — as the number of independent brokers grows.
//
// Expected: BestLookup's congestion climbs with broker count (every broker
// fills the same announced capacities); the Marketplace stays clean at any
// broker count because the Share step lets CDNs commit disjoint capacity
// slices per broker.
#include "bench_common.hpp"

#include "core/table.hpp"
#include "sim/multibroker.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();

  core::Table table{{"Design", "Brokers", "Congested clients", "Overbooked clusters",
                     "Mean score", "Mean cost"}};
  table.set_title("Multi-broker overbooking: BestLookup vs Marketplace");
  for (const sim::Design design :
       {sim::Design::kBestLookup, sim::Design::kMarketplace}) {
    for (const std::size_t brokers : {1u, 2u, 4u, 8u}) {
      sim::MultiBrokerConfig config;
      config.design = design;
      config.broker_count = brokers;
      const sim::MultiBrokerResult result = sim::run_multibroker(scenario, config);
      table.add_row({std::string{sim::to_string(design)}, std::to_string(brokers),
                     core::format_percent(result.metrics.congested_fraction, 1),
                     std::to_string(result.overbooked_clusters),
                     core::format_double(result.metrics.mean_score, 1),
                     core::format_double(result.metrics.mean_cost, 3)});
    }
  }
  table.print(std::cout);
  std::printf("\nReading: 'a cluster with capacity 10 units may receive 9 units "
              "of traffic each from two brokers' (§4.2) — BestLookup's "
              "overbooking compounds with broker count, Marketplace's "
              "client-aware capacity commitments do not.\n");
  return 0;
}
