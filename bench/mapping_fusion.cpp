// Measurement-sharing ablation (paper §3.3): CDNs measure cluster->gateway
// in advance; brokers measure client->server in-connection. How much does
// pooling both vantage points improve the internet map?
//
// Expected: the fused estimator beats the CDN-only map at every broker
// coverage level, improving as brokered traffic (coverage) grows — the
// quantified case for a bidirectional measurement exchange.
#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "net/fusion.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace vdx;
  sim::ScenarioConfig config;
  config.trace.session_count = 4000;  // the mapping, not the workload, matters
  const sim::Scenario scenario = sim::Scenario::build(config);
  std::printf("[setup] mapping: %zu cities x %zu cluster vantages\n",
              scenario.mapping().city_count(), scenario.mapping().vantage_count());

  core::Table table{{"Broker coverage", "CDN-only err", "Broker-only err (covered)",
                     "Fused err", "Pairs improved"}};
  table.set_title("Median relative score-estimate error by vantage fusion");
  for (const double coverage : {0.05, 0.1, 0.25, 0.5, 0.9}) {
    net::VantageNoise noise;
    noise.broker_coverage = coverage;
    core::Rng rng{2026};
    const net::FusionReport report =
        net::evaluate_fusion(scenario.world(), scenario.mapping(), noise, rng);
    table.add_row({core::format_percent(coverage, 0),
                   core::format_percent(report.cdn_only_error, 1),
                   core::format_percent(report.broker_only_error, 1),
                   core::format_percent(report.fused_error, 1),
                   core::format_percent(report.improved_fraction, 1)});
  }
  table.print(std::cout);
  std::printf("\nReading: \"Sharing mapping information could greatly improve "
              "the accuracy of the data as both CDNs and brokers have limited "
              "vantage points\" (§3.3) — the fused map's error shrinks "
              "monotonically with brokered coverage.\n");
  return 0;
}
