// Transactions-design ablation (paper §4.2 / Table 2): the all-CDN-approval
// protocol the paper drops as impractical — quantified.
//
// Sweep the CDNs' strategic veto threshold (minimum acceptable fraction of
// their fair demand share). Expected: any strategic behaviour forces
// multiple recompute rounds with CDNs walking away; the committed mapping is
// worse than the first attempt; greedy-enough CDNs prevent commitment
// entirely. The Marketplace gets the first-attempt mapping in ONE round.
#include "bench_common.hpp"

#include "core/table.hpp"
#include "market/transactions.hpp"

int main() {
  using namespace vdx;
  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = 8000;
  const sim::Scenario scenario = sim::Scenario::build(scenario_config);
  std::printf("[setup] scenario: %zu broker sessions, %zu CDNs\n",
              scenario.broker_trace().size(), scenario.catalog().cdns().size());

  core::Table table{{"Veto threshold", "Committed", "Rounds", "CDNs withdrawn",
                     "Final mean score", "Final mean cost"}};
  table.set_title("Transactions: commit behaviour vs strategic veto threshold");
  for (const double threshold : {0.0, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0}) {
    market::TransactionConfig config;
    config.veto_threshold = threshold;
    const market::TransactionResult result = market::run_transactions(scenario, config);
    table.add_row({core::format_double(threshold, 2), result.committed ? "yes" : "NO",
                   std::to_string(result.rounds_used),
                   std::to_string(result.withdrawn_cdns),
                   core::format_double(result.final_mean_score, 2),
                   core::format_double(result.final_mean_cost, 3)});
  }
  table.print(std::cout);
  std::printf("\nReading: veto_threshold = 0 is the Marketplace (single round, "
              "nobody withdraws). Any strategic vetoing burns rounds and "
              "degrades the committed mapping; at high thresholds a 'commit' "
              "only happens because nearly every CDN has walked away (or the "
              "market collapses outright) — the paper's reason for dropping "
              "Transactions.\n");
  return 0;
}
