// Chaos sweep (§6.3 robustness): the VDX exchange under an increasingly
// lossy transport. Sweeps the per-frame drop rate from 0% to 30% (with a
// fixed 2% bit-corruption floor once faults are on) and reports how cost,
// quality, congestion, and the degraded-round machinery respond: message
// timeout rate, retries, rounds flagged degraded, and the share of awarded
// traffic carried by stale cached bids.
//
// The headline: the marketplace keeps deciding at every loss rate — score
// and cost stay near the fault-free values while the transport sheds up to
// a third of all frames — because retries recover most messages and the
// broker's stale-bid fallback papers over the rest.
//
// The sweep points are independent exchanges, so they run concurrently
// (`--threads N`, 0/default = all cores, 1 = serial); rows and BENCH_JSON
// gauges are emitted in drop-rate order after the join, so output is
// identical at any thread count.
#include "bench_common.hpp"

#include "core/parallel.hpp"
#include "core/table.hpp"
#include "market/exchange.hpp"

int main(int argc, char** argv) {
  using namespace vdx;
  const std::size_t threads = bench::threads_flag(argc, argv);
  sim::ScenarioConfig config;
  config.trace.session_count = 8000;
  const sim::Scenario scenario = sim::Scenario::build(config);
  std::printf("[setup] scenario: %zu broker sessions, %zu CDNs\n",
              scenario.broker_trace().size(), scenario.catalog().cdns().size());

  constexpr std::size_t kRounds = 8;
  constexpr double kDropRates[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};

  core::Table table{{"Drop rate", "Mean score", "Mean cost", "Congested %",
                     "Timeout %", "Retries/round", "Degraded rounds",
                     "Stale share %"}};
  table.set_title("Chaos sweep: exchange quality vs transport drop rate");

  // Machine-readable results: one labeled gauge per (metric, drop rate),
  // emitted as BENCH_JSON lines after the table.
  bench::BenchReporter reporter{"chaos_sweep"};

  struct SweepPoint {
    double score = 0.0;
    double cost = 0.0;
    double congested = 0.0;
    double timeout_rate = 0.0;
    double stale_share = 0.0;
    std::size_t retries = 0;
    std::size_t degraded = 0;
  };

  core::ThreadPool pool{core::ThreadPool::resolve(threads)};
  double sweep_seconds = 0.0;
  const auto points = [&] {
    const obs::ScopedTimer timer{&sweep_seconds};
    return core::parallel_map(pool, std::size(kDropRates), [&](std::size_t i) {
      const double drop = kDropRates[i];
      market::ExchangeConfig exchange_config;
      exchange_config.chaos.faults.drop_rate = drop;
      exchange_config.chaos.faults.corrupt_rate = drop > 0.0 ? 0.02 : 0.0;
      exchange_config.chaos.faults.seed = 0xC4A05;
      market::VdxExchange exchange{scenario, exchange_config};
      const auto reports = exchange.run(kRounds);

      SweepPoint point;
      for (const market::RoundReport& report : reports) {
        point.score += report.mean_score;
        point.cost += report.mean_cost;
        point.congested += report.congested_fraction;
        point.timeout_rate += report.timeout_rate;
        point.stale_share += report.stale_bid_share;
        point.retries += report.wire.chaos.retries;
        if (report.degraded) ++point.degraded;
      }
      return point;
    });
  }();

  for (std::size_t i = 0; i < points.size(); ++i) {
    const double drop = kDropRates[i];
    const SweepPoint& point = points[i];
    const double n = static_cast<double>(kRounds);
    table.add_row({core::format_double(100.0 * drop, 0) + "%",
                   core::format_double(point.score / n, 2),
                   core::format_double(point.cost / n, 4),
                   core::format_double(100.0 * point.congested / n, 2),
                   core::format_double(100.0 * point.timeout_rate / n, 3),
                   core::format_double(static_cast<double>(point.retries) / n, 1),
                   std::to_string(point.degraded) + "/" + std::to_string(kRounds),
                   core::format_double(100.0 * point.stale_share / n, 2)});

    const obs::Labels at{{"drop", core::format_double(drop, 2)}};
    reporter.gauge("chaos_sweep.mean_score", at).set(point.score / n);
    reporter.gauge("chaos_sweep.mean_cost", at).set(point.cost / n);
    reporter.gauge("chaos_sweep.congested_fraction", at).set(point.congested / n);
    reporter.gauge("chaos_sweep.timeout_rate", at).set(point.timeout_rate / n);
    reporter.gauge("chaos_sweep.retries_per_round", at)
        .set(static_cast<double>(point.retries) / n);
    reporter.gauge("chaos_sweep.degraded_rounds", at)
        .set(static_cast<double>(point.degraded));
    reporter.gauge("chaos_sweep.stale_bid_share", at).set(point.stale_share / n);
  }
  reporter.gauge("chaos_sweep.threads").set(static_cast<double>(pool.thread_count()));
  reporter.gauge("chaos_sweep.sweep_seconds").set(sweep_seconds);
  table.print(std::cout);
  reporter.emit();

  std::printf("\nEvery configuration completed all %zu rounds on %zu threads; "
              "the transport was lossy, the market was not.\n",
              kRounds, pool.thread_count());
  return 0;
}
