// Chaos sweep (§6.3 robustness): the VDX exchange under an increasingly
// lossy transport. Sweeps the per-frame drop rate from 0% to 30% (with a
// fixed 2% bit-corruption floor once faults are on) and reports how cost,
// quality, congestion, and the degraded-round machinery respond: message
// timeout rate, retries, rounds flagged degraded, and the share of awarded
// traffic carried by stale cached bids.
//
// The headline: the marketplace keeps deciding at every loss rate — score
// and cost stay near the fault-free values while the transport sheds up to
// a third of all frames — because retries recover most messages and the
// broker's stale-bid fallback papers over the rest.
#include "bench_common.hpp"

#include "core/table.hpp"
#include "market/exchange.hpp"

int main() {
  using namespace vdx;
  sim::ScenarioConfig config;
  config.trace.session_count = 8000;
  const sim::Scenario scenario = sim::Scenario::build(config);
  std::printf("[setup] scenario: %zu broker sessions, %zu CDNs\n",
              scenario.broker_trace().size(), scenario.catalog().cdns().size());

  constexpr std::size_t kRounds = 8;
  constexpr double kDropRates[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};

  core::Table table{{"Drop rate", "Mean score", "Mean cost", "Congested %",
                     "Timeout %", "Retries/round", "Degraded rounds",
                     "Stale share %"}};
  table.set_title("Chaos sweep: exchange quality vs transport drop rate");

  // Machine-readable results: one labeled gauge per (metric, drop rate),
  // emitted as BENCH_JSON lines after the table.
  bench::BenchReporter reporter{"chaos_sweep"};

  for (const double drop : kDropRates) {
    market::ExchangeConfig exchange_config;
    exchange_config.chaos.faults.drop_rate = drop;
    exchange_config.chaos.faults.corrupt_rate = drop > 0.0 ? 0.02 : 0.0;
    exchange_config.chaos.faults.seed = 0xC4A05;
    market::VdxExchange exchange{scenario, exchange_config};
    const auto reports = exchange.run(kRounds);

    double score = 0.0;
    double cost = 0.0;
    double congested = 0.0;
    double timeout_rate = 0.0;
    double stale_share = 0.0;
    std::size_t retries = 0;
    std::size_t degraded = 0;
    for (const market::RoundReport& report : reports) {
      score += report.mean_score;
      cost += report.mean_cost;
      congested += report.congested_fraction;
      timeout_rate += report.timeout_rate;
      stale_share += report.stale_bid_share;
      retries += report.wire.chaos.retries;
      if (report.degraded) ++degraded;
    }
    const double n = static_cast<double>(kRounds);
    table.add_row({core::format_double(100.0 * drop, 0) + "%",
                   core::format_double(score / n, 2),
                   core::format_double(cost / n, 4),
                   core::format_double(100.0 * congested / n, 2),
                   core::format_double(100.0 * timeout_rate / n, 3),
                   core::format_double(static_cast<double>(retries) / n, 1),
                   std::to_string(degraded) + "/" + std::to_string(kRounds),
                   core::format_double(100.0 * stale_share / n, 2)});

    const obs::Labels at{{"drop", core::format_double(drop, 2)}};
    reporter.gauge("chaos_sweep.mean_score", at).set(score / n);
    reporter.gauge("chaos_sweep.mean_cost", at).set(cost / n);
    reporter.gauge("chaos_sweep.congested_fraction", at).set(congested / n);
    reporter.gauge("chaos_sweep.timeout_rate", at).set(timeout_rate / n);
    reporter.gauge("chaos_sweep.retries_per_round", at)
        .set(static_cast<double>(retries) / n);
    reporter.gauge("chaos_sweep.degraded_rounds", at)
        .set(static_cast<double>(degraded));
    reporter.gauge("chaos_sweep.stale_bid_share", at).set(stale_share / n);
  }
  table.print(std::cout);
  reporter.emit();

  std::printf("\nEvery configuration completed all %zu rounds; the transport "
              "was lossy, the market was not.\n",
              kRounds);
  return 0;
}
