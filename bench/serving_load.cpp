// Serving-load bench (DESIGN.md §12): drive the ServeDaemon's open-loop
// generator client across offered-load multipliers and report SLO-grade
// round-latency quantiles (serve.p50/p99/p999_ms) plus admission-control
// sheds at each point.
//
// The round budget is calibrated from a 1x pre-pass (1.5x the busiest
// round's demand), so sheds are strictly positive only above the baseline
// load and exactly zero at or below it — the signature the EXPERIMENTS.md
// table documents.
//
//   bench_serving_load                   # 10K sessions/x, 10s rounds, 4 points
//   bench_serving_load --sessions 2e4 --round 5
//   bench_serving_load --smoke           # CI-sized sweep, same shape
#include "bench_common.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "serve/daemon.hpp"
#include "serve/feed.hpp"

namespace {

using namespace vdx;

double number_flag(int argc, char** argv, std::string_view name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == name) return std::strtod(argv[i + 1], nullptr);
  }
  return fallback;
}

bool switch_flag(int argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == name) return true;
  }
  return false;
}

struct Point {
  double multiplier = 1.0;
  serve::ServeReport report;
  double max_demand_mbps = 0.0;
};

/// One serving run at `multiplier` x the baseline session count. Fresh
/// registry/feed/daemon per point so the serve.* histograms are per-point.
Point run_point(const sim::Scenario& scenario,
                const sim::ScenarioConfig& scenario_config, double round_s,
                std::size_t base_sessions, double multiplier,
                double budget_mbps) {
  trace::TraceConfig trace = scenario_config.trace;
  trace.session_count = static_cast<std::size_t>(std::llround(
      multiplier * static_cast<double>(base_sessions)));
  core::Rng root{scenario_config.seed};
  core::Rng rng = root.fork("stream-trace");
  serve::GeneratorFeed feed{scenario.world(), trace, rng};

  obs::MetricsRegistry metrics;
  serve::ServeConfig config;
  config.round_s = round_s;
  config.exchange.overload.demand_budget_mbps = budget_mbps;
  config.obs.metrics = &metrics;

  Point point;
  point.multiplier = multiplier;
  serve::ServeDaemon daemon{scenario, feed, std::move(config)};
  point.report = daemon.run();
  const auto demand = metrics.histogram_summary("serve.demand_mbps");
  point.max_demand_mbps = demand ? demand->max : 0.0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = switch_flag(argc, argv, "--smoke");
  const auto base_sessions = static_cast<std::size_t>(
      number_flag(argc, argv, "--sessions", smoke ? 1'500.0 : 10'000.0));
  const double round_s = number_flag(argc, argv, "--round", smoke ? 30.0 : 10.0);

  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = std::min<std::size_t>(base_sessions, 10'000);
  double setup_seconds = 0.0;
  const sim::Scenario scenario = [&] {
    const obs::ScopedTimer timer{&setup_seconds};
    return sim::Scenario::build(scenario_config);
  }();
  std::printf("[setup] world: %zu CDNs, %zu clusters (%.1fs); %zu sessions per "
              "1x over %.0fs, %.0fs rounds\n",
              scenario.catalog().cdns().size(),
              scenario.catalog().clusters().size(), setup_seconds, base_sessions,
              scenario_config.trace.duration_s, round_s);

  // Budget calibration: serve the 1x load unthrottled and take 1.5x its
  // busiest round. Every point at or below 1x then fits under the budget;
  // 2x and 4x overflow it.
  const Point baseline = run_point(scenario, scenario_config, round_s,
                                   base_sessions, 1.0, 0.0);
  const double budget_mbps = 1.5 * baseline.max_demand_mbps;
  std::printf("[calibrate] 1x peak round demand %.1f Mbps -> budget %.1f Mbps\n",
              baseline.max_demand_mbps, budget_mbps);

  bench::BenchReporter reporter{"serving_load"};
  core::Table table{{"Load", "Rounds", "Peak active", "p50 (ms)", "p99 (ms)",
                     "p999 (ms)", "Shed (Mbps)", "Shed rounds"}};
  table.set_title("Serving load sweep (budget " +
                  core::format_double(budget_mbps, 0) + " Mbps)");
  const std::vector<double> multipliers{0.5, 1.0, 2.0, 4.0};
  for (const double m : multipliers) {
    const Point point = run_point(scenario, scenario_config, round_s,
                                  base_sessions, m, budget_mbps);
    const serve::ServeReport& r = point.report;
    const std::string load = core::format_double(m, 1) + "x";
    table.add_row({load, std::to_string(r.decision_rounds),
                   std::to_string(r.peak_active_sessions),
                   core::format_double(r.slo.p50_ms, 3),
                   core::format_double(r.slo.p99_ms, 3),
                   core::format_double(r.slo.p999_ms, 3),
                   core::format_double(r.shed_mbps_total, 1),
                   std::to_string(r.shed_rounds)});
    const obs::Labels labels{{"load", load}};
    reporter.gauge("serve.p50_ms", labels).set(r.slo.p50_ms);
    reporter.gauge("serve.p99_ms", labels).set(r.slo.p99_ms);
    reporter.gauge("serve.p999_ms", labels).set(r.slo.p999_ms);
    reporter.gauge("serve.shed_mbps", labels).set(r.shed_mbps_total);
    reporter.gauge("serve.shed_rounds", labels)
        .set(static_cast<double>(r.shed_rounds));
    reporter.gauge("serve.decision_rounds", labels)
        .set(static_cast<double>(r.decision_rounds));
    reporter.gauge("serve.peak_active", labels)
        .set(static_cast<double>(r.peak_active_sessions));
  }
  table.print(std::cout);
  reporter.emit();
  return 0;
}
