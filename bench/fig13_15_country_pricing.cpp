// Figures 13-15 — per-country price-to-cost ratio (Brokered), delivery
// traffic, and profits under Brokered vs VDX, grouped by the serving
// cluster's country.
//
// Paper shapes: countries L-S are easy to profit in while A-J lose money
// under Brokered (Fig. 13/15); Brokered's per-country traffic is roughly
// even while VDX avoids delivering from the most expensive countries
// (Fig. 14); with VDX every country's clusters profit (Fig. 15).
#include "bench_common.hpp"

#include "core/table.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();
  const sim::SettlementComparison cmp = sim::settlement_comparison(scenario);

  core::Table table{{"Country", "P/C (Brokered)", "Traffic Bro", "Traffic VDX",
                     "Profit Brokered", "Profit VDX"}};
  table.set_title(
      "Figures 13-15: per-country pricing, traffic and profit (A = most "
      "expensive)");
  double expensive_brokered = 0.0;
  double expensive_vdx = 0.0;
  double total_brokered = 0.0;
  double total_vdx = 0.0;
  std::size_t losing_countries_brokered = 0;
  std::size_t losing_countries_vdx = 0;
  for (std::size_t i = 0; i < cmp.brokered_country.size(); ++i) {
    const sim::CountryAccount& b = cmp.brokered_country[i];
    const sim::CountryAccount& v = cmp.vdx_country[i];
    table.add_row({scenario.world().countries()[i].name,
                   core::format_double(b.price_to_cost, 2),
                   core::format_double(b.traffic_mbps, 0),
                   core::format_double(v.traffic_mbps, 0), b.profit.to_string(),
                   v.profit.to_string()});
    total_brokered += b.traffic_mbps;
    total_vdx += v.traffic_mbps;
    if (i < 5) {
      expensive_brokered += b.traffic_mbps;
      expensive_vdx += v.traffic_mbps;
    }
    if (b.profit.micros() < 0) ++losing_countries_brokered;
    if (v.profit.micros() < 0) ++losing_countries_vdx;
  }
  table.print(std::cout);

  std::printf("\nTraffic served from the 5 most expensive countries: Brokered "
              "%.1f%%, VDX %.1f%% (paper: VDX avoids A-E)\n",
              100.0 * expensive_brokered / total_brokered,
              100.0 * expensive_vdx / total_vdx);
  std::printf("Countries delivering at a loss: Brokered %zu, VDX %zu "
              "(paper: A-J lose under Brokered; none under VDX)\n",
              losing_countries_brokered, losing_countries_vdx);
  return 0;
}
