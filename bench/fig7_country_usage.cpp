// Figure 7 — broker's usage of CDNs for countries with >= 100 requests.
//
// Paper: "utilization varies significantly: e.g., CDN B barely serves 7 yet
// almost entirely serves 8; CDN A is rarely used in 8, 11 and 15".
#include "bench_common.hpp"

#include <algorithm>

#include "core/table.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();
  const auto usage = sim::fig7_country_usage(scenario);

  core::Table table{{"Country", "Requests", "CDN A", "CDN B", "CDN C", "other"}};
  table.set_title("Figure 7: per-country CDN usage (countries with >= 100 requests)");
  for (std::size_t i = 0; i < usage.size(); ++i) {
    const trace::CountryUsage& u = usage[i];
    table.add_row({std::to_string(i + 1), std::to_string(u.requests),
                   core::format_percent(u.share[0], 0),
                   core::format_percent(u.share[1], 0),
                   core::format_percent(u.share[2], 0),
                   core::format_percent(u.share[3], 0)});
  }
  table.print(std::cout);

  for (std::size_t c = 0; c < 3; ++c) {
    double lo = 1.0;
    double hi = 0.0;
    for (const auto& u : usage) {
      lo = std::min(lo, u.share[c]);
      hi = std::max(hi, u.share[c]);
    }
    std::printf("CDN %c usage range across countries: %.0f%% .. %.0f%%\n",
                static_cast<char>('A' + c), 100.0 * lo, 100.0 * hi);
  }
  std::printf("Expected shape (paper): wide ranges — some countries nearly "
              "monopolized by one CDN, others barely touched.\n");
  return 0;
}
