// Table 1 — "How often alternative CDN clusters with similar performance
// scores exist" (within 25% of the best), demand-weighted over client
// cities, for the major distributed CDN's mapping data.
//
// Paper row:  1 Alt: 77.8%   2 Alts: 64.5%   3 Alts: 53.7%   4 Alts: 43.8%
#include "bench_common.hpp"

#include "core/table.hpp"

int main() {
  using namespace vdx;
  const sim::Scenario scenario = bench::paper_scenario();
  const net::AlternativeStats stats = sim::table1_alternatives(scenario);

  core::Table table{{"", "1 Alternative Choice", "2 Alts.", "3 Alts.", "4 Alts."}};
  table.set_title(
      "Table 1: frequency of alternative clusters with similar performance "
      "(within 25% of best)");
  std::vector<std::string> row{"measured"};
  for (const double f : stats.fraction_with_at_least) {
    row.push_back(core::format_percent(f, 1));
  }
  table.add_row(std::move(row));
  table.add_row({"paper", "77.8%", "64.5%", "53.7%", "43.8%"});
  table.print(std::cout);

  std::printf("\nMean clusters with similar scores per client city: %.1f "
              "(paper: ~4 including the best)\n",
              stats.mean_similar_clusters);
  return 0;
}
