// Parallel execution speedup (DESIGN.md §8): the same work — a federated
// 8-region marketplace solve and the Table-3 design sweep — run serially and
// on all cores, with byte-identical results checked inline.
//
// Emits BENCH_JSON speedup gauges. On a single-core machine the speedup is
// ~1.0 by construction; the determinism checks still bite.
#include <cmath>

#include "bench_common.hpp"

#include "core/parallel.hpp"
#include "core/table.hpp"
#include "market/federation.hpp"

int main(int argc, char** argv) {
  using namespace vdx;
  const std::size_t threads = core::ThreadPool::resolve(bench::threads_flag(argc, argv));
  const sim::Scenario scenario = bench::paper_scenario();
  bench::BenchReporter reporter{"parallel_speedup"};
  reporter.gauge("parallel.threads").set(static_cast<double>(threads));

  core::Table table{{"Workload", "Serial (s)", "Parallel (s)", "Speedup", "Identical"}};
  table.set_title("Deterministic parallel execution: serial vs " +
                  std::to_string(threads) + " threads");

  // ---- Federated marketplace, 8 regions. ----
  {
    market::FederationConfig config;
    config.region_count = 8;
    double serial_s = 0.0;
    double parallel_s = 0.0;
    config.threads = 1;
    const market::FederationResult serial = [&] {
      const obs::ScopedTimer timer{&serial_s};
      return market::run_federated_marketplace(scenario, config);
    }();
    config.threads = threads;
    const market::FederationResult parallel = [&] {
      const obs::ScopedTimer timer{&parallel_s};
      return market::run_federated_marketplace(scenario, config);
    }();
    const bool identical =
        serial.metrics.mean_cost == parallel.metrics.mean_cost &&
        serial.metrics.mean_score == parallel.metrics.mean_score &&
        serial.largest_instance_options == parallel.largest_instance_options &&
        serial.fallback_bids == parallel.fallback_bids;
    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    table.add_row({"federation (8 regions)", core::format_double(serial_s, 2),
                   core::format_double(parallel_s, 2),
                   core::format_double(speedup, 2), identical ? "yes" : "NO"});
    reporter.gauge("parallel.federation8.serial_seconds").set(serial_s);
    reporter.gauge("parallel.federation8.parallel_seconds").set(parallel_s);
    reporter.gauge("parallel.federation8.speedup").set(speedup);
    reporter.gauge("parallel.federation8.identical").set(identical ? 1.0 : 0.0);
    if (!identical) {
      std::fprintf(stderr, "FAIL: federation results differ across thread counts\n");
      return 1;
    }
  }

  // ---- Table-3 design sweep (8 designs). ----
  {
    sim::RunConfig run;
    double serial_s = 0.0;
    double parallel_s = 0.0;
    run.threads = 1;
    const auto serial = [&] {
      const obs::ScopedTimer timer{&serial_s};
      return sim::table3_design_comparison(scenario, run);
    }();
    run.threads = threads;
    const auto parallel = [&] {
      const obs::ScopedTimer timer{&parallel_s};
      return sim::table3_design_comparison(scenario, run);
    }();
    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
      identical = serial[i].design == parallel[i].design &&
                  serial[i].metrics.mean_cost == parallel[i].metrics.mean_cost &&
                  serial[i].metrics.mean_score == parallel[i].metrics.mean_score &&
                  serial[i].metrics.congested_fraction ==
                      parallel[i].metrics.congested_fraction;
    }
    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    table.add_row({"table3 design sweep", core::format_double(serial_s, 2),
                   core::format_double(parallel_s, 2),
                   core::format_double(speedup, 2), identical ? "yes" : "NO"});
    reporter.gauge("parallel.table3.serial_seconds").set(serial_s);
    reporter.gauge("parallel.table3.parallel_seconds").set(parallel_s);
    reporter.gauge("parallel.table3.speedup").set(speedup);
    reporter.gauge("parallel.table3.identical").set(identical ? 1.0 : 0.0);
    if (!identical) {
      std::fprintf(stderr, "FAIL: table3 results differ across thread counts\n");
      return 1;
    }
  }

  table.print(std::cout);
  reporter.emit();
  return 0;
}
