// Shard-scaling bench (DESIGN.md §14): price a large, slowly churning
// session population through the sharded exchange at N in {1, 2, 4, 8} and
// compare against the monolithic baseline.
//
// The workloads are deliberately interface-faithful rather than identical
// code paths. The monolith's public demand interface is stateless —
// set_active_load(full demand) — so its per-round cost includes regrouping
// the whole active population (broker::group_sessions over P sessions).
// The sharded exchange adds the sessionized interface: workers keep
// incremental per-shard ledgers, so a round costs only the churn delta (K
// adds + K removes) plus the collect/merge frames. The differential suite
// under tests/shard/ proves the settlement bytes are identical; this bench
// measures what the incremental interface buys at scale.
//
//   bench_shard_scale                             # 1M active, 10K churn, 12 rounds
//   bench_shard_scale --smoke                     # CI-sized (same curve, seconds)
//   bench_shard_scale --sessions 5e4 --churn 1e3 --rounds 10
#include "bench_common.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "broker/grouping.hpp"
#include "market/shard.hpp"
#include "sim/designs.hpp"
#include "trace/session.hpp"

namespace {

using namespace vdx;

double number_flag(int argc, char** argv, std::string_view name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == name) return std::strtod(argv[i + 1], nullptr);
  }
  return fallback;
}

bool bool_flag(int argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == name) return true;
  }
  return false;
}

constexpr double kRungs[] = {1.2, 3.6};

/// Deterministic session attributes from a ring id: cities round-robin,
/// bitrates cycle the rung ladder. Both runners see the identical stream.
struct ChurnStream {
  std::size_t cities;

  [[nodiscard]] std::uint32_t city_of(std::uint64_t id) const {
    return static_cast<std::uint32_t>(id % cities);
  }
  [[nodiscard]] double bitrate_of(std::uint64_t id) const {
    return kRungs[(id / cities) % std::size(kRungs)];
  }
  [[nodiscard]] trace::Session session_of(std::uint64_t id) const {
    trace::Session s;
    s.id = trace::SessionId{static_cast<std::uint32_t>(id)};
    s.city = geo::CityId{city_of(id)};
    s.bitrate_mbps = bitrate_of(id);
    s.duration_s = 600.0;
    return s;
  }
  [[nodiscard]] proto::ShardSessionAdd add_of(std::uint64_t id) const {
    return proto::ShardSessionAdd{static_cast<std::uint32_t>(id), city_of(id),
                                  bitrate_of(id)};
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bool_flag(argc, argv, "--smoke");
  const auto population = static_cast<std::size_t>(
      number_flag(argc, argv, "--sessions", smoke ? 6e5 : 1e6));
  const auto churn = static_cast<std::size_t>(
      number_flag(argc, argv, "--churn", smoke ? 3e3 : 1e4));
  const auto rounds = static_cast<std::size_t>(
      number_flag(argc, argv, "--rounds", smoke ? 6 : 12));

  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = 10'000;  // pilot only; demand is synthetic
  double setup_seconds = 0.0;
  const sim::Scenario scenario = [&] {
    const obs::ScopedTimer timer{&setup_seconds};
    return sim::Scenario::build(scenario_config);
  }();
  const std::vector<double> background = sim::place_background(scenario);
  const ChurnStream stream{scenario.world().cities().size()};
  std::printf("[setup] %zu cities, %zu clusters (%.1fs); population %zu, "
              "churn %zu/round, %zu rounds\n",
              scenario.world().cities().size(),
              scenario.catalog().clusters().size(), setup_seconds, population,
              churn, rounds);

  bench::BenchReporter reporter{"shard_scale"};

  // Small bid menus keep the (identical on both sides) settlement from
  // drowning the demand-aggregation path this bench measures.
  market::ExchangeConfig exchange_config;
  exchange_config.agent.bid_count = 4;

  // Monolithic baseline: regroup the whole population every round and push
  // it through the stateless demand interface.
  double mono_rps = 0.0;
  {
    market::VdxExchange exchange{scenario, exchange_config};
    std::vector<trace::Session> active;
    active.reserve(population + churn);
    std::uint64_t tail = 0;
    for (; tail < population; ++tail) active.push_back(stream.session_of(tail));
    double seconds = 0.0;
    {
      const obs::ScopedTimer timer{&seconds};
      for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t k = 0; k < churn; ++k) {
          active.push_back(stream.session_of(tail++));
        }
        active.erase(active.begin(), active.begin() + static_cast<long>(churn));
        const auto groups = broker::group_sessions(active);
        exchange.set_active_load(groups, background);
        (void)exchange.run_round();
      }
    }
    mono_rps = static_cast<double>(rounds) / seconds;
    std::printf("[mono    ] %6.2f rounds/s (%.2fs, %zu groups)\n", mono_rps,
                seconds, broker::group_sessions(active).size());
    reporter.gauge("shard.rounds_per_sec", {{"shards", "0"}}).set(mono_rps);
  }

  // Sharded: the same churn stream through incremental per-shard ledgers.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
    market::ShardedConfig config;
    config.shards = shards;
    config.exchange = exchange_config;
    config.collect_threads = shards > 1 ? shards : 1;
    market::ShardedExchange exchange{scenario, config};
    std::uint64_t head = 0, tail = 0;
    {
      // Prefill outside the timed window, mirroring the baseline.
      std::vector<proto::ShardSessionAdd> adds;
      adds.reserve(population);
      for (; tail < population; ++tail) adds.push_back(stream.add_of(tail));
      if (auto status = exchange.push_session_delta(adds, {}); !status.ok()) {
        std::fprintf(stderr, "prefill failed: %s\n", status.error().message.c_str());
        return 1;
      }
    }
    double seconds = 0.0;
    {
      const obs::ScopedTimer timer{&seconds};
      std::vector<proto::ShardSessionAdd> adds(churn);
      std::vector<std::uint32_t> removes(churn);
      for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t k = 0; k < churn; ++k) {
          adds[k] = stream.add_of(tail++);
          removes[k] = static_cast<std::uint32_t>(head++);
        }
        if (auto status = exchange.push_session_delta(adds, removes);
            !status.ok()) {
          std::fprintf(stderr, "delta failed: %s\n", status.error().message.c_str());
          return 1;
        }
        (void)exchange.run_round();
      }
    }
    const double rps = static_cast<double>(rounds) / seconds;
    std::printf("[shards=%zu] %6.2f rounds/s (%.2fs, %.2fx mono)\n", shards, rps,
                seconds, rps / mono_rps);
    reporter.gauge("shard.rounds_per_sec", {{"shards", std::to_string(shards)}})
        .set(rps);
    reporter.gauge("shard.speedup_vs_mono", {{"shards", std::to_string(shards)}})
        .set(rps / mono_rps);
  }

  reporter.emit();
  return 0;
}
